"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures at a reduced
(but shape-preserving) problem size, prints the paper-style table, and
asserts the qualitative claims.  ``--benchmark-only`` is the intended
invocation; each harness runs once (``pedantic`` with a single round) since
the virtual-time results are deterministic.
"""

import pytest


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single deterministic round, return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
