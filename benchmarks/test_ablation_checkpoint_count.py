"""Ablation: checkpoint count C (Eq. 2) vs over/under-checkpointing.

Sweeps the number of checkpoints for a fixed failure scenario on both
clusters and verifies the tradeoff Eq. 2 / Young's rule optimises: few
checkpoints -> long recompute after a failure; many checkpoints -> write
overhead dominates.  The machine-optimal count should sit near the sweep's
minimum total time.
"""

import pytest

from repro.core import AppConfig, run_app
from repro.experiments.report import format_table
from repro.ft.checkpoint import optimal_checkpoint_count
from repro.machine.presets import OPL

from .conftest import run_once

SCALE = 3000.0  # paper-scale virtual compute (t_app ~ 5 s)


def _run(count):
    cfg = AppConfig(n=8, level=4, technique_code="CR", steps=64,
                    diag_procs=4, checkpoint_count=count,
                    compute_scale=SCALE, simulated_lost_gids=(2,))
    m = run_app(cfg, OPL)
    return m


@pytest.mark.benchmark(group="ablation")
def test_checkpoint_count_tradeoff(benchmark):
    counts = (1, 2, 4, 8, 16, 32)

    def sweep():
        return {c: _run(c) for c in counts}

    results = run_once(benchmark, sweep)
    rows = [[c, m.t_total, m.checkpoint_write_time,
             m.t_recovery, m.recompute_steps] for c, m in results.items()]
    print()
    print(format_table(
        ["C", "total(s)", "write(s)", "recovery(s)", "recompute"],
        rows, title="Ablation: checkpoint count sweep (OPL, 1 lost grid)"))

    totals = {c: m.t_total for c, m in results.items()}
    # write overhead strictly grows with C
    writes = [results[c].checkpoint_write_time for c in counts]
    assert writes == sorted(writes)
    # recompute shrinks as C grows
    assert results[32].recompute_steps <= results[1].recompute_steps
    # the extremes are worse than the middle: a genuine tradeoff
    best = min(totals, key=totals.get)
    assert totals[best] <= totals[1]
    assert totals[best] <= totals[32]

    # the machine-optimal rule lands within 2x of the sweep's best time
    cfg = AppConfig(n=8, level=4, technique_code="CR", steps=64,
                    diag_procs=4, compute_scale=SCALE)
    est = cfg.estimated_solve_time(OPL)
    c_opt = optimal_checkpoint_count(est, OPL.t_io)
    nearest = min(counts, key=lambda c: abs(c - c_opt))
    assert totals[nearest] <= 2.0 * totals[best]
