"""Ablation: simulator collective scaling vs the analytic model, and the
cost of the beta ULFM against a hypothetical fixed implementation.

Sanity-checks that the virtual-time engine reproduces the cost model it is
configured with (log-tree collectives), and quantifies how much of the
Fig. 8/11 overhead is attributable to the beta-ULFM curves by swapping in
the ``OPL_FIXED_ULFM`` preset.
"""

import math

import pytest

from repro.core import AppConfig, baseline_solve_time, plan_failures, run_app
from repro.experiments.report import format_table
from repro.machine.presets import OPL, OPL_FIXED_ULFM
from repro.mpi import Universe

from .conftest import run_once


def measure_barrier(n):
    async def main(ctx):
        t0 = ctx.wtime()
        await ctx.comm.barrier()
        return ctx.wtime() - t0

    uni = Universe(OPL)
    job = uni.launch(n, main)
    uni.run()
    return job.results()[0]


@pytest.mark.benchmark(group="ablation")
def test_collective_scaling_matches_analytic_model(benchmark):
    sizes = (2, 4, 8, 16, 64, 128)

    def sweep():
        return {n: measure_barrier(n) for n in sizes}

    measured = run_once(benchmark, sweep)
    rows = [[n, measured[n], OPL.barrier_cost(n)] for n in sizes]
    print()
    print(format_table(["procs", "measured(s)", "model(s)"], rows,
                       title="Ablation: barrier cost vs log-tree model",
                       floatfmt="12.3e"))
    for n in sizes:
        assert measured[n] == pytest.approx(OPL.barrier_cost(n), rel=1e-6)
        assert measured[n] == pytest.approx(
            math.ceil(math.log2(n)) * OPL.alpha, rel=1e-6)


@pytest.mark.benchmark(group="ablation")
def test_fixed_ulfm_removes_reconstruction_blowup(benchmark):
    def compare():
        out = {}
        for machine in (OPL, OPL_FIXED_ULFM):
            cfg = AppConfig(n=7, level=4, technique_code="AC", steps=8,
                            diag_procs=16, layout_mode="sweep")
            t = baseline_solve_time(cfg, machine)
            kills = plan_failures(cfg, 2, max(t * 0.5, 1e-9), seed=0)
            cfg = AppConfig(n=7, level=4, technique_code="AC", steps=8,
                            diag_procs=16, layout_mode="sweep")
            out[machine.name] = run_app(cfg, machine, kills=kills)
        return out

    results = run_once(benchmark, compare)
    rows = [[name, m.t_reconstruct, m.t_total]
            for name, m in results.items()]
    print()
    print(format_table(["machine", "reconstruct(s)", "total(s)"], rows,
                       title="Ablation: beta vs fixed ULFM, 76 cores, "
                             "2 failures"))
    beta = results["OPL"]
    fixed = results["OPL-fixed-ulfm"]
    # identical numerics, wildly different recovery cost
    assert fixed.error_l1 == pytest.approx(beta.error_l1, rel=1e-9)
    assert beta.t_reconstruct > 100 * fixed.t_reconstruct
