"""Ablation: Alternate Combination redundancy depth (the paper fixes two
extra layers; its future work asks about other configurations).

More layers cost more processes but tolerate deeper loss patterns: with a
single extra layer, losing two adjacent diagonal grids *plus* the lower
grid between them forces the greedy GCP to discard a surviving grid
(accuracy hit); with two layers the required meet grid exists and accuracy
is preserved.
"""

import pytest

from repro.core import AppConfig, run_app
from repro.experiments.report import format_table
from repro.machine.presets import IDEAL

from .conftest import run_once


def _run(extra_layers, lost):
    cfg = AppConfig(n=8, level=4, technique_code="AC", steps=32,
                    diag_procs=4, extra_layers=extra_layers,
                    simulated_lost_gids=lost)
    return run_app(cfg, IDEAL)


@pytest.mark.benchmark(group="ablation")
def test_extra_layers_accuracy_vs_redundancy(benchmark):
    # gids 1, 2 are adjacent diagonals; gid 5 is the lower grid between
    # them — losing all three leaves a hole only a layer-3 grid can patch
    def sweep():
        out = {}
        for layers in (1, 2):
            base = _run(layers, ())
            hit = _run(layers, (1, 2, 5))
            out[layers] = (base, hit)
        return out

    results = run_once(benchmark, sweep)
    rows = []
    for layers, (base, hit) in results.items():
        rows.append([layers, base.world_size, base.error_l1, hit.error_l1,
                     hit.error_l1 / base.error_l1])
    print()
    print(format_table(
        ["layers", "procs", "baseline l1", "2-adj-loss l1", "ratio"],
        rows, title="Ablation: AC extra layers vs adjacent-diagonal loss",
        floatfmt="12.4e"))

    base1, hit1 = results[1]
    base2, hit2 = results[2]
    # identical failure-free accuracy
    assert base1.error_l1 == pytest.approx(base2.error_l1, rel=1e-9)
    # two layers use more processes...
    assert base2.world_size > base1.world_size
    # ...but absorb the adjacent double loss far better
    assert hit2.error_l1 < hit1.error_l1
