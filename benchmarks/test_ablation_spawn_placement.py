"""Ablation: re-spawn placement policy.

The paper re-spawns replacements on the host the failed rank occupied
(preserving load balance); its future work proposes spare nodes.  This
bench compares same-host, spare-node and naive first-fit placement and
verifies the host assignments each policy produces.
"""

import pytest

from repro.core import AppConfig, plan_failures, run_app, baseline_solve_time
from repro.experiments.report import format_table
from repro.ft import PLACE_FIRST_FIT, PLACE_SAME_HOST, PLACE_SPARE
from repro.machine.presets import OPL

from .conftest import run_once


def _run(placement):
    cfg = AppConfig(n=7, level=4, technique_code="AC", steps=16,
                    diag_procs=4, placement=placement)
    t = baseline_solve_time(cfg, OPL)
    kills = plan_failures(cfg, 2, max(t * 0.5, 1e-9), seed=3)
    cfg = AppConfig(n=7, level=4, technique_code="AC", steps=16,
                    diag_procs=4, placement=placement)
    from repro.core.runner import make_universe
    from repro.core.app import app_main
    from repro.ft.failure_injection import FailureGenerator
    uni, total = make_universe(cfg, OPL, n_spares=2)
    job = uni.launch(total, app_main, argv=(cfg,))
    FailureGenerator().inject(uni, job, kills)
    uni.run()
    metrics = job.results()[0]
    spawned_hosts = {p.name: p.host.name
                     for j in uni.jobs[1:] for p in j.procs}
    original_hosts = {k.rank: uni.hostfile.host_of_rank(
        k.rank, OPL.cores_per_node).name for k in kills}
    return metrics, spawned_hosts, original_hosts


@pytest.mark.benchmark(group="ablation")
def test_spawn_placement_policies(benchmark):
    def sweep():
        return {p: _run(p) for p in (PLACE_SAME_HOST, PLACE_SPARE,
                                     PLACE_FIRST_FIT)}

    results = run_once(benchmark, sweep)
    rows = [[policy, m.t_total, m.n_failures, ";".join(sorted(hosts.values()))]
            for policy, (m, hosts, _orig) in results.items()]
    print()
    print(format_table(["policy", "total(s)", "failures", "spawn hosts"],
                       rows, title="Ablation: re-spawn placement policy"))

    same_m, same_hosts, originals = results[PLACE_SAME_HOST]
    spare_m, spare_hosts, _ = results[PLACE_SPARE]
    # the paper's policy: every replacement lands on its predecessor's host
    assert sorted(same_hosts.values()) == sorted(originals.values())
    # the future-work policy: replacements land on spare nodes
    assert all(h.startswith("spare") for h in spare_hosts.values())
    # all policies recover fully
    for m, _h, _o in results.values():
        assert m.n_failures == 2
        assert m.error_l1 == pytest.approx(same_m.error_l1, rel=1e-9)
