"""Batch-substrate scaling guard: the vectorised collective rounds must
stay decisively faster than the per-rank event path at fig scale.

Not a paper figure — the regression guard for the batch fast path.  The
event path's rendezvous does an O(members) scan per arrival (quadratic
per round), which is exactly the cost the batch engine removes; if the
fast path silently stops engaging (a gate regression, a fallback that
sticks), the ratio collapses and this test catches it.
"""

import time

import pytest

from repro.machine.presets import IDEAL
from repro.mpi import Universe

N_RANKS = 1024
N_ROUNDS = 24    # enough rounds that per-round cost dominates task spawn


def allreduce_run(batch: bool):
    async def main(ctx):
        comm = ctx.comm
        total = 0.0
        for _ in range(N_ROUNDS):
            total = await comm.allreduce(1.0)
        return total

    uni = Universe(IDEAL, batch=batch)
    job = uni.launch(N_RANKS, main)
    uni.run()
    return uni, job


def _best_of(fn, repeats=2):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


@pytest.mark.benchmark(group="substrate")
def test_batch_allreduce_speedup_at_scale(benchmark):
    # both paths timed identically (best of 2) so the ratio is fair; the
    # harness's pedantic run only feeds the benchmark report
    wall_event, (uni_event, job_event) = _best_of(
        lambda: allreduce_run(batch=False))

    def run():
        return allreduce_run(batch=True)

    uni_batch, job_batch = benchmark.pedantic(run, rounds=1, iterations=1,
                                              warmup_rounds=1)
    wall_batch, _ = _best_of(lambda: allreduce_run(batch=True))

    # both substrates agree on the result and the work done
    assert job_batch.results() == job_event.results() == [float(N_RANKS)] * N_RANKS
    calls = uni_batch.stats.collectives["allreduce"]
    assert calls == uni_event.stats.collectives["allreduce"] == N_RANKS * N_ROUNDS
    # logical event accounting is path-independent
    assert uni_batch.engine.events_processed == uni_event.engine.events_processed

    ratio = wall_event / wall_batch
    rate = N_RANKS * N_ROUNDS / wall_batch
    print(f"\n{N_RANKS} ranks x {N_ROUNDS} rounds: batch {wall_batch:.3f}s, "
          f"event {wall_event:.3f}s -> {ratio:.1f}x "
          f"({rate:,.0f} rank-rounds/s)")
    # the acceptance bar: >= 5x engine throughput on allreduce at 1024
    # ranks (measured ~8-10x on the 1-CPU reference box, far higher on
    # real hardware — the event path is quadratic per round, the batch
    # path linear, so the gap only widens with rank count)
    assert ratio >= 5.0
