"""Simulator performance: event throughput and message rate.

Not a paper figure — a performance regression guard for the substrate
itself (a discrete-event simulator that slows down makes every experiment
above it slower).
"""

import pytest

from repro.machine.presets import IDEAL
from repro.mpi import Universe


def ping_pong_run(n_pairs: int, n_rounds: int):
    async def main(ctx):
        partner = ctx.rank ^ 1
        if ctx.rank % 2 == 0:
            for i in range(n_rounds):
                await ctx.comm.send(i, dest=partner, tag=0)
                await ctx.comm.recv(source=partner, tag=1)
        else:
            for i in range(n_rounds):
                await ctx.comm.recv(source=partner, tag=0)
                await ctx.comm.send(i, dest=partner, tag=1)
        return None

    uni = Universe(IDEAL)
    uni.launch(2 * n_pairs, main)
    uni.run()
    return uni


@pytest.mark.benchmark(group="substrate")
def test_engine_message_throughput(benchmark):
    n_pairs, n_rounds = 8, 500

    def run():
        return ping_pong_run(n_pairs, n_rounds)

    uni = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    messages = uni.stats.messages
    assert messages == 2 * n_pairs * n_rounds
    events = uni.engine.events_processed
    rate = messages / benchmark.stats["mean"]
    print(f"\n{messages} messages, {events} engine events, "
          f"{rate:,.0f} msg/s wall")
    # regression guard: the indexed-matching fast path sustains ~160k msg/s
    # on the reference machine; well under that still leaves headroom for
    # slow CI, while catching a return to the pre-indexing ~80k regime
    assert rate > 50_000


@pytest.mark.benchmark(group="substrate")
def test_engine_collective_throughput(benchmark):
    async def main(ctx):
        for _ in range(200):
            await ctx.comm.allreduce(ctx.rank)
        return None

    def run():
        uni = Universe(IDEAL)
        uni.launch(16, main)
        uni.run()
        return uni

    uni = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    colls = uni.stats.collectives["allreduce"]
    assert colls == 16 * 200
    rate = 200 / benchmark.stats["mean"]
    print(f"\n{colls} allreduce calls, {rate:,.0f} rounds/s wall")
    # ~8k rounds/s on the reference machine post fast-path work
    assert rate > 1_500
