"""Fig. 10: average l1 approximation error of the combined solution after
recovery, vs number of lost grids, for CR / RC / AC."""

import pytest

from repro.experiments.fig10 import format_fig10, run_fig10

from .conftest import run_once


@pytest.mark.benchmark(group="fig10")
def test_fig10_approximation_error(benchmark):
    pts = run_once(benchmark, lambda: run_fig10(
        n=8, steps=64, lost_counts=(0, 1, 2, 3, 4, 5),
        seeds=tuple(range(8))))
    print()
    print(format_fig10(pts))
    by = {(p.technique, p.n_lost): p for p in pts}
    base = by[("CR", 0)].error_l1
    # all three agree on the failure-free baseline
    assert by[("RC", 0)].error_l1 == pytest.approx(base, rel=1e-9)
    assert by[("AC", 0)].error_l1 == pytest.approx(base, rel=1e-9)
    # CR: exact recovery, error independent of losses
    for k in range(6):
        assert by[("CR", k)].error_l1 == pytest.approx(base, rel=1e-9)
    # RC/AC: error grows with losses but stays bounded
    assert by[("AC", 5)].error_l1 > by[("AC", 1)].error_l1
    assert by[("RC", 5)].error_l1 > base
    # AC single failure: a small penalty.  (The paper reports "a few
    # percent" at n=13; the penalty shrinks with resolution — a lost
    # diagonal at our n=8 costs ~4% — and the average over random single
    # losses, which can hit lower grids, sits a little higher.)
    assert by[("AC", 1)].ratio < 4.0
    # the paper's surprise: AC is more accurate than RC on average over
    # multi-grid losses
    ac_avg = sum(by[("AC", k)].error_l1 for k in (2, 3, 4, 5)) / 4
    rc_avg = sum(by[("RC", k)].error_l1 for k in (2, 3, 4, 5)) / 4
    assert ac_avg < rc_avg
