"""Fig. 11b: overall parallel efficiency vs core count."""

import pytest

from repro.experiments.fig11 import format_fig11, run_fig11

from .conftest import run_once


@pytest.mark.benchmark(group="fig11")
def test_fig11b_parallel_efficiency(benchmark):
    pts = run_once(benchmark, lambda: run_fig11(
        n=9, steps=64, diag_procs=(2, 4, 8), failure_counts=(0, 2),
        seeds=(0,), checkpoint_count=4, compute_scale=2400.0))
    print()
    print(format_fig11(pts))
    by = {(p.technique, p.n_failures, p.cores): p for p in pts}
    # compute-dominated regime: AC and RC stay above ~80% efficiency with
    # no failures (paper: "more than 80% parallel efficiency")
    assert by[("AC", 0, 49)].efficiency > 0.8
    assert by[("RC", 0, 76)].efficiency > 0.8
    # CR is less scalable: its fixed checkpoint cost drags efficiency
    assert by[("CR", 0, 44)].efficiency < by[("AC", 0, 49)].efficiency
    # with two failures the beta-ULFM reconstruction wrecks efficiency at
    # scale (paper: "performances vary greatly for two failures")
    assert by[("AC", 2, 49)].efficiency < by[("AC", 0, 49)].efficiency
    assert by[("RC", 2, 76)].efficiency < 0.5 * by[("RC", 0, 76)].efficiency
