"""Fig. 11a: overall execution time vs core count for {CR, RC, AC} x
{0, 1, 2 failures}."""

import pytest

from repro.experiments.fig11 import format_fig11, run_fig11

from .conftest import run_once


@pytest.mark.benchmark(group="fig11")
def test_fig11a_overall_execution_time(benchmark):
    pts = run_once(benchmark, lambda: run_fig11(
        n=8, steps=32, diag_procs=(2, 4, 8), failure_counts=(0, 1, 2),
        seeds=(0,), checkpoint_count=4, compute_scale=500.0))
    print()
    print(format_fig11(pts))
    by = {(p.technique, p.n_failures, p.cores): p for p in pts}
    # CR most costly at every scale with zero failures (checkpoint writes
    # + per-checkpoint detection); AC cheapest
    for cr_cores, rc_cores, ac_cores in ((11, 19, 14), (22, 38, 25),
                                         (44, 76, 49)):
        cr = by[("CR", 0, cr_cores)].t_total
        rc = by[("RC", 0, rc_cores)].t_total
        ac = by[("AC", 0, ac_cores)].t_total
        assert cr > ac
        assert rc >= ac * 0.99
    # failures add cost for the redundancy-based techniques
    assert by[("AC", 2, 49)].t_total > by[("AC", 0, 49)].t_total
    assert by[("RC", 2, 76)].t_total > by[("RC", 0, 76)].t_total
