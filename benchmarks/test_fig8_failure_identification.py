"""Fig. 8a: time to create the list of failed processes, vs core count,
for one and two real process failures."""

import pytest

from repro.experiments.fig8 import format_fig8, run_fig8
from repro.experiments.report import check_monotone_increasing

from .conftest import run_once


@pytest.mark.benchmark(group="fig8")
def test_fig8a_failed_list_creation_time(benchmark):
    pts = run_once(benchmark, lambda: run_fig8(
        diag_procs=(4, 8, 16, 32, 64), failure_counts=(1, 2), steps=8))
    print()
    print(format_fig8(pts))
    one = [p.t_failed_list for p in pts if p.n_failures == 1]
    two = [p.t_failed_list for p in pts if p.n_failures == 2]
    cores = [p.cores for p in pts if p.n_failures == 2]
    assert cores == [19, 38, 76, 152, 304]
    # grows with core count (small slack for flat low end)
    assert check_monotone_increasing(one, slack=0.01)
    assert check_monotone_increasing(two, slack=0.01)
    # the 2-failure case is dramatically worse at scale (Sec. III-A)
    assert two[-1] > 10 * one[-1]
    # shrink dominates the failed-list creation time at 2 failures
    assert two[2] == pytest.approx(43.35, rel=0.1)
