"""Fig. 8b: faulty-communicator reconstruction time vs core count, for one
and two real process failures."""

import pytest

from repro.experiments.fig8 import format_fig8, run_fig8
from repro.experiments.report import check_monotone_increasing

from .conftest import run_once


@pytest.mark.benchmark(group="fig8")
def test_fig8b_communicator_reconstruction_time(benchmark):
    pts = run_once(benchmark, lambda: run_fig8(
        diag_procs=(4, 8, 16, 32, 64), failure_counts=(1, 2), steps=8))
    print()
    print(format_fig8(pts))
    one = [p.t_reconstruct for p in pts if p.n_failures == 1]
    two = [p.t_reconstruct for p in pts if p.n_failures == 2]
    assert check_monotone_increasing(one, slack=0.01)
    assert check_monotone_increasing(two, slack=0.01)
    # reconstruction includes spawn+shrink+agree+merge: it exceeds the
    # failed-list-creation time everywhere
    for p in pts:
        assert p.t_reconstruct >= p.t_failed_list
    # the beta-ULFM 2-failure blow-up (paper: "unsatisfactory")
    assert two[-1] > 20 * one[-1]
