"""Fig. 9b: process-time data-recovery overhead (the paper's normalisation
charging RC/AC for their extra processes).

At the paper-scale timing regime: CR worst / AC best on OPL, while on
Raijin (T_I/O = 0.03 s) checkpointing is cheapest — the paper's headline
crossover.
"""

import pytest

from repro.experiments.fig9 import format_fig9, run_fig9
from repro.machine.presets import OPL, RAIJIN

from .conftest import run_once


@pytest.mark.benchmark(group="fig9")
def test_fig9b_process_time_overhead_crossover(benchmark):
    pts = run_once(benchmark, lambda: run_fig9(
        n=9, steps=256, diag_procs=8, lost_counts=(1, 3),
        seeds=(0,), machines=(OPL, RAIJIN),
        checkpoint_count=None, compute_scale=600.0))
    print()
    print(format_fig9(pts))
    by = {(p.machine, p.technique, p.n_lost): p for p in pts}
    # OPL: CR shows the most process-time overhead, AC the least, RC between
    for lost in (1, 3):
        cr = by[("OPL", "CR", lost)].process_time_overhead
        rc = by[("OPL", "RC", lost)].process_time_overhead
        ac = by[("OPL", "AC", lost)].process_time_overhead
        assert cr > rc > ac
    # Raijin: checkpointing has the least overhead (ultra-low T_I/O)
    for lost in (1, 3):
        cr = by[("Raijin", "CR", lost)].process_time_overhead
        rc = by[("Raijin", "RC", lost)].process_time_overhead
        ac = by[("Raijin", "AC", lost)].process_time_overhead
        assert cr < ac < rc
