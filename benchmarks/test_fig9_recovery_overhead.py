"""Fig. 9a: failed-grid data-recovery overhead for CR / RC / AC on OPL and
Raijin, 1..5 simulated lost grids (reconstruction excluded, as in the
paper)."""

import pytest

from repro.experiments.fig9 import format_fig9, run_fig9
from repro.machine.presets import OPL, RAIJIN

from .conftest import run_once


@pytest.mark.benchmark(group="fig9")
def test_fig9a_recovery_overhead(benchmark):
    pts = run_once(benchmark, lambda: run_fig9(
        n=8, steps=8, diag_procs=8, lost_counts=(1, 2, 3, 4, 5),
        seeds=(0, 1), machines=(OPL, RAIJIN)))
    print()
    print(format_fig9(pts))
    by = {(p.machine, p.technique, p.n_lost): p for p in pts}
    for machine in ("OPL", "Raijin"):
        # CR highest, AC lowest, RC between (Sec. III-B)
        for lost in (1, 3, 5):
            cr = by[(machine, "CR", lost)].recovery_overhead
            rc = by[(machine, "RC", lost)].recovery_overhead
            ac = by[(machine, "AC", lost)].recovery_overhead
            assert cr > rc > ac
        # "data recovery time is almost independent of the number of lost
        # grids in all cases"
        for tech in ("CR", "RC", "AC"):
            series = [by[(machine, tech, k)].recovery_overhead
                      for k in (1, 2, 3, 4, 5)]
            assert max(series) < 5 * max(min(series), 1e-12)
    # CR's overhead is dominated by T_I/O: OPL >> Raijin
    assert by[("OPL", "CR", 1)].recovery_overhead > \
        20 * by[("Raijin", "CR", 1)].recovery_overhead
