"""Analyzer performance: full-repo lint must stay interactive.

The dataflow rules solve several fixpoints per function plus an
interprocedural summary pass per module; this guard keeps the whole
``python -m repro lint`` run (the CI self-lint) under 10 seconds so the
analyzer stays cheap enough to run on every commit.
"""

import pytest

from repro.analysis import default_lint_paths, lint_paths
from repro.analysis.linter import _iter_py_files


@pytest.mark.benchmark(group="analysis")
def test_full_repo_lint_under_10s(benchmark):
    paths = default_lint_paths()
    n_files = len(_iter_py_files(paths))
    assert n_files > 50, "default lint paths lost most of the package?"

    violations = benchmark.pedantic(lambda: lint_paths(paths),
                                    rounds=3, iterations=1,
                                    warmup_rounds=1)
    assert violations == [], "\n".join(str(v) for v in violations)
    secs = benchmark.stats["mean"]
    rate = n_files / secs
    print(f"\n{n_files} files in {secs:.2f}s ({rate:,.0f} files/s)")
    # hard ceiling from the CI contract; the reference machine does the
    # full tree in well under a second, so 10s is pure headroom
    assert secs < 10.0
