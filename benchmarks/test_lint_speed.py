"""Analyzer performance: full-repo lint must stay interactive.

The dataflow rules solve several fixpoints per function plus an
interprocedural summary pass per module; this guard keeps the whole
``python -m repro lint`` run (the CI self-lint) under 10 seconds so the
analyzer stays cheap enough to run on every commit.
"""

from pathlib import Path

import pytest

from repro.analysis import RULES, default_lint_paths, lint_paths
from repro.analysis.linter import _iter_py_files

FIXTURES = Path(__file__).resolve().parent.parent / "tests" / "analysis" \
    / "fixtures"


@pytest.mark.benchmark(group="analysis")
def test_full_repo_lint_under_10s(benchmark):
    paths = default_lint_paths()
    n_files = len(_iter_py_files(paths))
    assert n_files > 50, "default lint paths lost most of the package?"

    violations = benchmark.pedantic(lambda: lint_paths(paths),
                                    rounds=3, iterations=1,
                                    warmup_rounds=1)
    assert violations == [], "\n".join(str(v) for v in violations)
    secs = benchmark.stats["mean"]
    rate = n_files / secs
    print(f"\n{n_files} files in {secs:.2f}s ({rate:,.0f} files/s)")
    # hard ceiling from the CI contract; the reference machine does the
    # full tree in well under a second, so 10s is pure headroom
    assert secs < 10.0


@pytest.mark.benchmark(group="analysis")
def test_all_rules_exercised_at_speed(benchmark):
    """Lint the seeded-violation corpus: every rule (ULF001–ULF020) must
    fire, so the benchmark times the worst case where all analyses —
    including protocol-model extraction and checking on the annotated
    fixtures — run to completion rather than bailing out early on clean
    code."""
    assert len(RULES) == 20

    violations = benchmark.pedantic(lambda: lint_paths([FIXTURES]),
                                    rounds=3, iterations=1,
                                    warmup_rounds=1)
    fired = {v.rule for v in violations}
    assert fired >= set(RULES), f"rules never fired: {set(RULES) - fired}"
    secs = benchmark.stats["mean"]
    print(f"\nfixture corpus ({len(fired)} rules) in {secs * 1e3:.0f}ms")
    assert secs < 10.0
