"""Table I: beta-ULFM operation wall times with two process failures.

Regenerates the full 19..304-core table through the real reconstruction
protocol and checks the measured values against the paper's numbers.
"""

import pytest

from repro.experiments.table1 import (PAPER_TABLE1, format_table1, run_table1)

from .conftest import run_once


@pytest.mark.benchmark(group="table1")
def test_table1_ulfm_operation_times(benchmark):
    rows = run_once(benchmark, lambda: run_table1(steps=8))
    print()
    print(format_table1(rows))
    by_cores = {r.cores: r for r in rows}
    assert set(by_cores) == set(PAPER_TABLE1)
    for cores, (spawn, shrink, agree, merge) in PAPER_TABLE1.items():
        row = by_cores[cores]
        assert row.spawn == pytest.approx(spawn, rel=0.05)
        assert row.shrink == pytest.approx(shrink, rel=0.05)
        assert row.agree == pytest.approx(agree, rel=0.10)
        assert row.merge == pytest.approx(merge, rel=0.10)
    # spawn and shrink dominate and grow with core count (the paper's
    # diagnosis of the 2-failure slowdown)
    assert by_cores[304].spawn > by_cores[304].agree > by_cores[304].merge
    assert by_cores[304].spawn > by_cores[38].spawn > by_cores[19].spawn
