"""Protocol-verifier performance: the full CR/RC/AC/SHRINK/NC model
check must stay cheap enough for CI and the ft-layer pytest gate.

The checker explores the cross-rank product state space with
partial-order reduction and per-op failure injection; this guard keeps
``python -m repro verify-protocol`` (all five modes at the default
rank bound, single-failure budget) under 20 seconds — the reference
machine does it in well under a second, so the ceiling is headroom, not
a target.
"""

import pytest

from repro.analysis.model import verify_modes


@pytest.mark.benchmark(group="analysis")
def test_full_verify_under_20s(benchmark):
    reports = benchmark.pedantic(lambda: verify_modes(),
                                 rounds=3, iterations=1, warmup_rounds=1)
    assert {r.mode for r in reports} == {"CR", "RC", "AC", "SHRINK", "NC"}
    assert all(r.ok for r in reports)
    total_states = sum(r.result.states for r in reports)
    secs = benchmark.stats["mean"]
    print(f"\n{total_states} product states across 5 modes "
          f"in {secs * 1e3:.0f}ms")
    assert secs < 20.0


@pytest.mark.benchmark(group="analysis")
def test_single_mode_verify_subsecond_budget(benchmark):
    """CR alone (the deepest model: segment loop + checkpoint ops) gets a
    tighter envelope so state-space regressions surface before they sink
    the aggregate guard."""
    (rep,) = benchmark.pedantic(lambda: verify_modes(["CR"]),
                                rounds=3, iterations=1, warmup_rounds=1)
    assert rep.ok
    assert benchmark.stats["mean"] < 10.0
