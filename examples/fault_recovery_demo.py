#!/usr/bin/env python
"""Fault-recovery walkthrough: inject *real* process failures mid-run and
watch the full ULFM recovery pipeline — detection, revoke/shrink,
same-host re-spawn, intercommunicator merge, rank re-ordering and data
recovery — for each of the paper's three techniques.

Run:  python examples/fault_recovery_demo.py
"""

from repro.core import AppConfig, baseline_solve_time, plan_failures, run_app
from repro.machine.presets import OPL


def demo(technique: str, n_failures: int) -> None:
    cfg = AppConfig(n=7, level=4, technique_code=technique, steps=32,
                    diag_procs=4, checkpoint_count=4)
    layout = cfg.layout()
    t_solve = baseline_solve_time(cfg, OPL)
    kills = plan_failures(cfg, n_failures, at=t_solve * 0.5, seed=42)

    cfg = AppConfig(n=7, level=4, technique_code=technique, steps=32,
                    diag_procs=4, checkpoint_count=4)
    m = run_app(cfg, OPL, kills=kills)

    victims = ", ".join(
        f"rank {k.rank} (grid {layout.gid_of(k.rank)})" for k in kills)
    print(f"--- {m.technique}: {n_failures} failure(s) on {m.world_size} "
          f"ranks ---")
    print(f"  killed              : {victims} at t={kills[0].at:.4f}s")
    print(f"  failed ranks found  : {m.failed_ranks}")
    print(f"  lost sub-grids      : {m.lost_gids}")
    print(f"  failed-list time    : {m.t_detect:.4f} s   (Fig. 8a)")
    print(f"  reconstruction time : {m.t_reconstruct:.4f} s   (Fig. 8b)")
    print(f"    shrink {m.t_shrink:.4f}s  spawn {m.t_spawn:.4f}s  "
          f"agree {m.t_agree:.4f}s  merge {m.t_merge:.4f}s   (Table I)")
    print(f"  data recovery time  : {m.t_recovery:.6f} s   (Fig. 9a)")
    if technique == "CR":
        print(f"    checkpoints written {m.checkpoint_writes}, "
              f"recomputed {m.recompute_steps} steps")
    print(f"  final l1 error      : {m.error_l1:.4e}")
    print(f"  total virtual time  : {m.t_total:.4f} s")
    print()


def main():
    print("Application-level fault recovery with simulated ULFM Open MPI")
    print("=" * 64)
    for technique in ("CR", "RC", "AC"):
        for n_failures in (1, 2):
            demo(technique, n_failures)


if __name__ == "__main__":
    main()
