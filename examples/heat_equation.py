#!/usr/bin/env python
"""Beyond the paper: the same fault-tolerant combination machinery solving
a different PDE — the 2D heat equation — with a mid-run process failure.

The combination technique, the recovery protocols and the simulated ULFM
runtime are all problem-agnostic; only the stencil kernel and the exact
solution change.

Run:  python examples/heat_equation.py
"""

from repro.core import AppConfig, run_app
from repro.ft.failure_injection import Kill
from repro.machine.presets import OPL
from repro.pde import DiffusionProblem


def main():
    problem = DiffusionProblem(kappa=0.05)
    base_cfg = AppConfig(n=7, level=4, technique_code="AC", steps=64,
                         diag_procs=4, problem=problem, cfl=0.2)
    base = run_app(base_cfg, OPL)
    print("2D heat equation, sparse grid combination, simulated ULFM MPI")
    print(f"  world size        : {base.world_size} ranks")
    print(f"  baseline l1 error : {base.error_l1:.4e}")

    cfg = AppConfig(n=7, level=4, technique_code="AC", steps=64,
                    diag_procs=4, problem=problem, cfl=0.2)
    m = run_app(cfg, OPL, kills=[Kill(rank=6, at=base.t_solve * 0.5)])
    print(f"\nafter killing rank 6 mid-run:")
    print(f"  lost grid(s)      : {m.lost_gids}")
    print(f"  reconstruction    : {m.t_reconstruct:.4f} s")
    print(f"  recovered l1 error: {m.error_l1:.4e} "
          f"({m.error_l1 / base.error_l1:.2f}x baseline)")


if __name__ == "__main__":
    main()
