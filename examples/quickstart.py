#!/usr/bin/env python
"""Quickstart: solve the 2D advection problem with the sparse grid
combination technique on simulated MPI, lose a sub-grid, recover it with
the Alternate Combination technique, and report the accuracy.

Run:  python examples/quickstart.py
"""

from repro.core import AppConfig, run_app
from repro.machine.presets import OPL


def main():
    # --- a failure-free run -------------------------------------------------
    cfg = AppConfig(
        n=8,                   # full grid 2^8+1 x 2^8+1
        level=4,               # combination level (4 diagonal + 3 lower grids)
        technique_code="AC",   # Alternate Combination recovery
        steps=64,              # Lax-Wendroff timesteps
        diag_procs=4,          # processes per diagonal grid (paper uses 8)
    )
    base = run_app(cfg, OPL)
    print(f"combination scheme : {cfg.scheme().describe().splitlines()[0]}")
    print(f"world size         : {base.world_size} simulated MPI ranks")
    print(f"baseline l1 error  : {base.error_l1:.4e}")
    print(f"virtual run time   : {base.t_total:.4f} s on {base.machine}")

    # --- lose a diagonal sub-grid, recover via new coefficients -------------
    cfg = AppConfig(n=8, level=4, technique_code="AC", steps=64,
                    diag_procs=4, simulated_lost_gids=(1,))
    hit = run_app(cfg, OPL)
    print(f"\nafter losing grid 1 {cfg.scheme()[1].index}:")
    print(f"recovered l1 error : {hit.error_l1:.4e} "
          f"({hit.error_l1 / base.error_l1:.2f}x baseline)")
    print(f"recovery overhead  : {hit.t_recovery:.6f} s "
          "(new combination coefficients only)")
    print("alternate combination coefficients:")
    for ix, c in sorted(hit.coefficients.items()):
        print(f"  grid {ix}: {c:+.0f}")


if __name__ == "__main__":
    main()
