#!/usr/bin/env python
"""Mini scaling study (Fig. 11): total time and parallel efficiency of the
three techniques across process counts, with and without failures.

Run:  python examples/scaling_study.py           (quick, ~1 min)
      python examples/scaling_study.py --paper   (paper-scale regime)
"""

import sys

from repro.experiments.fig11 import (format_fig11, run_fig11,
                                     run_fig11_paper_scale)


def main():
    if "--paper" in sys.argv:
        pts = run_fig11_paper_scale()
    else:
        pts = run_fig11(n=7, steps=16, diag_procs=(2, 4, 8),
                        failure_counts=(0, 2), compute_scale=200.0)
    print(format_fig11(pts))
    print("\nReading guide: AC/RC scale well without failures; CR pays "
          "checkpoint writes\nand per-checkpoint detection; two failures "
          "add the beta-ULFM reconstruction\ncost, which explodes with "
          "core count (Table I).")


if __name__ == "__main__":
    main()
