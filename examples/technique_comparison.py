#!/usr/bin/env python
"""Compare the three data-recovery techniques on both of the paper's
clusters: recovery overhead (Fig. 9) and accuracy after losses (Fig. 10),
side by side.

Run:  python examples/technique_comparison.py
"""

from repro.core import AppConfig, choose_lost_grids, run_app
from repro.experiments.fig9 import recovery_overhead
from repro.experiments.report import format_table
from repro.machine.presets import IDEAL, OPL, RAIJIN


def overhead_table():
    rows = []
    for machine in (OPL, RAIJIN):
        for code in ("CR", "RC", "AC"):
            cfg = AppConfig(n=8, level=4, technique_code=code, steps=16,
                            diag_procs=8, checkpoint_count=4)
            lost = choose_lost_grids(cfg, 2, seed=1)
            cfg = AppConfig(n=8, level=4, technique_code=code, steps=16,
                            diag_procs=8, checkpoint_count=4,
                            simulated_lost_gids=lost)
            m = run_app(cfg, machine)
            rows.append([machine.name, code, m.world_size,
                         recovery_overhead(m), m.t_total])
    print(format_table(
        ["cluster", "tech", "procs", "recovery(s)", "total(s)"], rows,
        title="Recovery overhead, 2 lost grids (simulated failures)",
        floatfmt="12.5f"))


def accuracy_table():
    rows = []
    for code in ("CR", "RC", "AC"):
        base_cfg = AppConfig(n=8, level=4, technique_code=code, steps=64,
                             diag_procs=2, checkpoint_count=4)
        base = run_app(base_cfg, IDEAL)
        for n_lost in (1, 3, 5):
            errs = []
            for seed in range(4):
                probe = AppConfig(n=8, level=4, technique_code=code,
                                  steps=64, diag_procs=2, checkpoint_count=4)
                lost = choose_lost_grids(probe, n_lost, seed=seed)
                cfg = AppConfig(n=8, level=4, technique_code=code, steps=64,
                                diag_procs=2, checkpoint_count=4,
                                simulated_lost_gids=lost)
                errs.append(run_app(cfg, IDEAL).error_l1)
            avg = sum(errs) / len(errs)
            rows.append([code, n_lost, avg, avg / base.error_l1])
    print()
    print(format_table(
        ["tech", "lost", "avg l1 error", "vs baseline"], rows,
        title="Accuracy after recovery (avg over 4 random loss patterns)",
        floatfmt="12.4e"))


def main():
    overhead_table()
    accuracy_table()
    print("\nReading guide: CR pays disk I/O but recovers exactly; RC pays "
          "replica processes\n(exact for diagonal losses, approximate for "
          "resampled lower grids); AC pays\nalmost nothing and recovers "
          "approximately - in the paper's multi-loss regime it\nbeats RC's "
          "resampling on average.")


if __name__ == "__main__":
    main()
