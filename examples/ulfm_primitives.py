#!/usr/bin/env python
"""Educational tour of the simulated ULFM primitives, outside the PDE app:
error returns on failure, revoke, shrink, agree, same-host spawn, merge
and rank re-ordering — the building blocks of the paper's Figs. 3-7.

Run:  python examples/ulfm_primitives.py
"""

from repro.ft import failed_procs_list, select_rank_key
from repro.machine import Hostfile
from repro.machine.presets import OPL
from repro.mpi import ProcFailedError, Universe


async def worker(ctx):
    comm = ctx.comm
    log = lambda msg: ctx.rank == 0 and print(f"  [t={ctx.wtime():.4f}s] {msg}")

    # 1. everyone is healthy: a barrier succeeds
    await comm.barrier()
    log(f"barrier ok on {comm.size} ranks")

    # 2. rank 3 is killed at t=0.5 while we compute
    await ctx.compute(1.0)

    # 3. the next collective reports MPI_ERR_PROC_FAILED
    try:
        await comm.barrier()
        log("barrier ok (unexpected)")
    except ProcFailedError as exc:
        log(f"barrier failed: MPI_ERR_PROC_FAILED, ranks {exc.failed_ranks}")

    # 4. acknowledge and identify the failures
    comm.failure_ack()
    acked = comm.failure_get_acked()
    log(f"failure_get_acked: {acked.size} dead process(es)")

    # 5. revoke unblocks everyone, shrink rebuilds a working communicator
    comm.revoke()
    shrunk = await comm.shrink()
    failed_ranks, total = failed_procs_list(comm, shrunk)
    log(f"shrink: {comm.size} -> {shrunk.size} ranks; failed list "
        f"{failed_ranks} (Fig. 6)")

    # 6. re-spawn the dead rank on its original host (Fig. 5)
    host = ctx.universe.hostfile.host_of_rank(failed_ranks[0])
    inter = await shrunk.spawn_multiple(total, replacement,
                                        host_names=[host.name])
    log(f"spawned {total} replacement(s) on {host.name}")

    # 7. merge and restore the original rank order (Figs. 2, 7)
    merged = await inter.merge(high=False)
    await inter.agree(1)
    if merged.rank == 0:
        for i, old in enumerate(failed_ranks):
            await merged.send(old, dest=shrunk.size + i, tag=1)
    key = select_rank_key(merged.rank, shrunk.size, failed_ranks, comm.size)
    repaired = await merged.split(0, key)
    total_check = await repaired.allreduce(1)
    log(f"repaired communicator: rank {repaired.rank}/{repaired.size}, "
        f"{total_check} participants (original order restored)")
    return (comm.rank, repaired.rank)


async def replacement(ctx):
    parent = ctx.get_parent()
    await parent.agree(1)
    merged = await parent.merge(high=True)
    old_rank = await merged.recv(source=0, tag=1)
    repaired = await merged.split(0, old_rank)
    await repaired.allreduce(1)
    print(f"  [t={ctx.wtime():.4f}s] replacement regained rank "
          f"{repaired.rank}/{repaired.size}")
    return ("respawned", repaired.rank)


def main():
    print("ULFM primitives walkthrough (6 ranks, rank 3 dies at t=0.5)")
    uni = Universe(OPL, hostfile=Hostfile.uniform(3, slots=2))
    job = uni.launch(6, worker)
    uni.kill_rank(job, 3, at=0.5)
    uni.run(raise_task_failures=False)
    print("final per-rank (old, new) ranks:", job.results())


if __name__ == "__main__":
    main()
