#!/usr/bin/env python
"""Tracked substrate benchmark: emits ``BENCH_substrate.json``.

Measures the four rates the simulation substrate's performance is judged
by, on fixed workloads, and writes them to a JSON file committed next to
the repo so regressions are visible in review diffs:

* ``msg_per_s``         — ping-pong message throughput (8 pairs x 500
  rounds on the IDEAL machine);
* ``events_per_s``      — engine events processed per wall second in the
  same run (scheduler overhead);
* ``solver_steps_per_s`` — serial Lax–Wendroff steps per wall second on a
  ``2^7 x 2^7`` periodic grid (the allocation-free kernel path);
* ``coll_rounds_per_s`` — allreduce rounds per wall second (16 ranks x
  200 rounds).

Usage::

    PYTHONPATH=src python scripts/bench.py [-o BENCH_substrate.json]
    PYTHONPATH=src python scripts/bench.py --smoke   # CI: runs, no JSON
    PYTHONPATH=src python scripts/bench.py --experiments  # sweep engine
    PYTHONPATH=src python scripts/bench.py --scale [--smoke]  # rank scaling
    PYTHONPATH=src python scripts/bench.py --service [--smoke]  # HTTP API

``--scale`` measures events/s and peak RSS versus rank count (16 ->
8192) for the batch-vectorised substrate against the per-rank event
path, on an allreduce workload and a ring halo-exchange workload, and
merges the curves into ``BENCH_substrate.json`` under ``"scale"``.
Every point runs in its own subprocess: ``ru_maxrss`` is monotone per
process, so peak-RSS curves are only meaningful with one measurement
per process image.  The event path's rendezvous is O(ranks) per arrival
(quadratic per round), so its allreduce curve is capped at 1024 ranks —
the cap is recorded in the JSON, not silently applied.

Each measurement is the best of ``--repeats`` runs (default 3) — wall
time of the fastest run, which is the least noisy estimator on a shared
machine.  ``--smoke`` shrinks every workload to a few iterations, runs
each once and skips the JSON write: it proves the benchmark harness
still executes (imports, workloads, stat plumbing) in seconds, without
producing numbers anyone should read.

``--experiments`` benchmarks the sweep engine instead (emitting
``BENCH_experiments.json``): a headline-shaped fig9 sweep serial vs
4-worker pool vs warm-cache rerun, plus fig11's intrinsic cache-dedup
rate.  Pool speedup is only meaningful on multicore hosts — the file
records ``cpu_count`` so readers can judge the pool numbers.

``--service`` benchmarks the results service (emitting
``BENCH_service.json``): cold vs warm experiment-document latency over
real HTTP against a ``repro serve`` instance, the N-concurrent-clients
-> 1-execution dedup factor of the coalescing job queue, and a
shard-scaling curve of the on-disk store (put/get/scan latency vs entry
count).  Unlike the other smoke modes, ``--service --smoke`` still
writes the JSON (with ``"smoke": true``) so CI can upload it as an
artifact.
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.machine.presets import IDEAL  # noqa: E402
from repro.mpi import Universe  # noqa: E402
from repro.pde.advection import AdvectionProblem  # noqa: E402
from repro.pde.lax_wendroff import SerialAdvectionSolver  # noqa: E402

N_PAIRS = 8
N_ROUNDS = 500
N_COLL_RANKS = 16
N_COLL_ROUNDS = 200
SOLVER_LEVEL = 7
N_SOLVER_STEPS = 400


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; it is monotone
    over the process lifetime, so callers who want per-workload peaks must
    isolate each workload in its own process (the ``--scale`` mode does).
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        rss //= 1024
    return round(rss / 1024.0, 1)


def _best(fn, repeats: int):
    """(best wall seconds, last result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_messages(repeats: int) -> dict:
    async def main(ctx):
        partner = ctx.rank ^ 1
        if ctx.rank % 2 == 0:
            for i in range(N_ROUNDS):
                await ctx.comm.send(i, dest=partner, tag=0)
                await ctx.comm.recv(source=partner, tag=1)
        else:
            for i in range(N_ROUNDS):
                await ctx.comm.recv(source=partner, tag=0)
                await ctx.comm.send(i, dest=partner, tag=1)

    def run():
        uni = Universe(IDEAL)
        uni.launch(2 * N_PAIRS, main)
        uni.run()
        return uni

    secs, uni = _best(run, repeats)
    messages = uni.stats.messages
    events = uni.engine.events_processed
    return {
        "messages": messages,
        "events": events,
        "msg_per_s": round(messages / secs),
        "events_per_s": round(events / secs),
    }


def bench_collectives(repeats: int) -> dict:
    async def main(ctx):
        for _ in range(N_COLL_ROUNDS):
            await ctx.comm.allreduce(ctx.rank)

    def run():
        uni = Universe(IDEAL)
        uni.launch(N_COLL_RANKS, main)
        uni.run()
        return uni

    secs, uni = _best(run, repeats)
    return {
        "coll_calls": uni.stats.collectives["allreduce"],
        "coll_rounds_per_s": round(N_COLL_ROUNDS / secs),
    }


def bench_solver(repeats: int) -> dict:
    def run():
        solver = SerialAdvectionSolver(AdvectionProblem(), SOLVER_LEVEL,
                                       SOLVER_LEVEL, dt=1e-3)
        solver.step(N_SOLVER_STEPS)
        return solver

    secs, _ = _best(run, repeats)
    return {
        "solver_grid": [1 << SOLVER_LEVEL, 1 << SOLVER_LEVEL],
        "solver_steps": N_SOLVER_STEPS,
        "solver_steps_per_s": round(N_SOLVER_STEPS / secs),
    }


# ----------------------------------------------------------------------
# rank-scaling benchmark (--scale -> "scale" section of the JSON)
# ----------------------------------------------------------------------

#: rank counts measured by --scale (smoke keeps the first three)
SCALE_RANKS = (16, 64, 256, 1024, 4096, 8192)
SCALE_RANKS_SMOKE = (16, 64, 256)
#: total rank-rounds per point; rounds = max(4, budget // ranks) so the
#: wall time per point stays roughly flat as ranks grow
SCALE_BUDGET = 16384
SCALE_BUDGET_SMOKE = 1024
#: largest rank count measured on the event path, per workload: the
#: rendezvous dead-member scan is O(ranks) per arrival, so event-path
#: allreduce is quadratic per round and unmeasurable at fig scale
SCALE_EVENT_CAP = {"allreduce": 1024, "halo": 8192}
_SCALE_HALO_WIDTH = 64


def run_scale_point(spec: dict) -> dict:
    """One (workload, mode, ranks) measurement, in-process.

    Invoked in a fresh subprocess per point by :func:`run_scale_bench` so
    the reported peak RSS belongs to this point alone.
    """
    import numpy as np

    workload = spec["workload"]
    n = spec["ranks"]
    rounds = spec["rounds"]
    batch = spec["mode"] == "batch"

    if workload == "allreduce":
        async def main(ctx):
            comm = ctx.comm
            for _ in range(rounds):
                await comm.allreduce(1.0)
    else:  # halo: the solvers' ring-exchange idiom
        async def main(ctx):
            comm, r, size = ctx.comm, ctx.rank, ctx.size
            prev_r, next_r = (r - 1) % size, (r + 1) % size
            u = np.full(_SCALE_HALO_WIDTH, float(r))
            for _ in range(rounds):
                lo, hi = await comm.exchange(
                    ((prev_r, 1, u.copy()), (next_r, 2, u.copy())),
                    ((prev_r, 2), (next_r, 1)), copy=False)
                u = (u + lo + hi) / 3.0

    t0 = time.perf_counter()
    uni = Universe(IDEAL, batch=batch)
    uni.launch(n, main)
    uni.run()
    wall = time.perf_counter() - t0
    events = uni.engine.events_processed
    rank_rounds = n * rounds
    return {
        "workload": workload,
        "mode": spec["mode"],
        "ranks": n,
        "rounds": rounds,
        "wall_s": round(wall, 3),
        "events": events,
        "events_per_s": round(events / wall),
        "rank_rounds_per_s": round(rank_rounds / wall),
        "peak_rss_mb": peak_rss_mb(),
    }


def run_scale_bench(output: str, smoke: bool) -> int:
    ranks = SCALE_RANKS_SMOKE if smoke else SCALE_RANKS
    budget = SCALE_BUDGET_SMOKE if smoke else SCALE_BUDGET
    points = []
    for workload in ("allreduce", "halo"):
        for n in ranks:
            for mode in ("batch", "event"):
                if mode == "event" and n > SCALE_EVENT_CAP[workload]:
                    continue
                points.append({"workload": workload, "mode": mode,
                               "ranks": n, "rounds": max(4, budget // n)})

    results = []
    for spec in points:
        # one subprocess per point: ru_maxrss is per-process-monotone
        proc = subprocess.run(
            [sys.executable, __file__, "--scale-point", json.dumps(spec)],
            capture_output=True, text=True)
        if proc.returncode != 0:
            print(proc.stdout, proc.stderr, sep="\n", file=sys.stderr)
            print(f"scale point failed: {spec}", file=sys.stderr)
            return 1
        point = json.loads(proc.stdout)
        results.append(point)
        print(f"{point['workload']:>10} {point['mode']:>6} "
              f"ranks={point['ranks']:<5} wall={point['wall_s']:>8.3f}s "
              f"events/s={point['events_per_s']:>10,} "
              f"rss={point['peak_rss_mb']:.1f}MB")

    by_key = {(p["workload"], p["mode"], p["ranks"]): p for p in results}
    speedups = []
    for workload in ("allreduce", "halo"):
        for n in ranks:
            b = by_key.get((workload, "batch", n))
            e = by_key.get((workload, "event", n))
            if b and e:
                speedups.append({
                    "workload": workload, "ranks": n,
                    "events_per_s": round(
                        b["events_per_s"] / e["events_per_s"], 2),
                    "rank_rounds_per_s": round(
                        b["rank_rounds_per_s"] / e["rank_rounds_per_s"], 2),
                })
    for s in speedups:
        print(f"{s['workload']:>10} ranks={s['ranks']:<5} batch/event "
              f"speedup: {s['rank_rounds_per_s']}x wall, "
              f"{s['events_per_s']}x events/s")

    section = {
        "smoke": smoke,
        "rank_rounds_budget": budget,
        "event_path_rank_cap": SCALE_EVENT_CAP,
        "points": results,
        "batch_speedup": speedups,
    }
    path = Path(output)
    merged = json.loads(path.read_text()) if path.exists() else {}
    merged["scale"] = section
    path.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"wrote scale section to {output}"
          + (" (smoke numbers: not representative)" if smoke else ""))
    return 0


# ----------------------------------------------------------------------
# sweep-engine benchmark (--experiments -> BENCH_experiments.json)
# ----------------------------------------------------------------------

#: fig9 workload for the sweep benchmark (headline shape, reduced steps)
SWEEP_FIG9 = dict(n=8, steps=8, diag_procs=8, seeds=(0, 1, 2))
SWEEP_WORKERS = 4


def bench_sweep_fig9() -> dict:
    """Serial vs pooled vs warm-cache wall clock on one fig9 sweep."""
    import os

    from repro.experiments.fig9 import run_fig9
    from repro.sweep import RunCache, SweepRunner

    def timed(runner):
        t0 = time.perf_counter()
        pts = run_fig9(runner=runner, **SWEEP_FIG9)
        return time.perf_counter() - t0, pts

    serial = SweepRunner(workers=1)
    t_serial, pts_serial = timed(serial)
    n_runs = serial.cache.stats()["misses"]

    pooled = SweepRunner(workers=SWEEP_WORKERS)
    t_pool, pts_pool = timed(pooled)

    # warm rerun on the serial runner's now-populated cache: every point
    # is a hit, which is what a config-tweak-and-rerun workflow sees
    t_warm, pts_warm = timed(SweepRunner(workers=1, cache=serial.cache))

    assert [vars(p) for p in pts_pool] == [vars(p) for p in pts_serial], \
        "pool run diverged from serial"
    assert [vars(p) for p in pts_warm] == [vars(p) for p in pts_serial], \
        "warm run diverged from serial"
    warm_stats = serial.cache.stats()
    return {
        "fig9_workload": {**SWEEP_FIG9, "runs": n_runs},
        "cpu_count": os.cpu_count(),
        "serial_wall_s": round(t_serial, 3),
        "pool_workers": SWEEP_WORKERS,
        "pool_wall_s": round(t_pool, 3),
        "pool_speedup": round(t_serial / t_pool, 2),
        "warm_wall_s": round(t_warm, 4),
        "warm_speedup": round(t_serial / t_warm, 1),
        "warm_cache_hits": warm_stats["hits"],
        "warm_cache_hit_rate": round(warm_stats["hit_rate"], 3),
    }


def bench_sweep_fig11_dedup() -> dict:
    """Intrinsic cache hits inside one fig11 sweep (shared baselines and
    zero-failure runs deduplicate against stage-1 baseline points)."""
    from repro.experiments.fig11 import run_fig11
    from repro.sweep import SweepRunner

    runner = SweepRunner(workers=1)
    t0 = time.perf_counter()
    run_fig11(n=7, steps=16, diag_procs=(2, 4, 8), seeds=(0,),
              compute_scale=200.0, runner=runner)
    wall = time.perf_counter() - t0
    stats = runner.cache.stats()
    return {
        "fig11_wall_s": round(wall, 3),
        "fig11_cache_hits": stats["hits"],
        "fig11_cache_misses": stats["misses"],
        "fig11_hit_rate": round(stats["hit_rate"], 3),
    }


def run_experiments_bench(output: str, smoke: bool) -> int:
    if smoke:
        global SWEEP_FIG9, SWEEP_WORKERS
        SWEEP_FIG9 = dict(n=7, steps=4, diag_procs=4, seeds=(0,),
                          lost_counts=(1,))
        SWEEP_WORKERS = 2
    results = {"python": platform.python_version()}
    results.update(bench_sweep_fig9())
    if not smoke:
        results.update(bench_sweep_fig11_dedup())
    for key in ("serial_wall_s", "pool_wall_s", "pool_speedup",
                "warm_wall_s", "warm_speedup", "warm_cache_hit_rate"):
        print(f"{key:>20}: {results[key]}")
    if smoke:
        print("sweep smoke ok (numbers above are not representative; "
              "no JSON written)")
    else:
        print(f"{'fig11_hit_rate':>20}: {results['fig11_hit_rate']}")
        Path(output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {output}")
    return 0


# ----------------------------------------------------------------------
# results-service benchmark (--service -> BENCH_service.json)
# ----------------------------------------------------------------------

#: warm requests timed against the already-computed document
SERVICE_WARM_REQUESTS = 100
#: concurrent identical cold requests for the dedup measurement
SERVICE_DEDUP_CLIENTS = 8
#: store sizes for the shard-scaling curve (entries per store)
SERVICE_SHARD_COUNTS = (64, 512, 4096)
SERVICE_SHARD_PROBES = 128


def _pctl(values, q: float) -> float:
    """The q-quantile by nearest rank (q in [0, 1])."""
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, round(q * (len(ordered) - 1)))]


def bench_service_http(tmp_dir: Path, smoke: bool) -> dict:
    """Cold vs warm document latency and the coalescing dedup factor,
    measured over real HTTP against an in-process ``repro serve``."""
    import threading

    from repro.service.client import ServiceClient
    from repro.service.server import create_server

    warm_n = 10 if smoke else SERVICE_WARM_REQUESTS
    clients = 4 if smoke else SERVICE_DEDUP_CLIENTS

    server = create_server(port=0, cache_dir=str(tmp_dir / "cache"),
                           queue_workers=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(
        f"http://127.0.0.1:{server.server_address[1]}", timeout=60)
    try:
        client.wait_healthy()

        # cold: one end-to-end document — 202, background compute, poll
        # to 200 — through the real table1 driver
        t0 = time.perf_counter()
        client.experiment("table1", poll_interval=0.02, timeout=600)
        cold_s = time.perf_counter() - t0

        # warm: the same document straight from the shared store
        latencies_ms = []
        for _ in range(warm_n):
            t0 = time.perf_counter()
            status, _ = client.experiment_once("table1")
            latencies_ms.append((time.perf_counter() - t0) * 1000.0)
            assert status == 200, f"warm request answered {status}"

        # dedup: N clients fire the same cold request at the same instant;
        # the job queue must run the computation exactly once
        before = client.cache_stats()["queue"]
        barrier = threading.Barrier(clients)
        tickets = []
        lock = threading.Lock()

        def fire():
            barrier.wait()
            ticket = client.experiment_once("fig10")
            with lock:
                tickets.append(ticket)

        threads = [threading.Thread(target=fire) for _ in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # snapshot before the poll loop: each poll that lands mid-compute
        # also coalesces, which would inflate the dedup count
        fired = client.cache_stats()["queue"]
        client.experiment("fig10", poll_interval=0.02, timeout=600)
        after = client.cache_stats()["queue"]

        executed = after["executed"] - before["executed"]
        deduped = fired["deduped"] - before["deduped"]
        jobs = {p["job"] for s, p in tickets if s == 202}
        assert executed == 1, f"dedup broken: {executed} executions"
        assert len(jobs) <= 1, f"dedup broken: {len(jobs)} distinct jobs"
        warm_p50 = round(_pctl(latencies_ms, 0.50), 2)
        assert warm_p50 < 50.0, f"warm p50 {warm_p50}ms over budget"
        return {
            "cold": {"experiment": "table1", "wall_s": round(cold_s, 3)},
            "warm": {
                "requests": warm_n,
                "p50_ms": warm_p50,
                "p95_ms": round(_pctl(latencies_ms, 0.95), 2),
                "max_ms": round(max(latencies_ms), 2),
            },
            "dedup": {
                "experiment": "fig10",
                "clients": clients,
                "jobs_executed": executed,
                "requests_deduped": deduped,
                "factor": clients,     # N concurrent requests -> 1 run
            },
        }
    finally:
        server.shutdown()
        server.server_close()
        server.state.queue.shutdown(wait=False)


def bench_service_shards(tmp_dir: Path, smoke: bool) -> list:
    """Put/get/scan latency of the sharded store vs entry count."""
    import hashlib

    from repro.service.store import SharedStore

    counts = (32,) if smoke else SERVICE_SHARD_COUNTS
    probes = 16 if smoke else SERVICE_SHARD_PROBES
    blob = b"x" * 2048
    curve = []
    for count in counts:
        store = SharedStore(tmp_dir / f"shards-{count}")
        keys = [hashlib.sha256(str(i).encode()).hexdigest()[:16]
                for i in range(count)]
        t0 = time.perf_counter()
        for key in keys:
            store.put(key, blob)
        put_s = time.perf_counter() - t0

        sample = keys[::max(1, count // probes)][:probes]
        t0 = time.perf_counter()
        for key in sample:
            assert store.get(key) is not None
        get_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        scanned = len(store.keys())
        scan_s = time.perf_counter() - t0
        assert scanned == count

        curve.append({
            "entries": count,
            "shards": store.stats().shards,
            "put_us_per_entry": round(put_s / count * 1e6, 1),
            "get_us_per_entry": round(get_s / len(sample) * 1e6, 1),
            "scan_ms": round(scan_s * 1000.0, 2),
        })
    return curve


def run_service_bench(output: str, smoke: bool) -> int:
    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        tmp_dir = Path(tmp)
        results = {
            "python": platform.python_version(),
            "smoke": smoke,
            **bench_service_http(tmp_dir, smoke),
            "shard_scaling": bench_service_shards(tmp_dir, smoke),
        }

    print(f"{'cold_wall_s':>20}: {results['cold']['wall_s']}")
    print(f"{'warm_p50_ms':>20}: {results['warm']['p50_ms']}")
    print(f"{'warm_p95_ms':>20}: {results['warm']['p95_ms']}")
    d = results["dedup"]
    print(f"{'dedup':>20}: {d['clients']} clients -> "
          f"{d['jobs_executed']} execution "
          f"({d['requests_deduped']} deduped)")
    for point in results["shard_scaling"]:
        print(f"{'shard_scaling':>20}: entries={point['entries']:<5} "
              f"shards={point['shards']:<3} "
              f"get={point['get_us_per_entry']}us "
              f"scan={point['scan_ms']}ms")
    Path(output).write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {output}"
          + (" (smoke numbers: not representative)" if smoke else ""))
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("-o", "--output", default=None,
                    help="output JSON path (default: BENCH_substrate.json, "
                         "or BENCH_experiments.json with --experiments)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="runs per workload; best is kept (default 3)")
    ap.add_argument("--smoke", action="store_true",
                    help="tiny workloads, one repeat, no JSON write; "
                         "exercises the harness for CI")
    ap.add_argument("--experiments", action="store_true",
                    help="benchmark the sweep engine (serial vs pool vs "
                         "warm cache) instead of the substrate")
    ap.add_argument("--scale", action="store_true",
                    help="events/s and peak-RSS curves vs rank count, "
                         "batch vs event substrate (merged into the JSON "
                         "under 'scale')")
    ap.add_argument("--service", action="store_true",
                    help="benchmark the results service over HTTP (cold "
                         "vs warm latency, request dedup, shard scaling)")
    ap.add_argument("--scale-point", metavar="JSON", default=None,
                    help=argparse.SUPPRESS)  # internal: one point, one proc
    args = ap.parse_args(argv)

    if args.scale_point is not None:
        print(json.dumps(run_scale_point(json.loads(args.scale_point))))
        return 0
    if args.scale:
        return run_scale_bench(args.output or "BENCH_substrate.json",
                               args.smoke)
    if args.experiments:
        return run_experiments_bench(
            args.output or "BENCH_experiments.json", args.smoke)
    if args.service:
        return run_service_bench(args.output or "BENCH_service.json",
                                 args.smoke)
    if args.output is None:
        args.output = "BENCH_substrate.json"

    if args.smoke:
        global N_PAIRS, N_ROUNDS, N_COLL_RANKS, N_COLL_ROUNDS
        global SOLVER_LEVEL, N_SOLVER_STEPS
        N_PAIRS, N_ROUNDS = 2, 10
        N_COLL_RANKS, N_COLL_ROUNDS = 4, 5
        SOLVER_LEVEL, N_SOLVER_STEPS = 5, 10
        args.repeats = 1

    results = {
        "python": platform.python_version(),
        "workloads": {
            "ping_pong": f"{N_PAIRS} pairs x {N_ROUNDS} rounds, IDEAL",
            "allreduce": f"{N_COLL_RANKS} ranks x {N_COLL_ROUNDS} rounds, "
                         "IDEAL",
            "solver": f"serial Lax-Wendroff {1 << SOLVER_LEVEL}^2 periodic, "
                      f"{N_SOLVER_STEPS} steps",
        },
    }
    results.update(bench_messages(args.repeats))
    results.update(bench_collectives(args.repeats))
    results.update(bench_solver(args.repeats))
    results["peak_rss_mb"] = peak_rss_mb()

    for key in ("msg_per_s", "events_per_s", "coll_rounds_per_s",
                "solver_steps_per_s"):
        print(f"{key:>20}: {results[key]:,}")
    if args.smoke:
        print("smoke run ok (numbers above are not representative; "
              "no JSON written)")
    else:
        Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
