#!/usr/bin/env python
"""Tracked substrate benchmark: emits ``BENCH_substrate.json``.

Measures the four rates the simulation substrate's performance is judged
by, on fixed workloads, and writes them to a JSON file committed next to
the repo so regressions are visible in review diffs:

* ``msg_per_s``         — ping-pong message throughput (8 pairs x 500
  rounds on the IDEAL machine);
* ``events_per_s``      — engine events processed per wall second in the
  same run (scheduler overhead);
* ``solver_steps_per_s`` — serial Lax–Wendroff steps per wall second on a
  ``2^7 x 2^7`` periodic grid (the allocation-free kernel path);
* ``coll_rounds_per_s`` — allreduce rounds per wall second (16 ranks x
  200 rounds).

Usage::

    PYTHONPATH=src python scripts/bench.py [-o BENCH_substrate.json]
    PYTHONPATH=src python scripts/bench.py --smoke   # CI: runs, no JSON

Each measurement is the best of ``--repeats`` runs (default 3) — wall
time of the fastest run, which is the least noisy estimator on a shared
machine.  ``--smoke`` shrinks every workload to a few iterations, runs
each once and skips the JSON write: it proves the benchmark harness
still executes (imports, workloads, stat plumbing) in seconds, without
producing numbers anyone should read.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.machine.presets import IDEAL  # noqa: E402
from repro.mpi import Universe  # noqa: E402
from repro.pde.advection import AdvectionProblem  # noqa: E402
from repro.pde.lax_wendroff import SerialAdvectionSolver  # noqa: E402

N_PAIRS = 8
N_ROUNDS = 500
N_COLL_RANKS = 16
N_COLL_ROUNDS = 200
SOLVER_LEVEL = 7
N_SOLVER_STEPS = 400


def _best(fn, repeats: int):
    """(best wall seconds, last result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_messages(repeats: int) -> dict:
    async def main(ctx):
        partner = ctx.rank ^ 1
        if ctx.rank % 2 == 0:
            for i in range(N_ROUNDS):
                await ctx.comm.send(i, dest=partner, tag=0)
                await ctx.comm.recv(source=partner, tag=1)
        else:
            for i in range(N_ROUNDS):
                await ctx.comm.recv(source=partner, tag=0)
                await ctx.comm.send(i, dest=partner, tag=1)

    def run():
        uni = Universe(IDEAL)
        uni.launch(2 * N_PAIRS, main)
        uni.run()
        return uni

    secs, uni = _best(run, repeats)
    messages = uni.stats.messages
    events = uni.engine.events_processed
    return {
        "messages": messages,
        "events": events,
        "msg_per_s": round(messages / secs),
        "events_per_s": round(events / secs),
    }


def bench_collectives(repeats: int) -> dict:
    async def main(ctx):
        for _ in range(N_COLL_ROUNDS):
            await ctx.comm.allreduce(ctx.rank)

    def run():
        uni = Universe(IDEAL)
        uni.launch(N_COLL_RANKS, main)
        uni.run()
        return uni

    secs, uni = _best(run, repeats)
    return {
        "coll_calls": uni.stats.collectives["allreduce"],
        "coll_rounds_per_s": round(N_COLL_ROUNDS / secs),
    }


def bench_solver(repeats: int) -> dict:
    def run():
        solver = SerialAdvectionSolver(AdvectionProblem(), SOLVER_LEVEL,
                                       SOLVER_LEVEL, dt=1e-3)
        solver.step(N_SOLVER_STEPS)
        return solver

    secs, _ = _best(run, repeats)
    return {
        "solver_grid": [1 << SOLVER_LEVEL, 1 << SOLVER_LEVEL],
        "solver_steps": N_SOLVER_STEPS,
        "solver_steps_per_s": round(N_SOLVER_STEPS / secs),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("-o", "--output", default="BENCH_substrate.json",
                    help="output JSON path (default: %(default)s)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="runs per workload; best is kept (default 3)")
    ap.add_argument("--smoke", action="store_true",
                    help="tiny workloads, one repeat, no JSON write; "
                         "exercises the harness for CI")
    args = ap.parse_args(argv)

    if args.smoke:
        global N_PAIRS, N_ROUNDS, N_COLL_RANKS, N_COLL_ROUNDS
        global SOLVER_LEVEL, N_SOLVER_STEPS
        N_PAIRS, N_ROUNDS = 2, 10
        N_COLL_RANKS, N_COLL_ROUNDS = 4, 5
        SOLVER_LEVEL, N_SOLVER_STEPS = 5, 10
        args.repeats = 1

    results = {
        "python": platform.python_version(),
        "workloads": {
            "ping_pong": f"{N_PAIRS} pairs x {N_ROUNDS} rounds, IDEAL",
            "allreduce": f"{N_COLL_RANKS} ranks x {N_COLL_ROUNDS} rounds, "
                         "IDEAL",
            "solver": f"serial Lax-Wendroff {1 << SOLVER_LEVEL}^2 periodic, "
                      f"{N_SOLVER_STEPS} steps",
        },
    }
    results.update(bench_messages(args.repeats))
    results.update(bench_collectives(args.repeats))
    results.update(bench_solver(args.repeats))

    for key in ("msg_per_s", "events_per_s", "coll_rounds_per_s",
                "solver_steps_per_s"):
        print(f"{key:>20}: {results[key]:,}")
    if args.smoke:
        print("smoke run ok (numbers above are not representative; "
              "no JSON written)")
    else:
        Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
