#!/usr/bin/env python
"""Run the ULF lint over the repository (same checks as
``python -m repro lint``; rule catalog in docs/analysis.md).

Usage: python scripts/lint.py [paths ...] [--format json]
                              [--select RULE] [--ignore RULE] [--rules]

All flags pass through to ``repro lint``.  Exit codes: 0 clean,
1 violations, 2 usage error.  The lint also runs inside tier-1
(`tests/analysis/test_lint.py::test_repro_package_is_lint_clean` keeps
the package clean on every pytest run).
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["lint", *sys.argv[1:]]))
