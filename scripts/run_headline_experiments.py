#!/usr/bin/env python
"""Run every paper experiment at the headline (EXPERIMENTS.md) parameters
and dump the formatted tables.  Slower than the benchmark suite; intended
to be run once to refresh EXPERIMENTS.md.

All sections run through one shared sweep runner, so runs common to
several experiments (the fig8/table1 failure-free baselines, fig11's
zero-failure points) are computed once and served from the memoised run
cache afterwards.

Usage::

    PYTHONPATH=src python scripts/run_headline_experiments.py \
        [-o outfile] [--workers N] [--cache DIR]
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import fig8, fig9, fig10, fig11, table1  # noqa: E402
from repro.sweep import RunCache, SweepRunner  # noqa: E402


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("-o", "--output", default=None,
                    help="output file (default: stdout)")
    ap.add_argument("--workers", type=int, default=None,
                    help="parallel sweep workers (default: REPRO_WORKERS "
                         "env var, else 1)")
    ap.add_argument("--cache", metavar="DIR", default=None,
                    help="persist the run cache to DIR across invocations")
    args = ap.parse_args(argv)

    out = open(args.output, "w") if args.output else sys.stdout
    runner = SweepRunner(workers=args.workers,
                         cache=RunCache(directory=args.cache))

    def section(title, fn):
        t0 = time.time()
        text = fn()
        print(f"\n## {title}\n", file=out)
        print(text, file=out)
        print(f"[wall {time.time() - t0:.0f}s]", file=out)
        out.flush()

    section("Table I (2 real failures, 19..304 cores)",
            lambda: table1.format_table1(
                table1.run_table1(steps=8, runner=runner)))

    section("Fig. 8 (failure identification / reconstruction, avg 3 seeds)",
            lambda: fig8.format_fig8(fig8.run_fig8(steps=8, seeds=(0, 1, 2),
                                                   runner=runner)))

    section("Fig. 9a (recovery overhead, OPL + Raijin, avg 3 seeds)",
            lambda: fig9.format_fig9(fig9.run_fig9(
                n=8, steps=8, diag_procs=8, seeds=(0, 1, 2),
                runner=runner)))

    section("Fig. 9b (paper-scale process-time overhead)",
            lambda: fig9.format_fig9(fig9.run_fig9_paper_scale(
                seeds=(0,), runner=runner)))

    section("Fig. 10 (accuracy, n=9, avg 10 seeds)",
            lambda: fig10.format_fig10(fig10.run_fig10(
                n=9, steps=128, lost_counts=(0, 1, 2, 3, 4, 5),
                seeds=tuple(range(10)), runner=runner)))

    section("Fig. 11 (paper-scale execution time / efficiency)",
            lambda: fig11.format_fig11(
                fig11.run_fig11_paper_scale(runner=runner)))

    stats = runner.cache.stats()
    print(f"\n[sweep] workers={runner.workers} cache: {stats['hits']} "
          f"hit(s), {stats['misses']} miss(es) "
          f"(hit rate {stats['hit_rate']:.2f})", file=out)
    if out is not sys.stdout:
        out.close()


if __name__ == "__main__":
    main()
