#!/usr/bin/env python
"""Run every paper experiment at the headline (EXPERIMENTS.md) parameters
and dump the formatted tables.  Slower than the benchmark suite; intended
to be run once to refresh EXPERIMENTS.md.

Usage: python scripts/run_headline_experiments.py [outfile]
"""

import sys
import time

from repro.experiments import fig8, fig9, fig10, fig11, table1


def main():
    out = open(sys.argv[1], "w") if len(sys.argv) > 1 else sys.stdout

    def section(title, fn):
        t0 = time.time()
        text = fn()
        print(f"\n## {title}\n", file=out)
        print(text, file=out)
        print(f"[wall {time.time() - t0:.0f}s]", file=out)
        out.flush()

    section("Table I (2 real failures, 19..304 cores)",
            lambda: table1.format_table1(table1.run_table1(steps=8)))

    section("Fig. 8 (failure identification / reconstruction, avg 3 seeds)",
            lambda: fig8.format_fig8(fig8.run_fig8(steps=8,
                                                   seeds=(0, 1, 2))))

    section("Fig. 9a (recovery overhead, OPL + Raijin, avg 3 seeds)",
            lambda: fig9.format_fig9(fig9.run_fig9(
                n=8, steps=8, diag_procs=8, seeds=(0, 1, 2))))

    section("Fig. 9b (paper-scale process-time overhead)",
            lambda: fig9.format_fig9(fig9.run_fig9_paper_scale(seeds=(0,))))

    section("Fig. 10 (accuracy, n=9, avg 10 seeds)",
            lambda: fig10.format_fig10(fig10.run_fig10(
                n=9, steps=128, lost_counts=(0, 1, 2, 3, 4, 5),
                seeds=tuple(range(10)))))

    section("Fig. 11 (paper-scale execution time / efficiency)",
            lambda: fig11.format_fig11(fig11.run_fig11_paper_scale()))

    if out is not sys.stdout:
        out.close()


if __name__ == "__main__":
    main()
