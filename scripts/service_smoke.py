#!/usr/bin/env python
"""End-to-end smoke test of ``python -m repro serve``.

Unlike the in-process service tests, this drives a *real* server
subprocess over real HTTP — the exact deployment CI and users run — and
asserts the service contract end to end:

1. cold experiment: 202 with a job id, then polls to a schema-valid 200;
2. warm experiment: immediate 200 straight from the shared store;
3. N concurrent identical cold requests coalesce onto one job
   (asserted via ``/v1/cache/stats``);
4. a restarted server over the same ``--cache`` answers warm at once;
5. ``python -m repro cache stats|verify`` agree with the store on disk.

Exit code 0 on success, 1 on any failed check.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import json
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.schema import validate_experiment_doc  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

DEDUP_CLIENTS = 6


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_server(port: int, cache_dir: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1",
         "--port", str(port), "--cache", cache_dir, "--quiet"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)


def stop_server(proc: subprocess.Popen) -> None:
    proc.terminate()
    try:
        proc.wait(timeout=10)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()


def check(label: str, ok: bool, detail: str = "") -> bool:
    print(f"{'PASS' if ok else 'FAIL'}  {label}"
          + (f"  ({detail})" if detail else ""))
    return ok


def run_smoke() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as tmp:
        cache_dir = str(Path(tmp) / "cache")
        port = free_port()
        proc = start_server(port, cache_dir)
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=60)
        try:
            client.wait_healthy(timeout=30)

            # 1. cold: 202 + job id, poll to a schema-valid 200
            status, ticket = client.experiment_once("table1")
            failures += not check(
                "cold request answers 202 with a job id",
                status == 202 and ticket.get("job", "").startswith("job-"),
                f"status={status}")
            doc = client.experiment("table1", timeout=600)
            validate_experiment_doc(doc)
            failures += not check(
                "poll reaches a schema-valid 200 document",
                doc["experiment"] == "table1" and len(doc["points"]) > 0)

            # 2. warm: immediate 200
            t0 = time.perf_counter()
            status, _ = client.experiment_once("table1")
            warm_ms = (time.perf_counter() - t0) * 1000.0
            failures += not check("warm request answers 200 immediately",
                                  status == 200, f"{warm_ms:.1f}ms")

            # 3. concurrent identical cold requests coalesce
            before = client.cache_stats()["queue"]
            barrier = threading.Barrier(DEDUP_CLIENTS)
            tickets = []
            lock = threading.Lock()

            def fire():
                barrier.wait()
                result = client.experiment_once("fig10")
                with lock:
                    tickets.append(result)

            threads = [threading.Thread(target=fire)
                       for _ in range(DEDUP_CLIENTS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            fired = client.cache_stats()["queue"]
            client.experiment("fig10", timeout=600)
            after = client.cache_stats()["queue"]
            executed = after["executed"] - before["executed"]
            deduped = fired["deduped"] - before["deduped"]
            jobs = {p["job"] for s, p in tickets if s == 202}
            failures += not check(
                f"{DEDUP_CLIENTS} concurrent requests -> 1 execution",
                executed == 1 and len(jobs) <= 1,
                f"executed={executed} deduped={deduped}")
        finally:
            stop_server(proc)

        # 4. a restarted server over the same store is warm at once
        port = free_port()
        proc = start_server(port, cache_dir)
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=60)
        try:
            client.wait_healthy(timeout=30)
            status, doc = client.experiment_once("table1")
            failures += not check(
                "restarted server serves the document warm",
                status == 200 and doc.get("experiment") == "table1",
                f"status={status}")
        finally:
            stop_server(proc)

        # 5. the cache CLI agrees with the store on disk
        env_cmd = [sys.executable, "-m", "repro", "cache"]
        stats = subprocess.run(env_cmd + ["stats", "--cache", cache_dir,
                                          "--json"],
                               capture_output=True, text=True)
        entries = (json.loads(stats.stdout)["entries"]
                   if stats.returncode == 0 else -1)
        failures += not check("cache stats sees the persisted entries",
                              stats.returncode == 0 and entries > 0,
                              f"entries={entries}")
        verify = subprocess.run(env_cmd + ["verify", "--cache", cache_dir],
                                capture_output=True, text=True)
        failures += not check("cache verify reports every blob loadable",
                              verify.returncode == 0,
                              verify.stdout.strip())

    if failures:
        print(f"{failures} check(s) failed")
        return 1
    print("service smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(run_smoke())
