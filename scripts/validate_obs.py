#!/usr/bin/env python
"""Validate machine-readable observability outputs against their schemas.

Usage: python scripts/validate_obs.py [--experiment FILE]... [--timeline FILE]...

CI runs an instrumented experiment (``repro experiment fig9 --quick
--json``) and a timeline export (``repro timeline``), then feeds both
through this script — a schema break fails the build rather than the
next person's plotting script.  Validators live in ``repro.obs.schema``;
this is a thin file-reading front end.

Exit codes: 0 all documents valid, 1 a document failed validation,
2 usage error (no files given / file unreadable).
"""

import argparse
import json
import sys

from repro.obs import (SchemaError, validate_chrome_trace,
                       validate_experiment_doc)


def _load(path: str):
    try:
        with open(path) as fh:
            return json.load(fh)
    except OSError as exc:
        print(f"validate_obs: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as exc:
        print(f"validate_obs: {path} is not JSON: {exc}", file=sys.stderr)
        sys.exit(1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="validate_obs",
        description="Schema-check experiment --json and timeline outputs.")
    parser.add_argument("--experiment", action="append", default=[],
                        metavar="FILE",
                        help="an experiment --json document to validate")
    parser.add_argument("--timeline", action="append", default=[],
                        metavar="FILE",
                        help="a Chrome trace_event timeline to validate")
    args = parser.parse_args(argv)
    if not args.experiment and not args.timeline:
        parser.error("nothing to validate (pass --experiment/--timeline)")

    failures = 0
    for path in args.experiment:
        doc = _load(path)
        try:
            validate_experiment_doc(doc)
        except SchemaError as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            failures += 1
        else:
            print(f"ok   {path}: experiment {doc['experiment']!r}, "
                  f"{len(doc['points'])} points")
    for path in args.timeline:
        doc = _load(path)
        try:
            validate_chrome_trace(doc)
        except SchemaError as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            failures += 1
        else:
            spans = sum(1 for e in doc["traceEvents"] if e.get("ph") == "X")
            print(f"ok   {path}: {len(doc['traceEvents'])} events, "
                  f"{spans} spans")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
