"""Setup script.

A classic ``setup.py`` (rather than pyproject.toml) is used deliberately:
this repository targets air-gapped HPC environments where ``pip`` cannot
fetch PEP 517 build dependencies, and the legacy ``pip install -e .`` path
needs nothing beyond setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Application Level Fault Recovery: Using "
        "Fault-Tolerant Open MPI in a PDE Solver' (IPDPSW 2014): a "
        "ULFM-style fault-tolerant MPI simulator plus a sparse-grid-"
        "combination 2D advection solver with three data-recovery "
        "techniques."
    ),
    long_description=open("README.md").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24"],
    extras_require={"test": ["pytest", "hypothesis", "pytest-benchmark"]},
)
