"""repro — reproduction of "Application Level Fault Recovery: Using
Fault-Tolerant Open MPI in a PDE Solver" (Ali, Southern, Strazdins,
Harding; IEEE IPDPSW 2014).

Layers (bottom-up):

* :mod:`repro.simkernel` — deterministic virtual-time coroutine engine;
* :mod:`repro.machine`   — cluster cost models (OPL, Raijin, ...);
* :mod:`repro.mpi`       — simulated MPI with the ULFM fault-tolerance
  extensions (revoke / shrink / agree / failure_ack, spawn, merge);
* :mod:`repro.pde`       — 2D advection, Lax–Wendroff, domain decomposition;
* :mod:`repro.sparsegrid`— combination technique, coefficients, resampling;
* :mod:`repro.ft`        — failure detection, communicator reconstruction
  (Figs. 3-7), failure injection, the three recovery techniques;
* :mod:`repro.core`      — the fault-tolerant application and run harness;
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro.core import AppConfig, run_app
    from repro.machine.presets import OPL

    cfg = AppConfig(n=7, level=4, technique_code="AC", steps=32,
                    simulated_lost_gids=(1,))
    metrics = run_app(cfg, OPL)
    print(metrics.error_l1, metrics.t_total)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
