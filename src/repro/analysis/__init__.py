"""Static and trace-based analysis for the fault-tolerance simulator.

Three analyzers (see ``docs/analysis.md``):

* :mod:`repro.analysis.linter` — AST + dataflow lint enforcing
  ULFM/simulation idioms (rules ULF001-ULF010), exposed as
  ``python -m repro lint``; the flow-sensitive rules are built on the
  CFG/fixpoint engine in :mod:`repro.analysis.dataflow`;
* :mod:`repro.analysis.protocol` — replay of a recorded trace against the
  paper's revoke/shrink/spawn/merge/split recovery state machine,
  exposed as ``python -m repro analyze-trace``;
* :mod:`repro.analysis.races` — vector-clock happens-before checking for
  ANY_SOURCE/ANY_TAG message races, plus the wait-for-graph explainer
  the engine uses to annotate :class:`~repro.simkernel.errors.DeadlockError`.

:mod:`repro.analysis.runtime` audits a finished universe for leaked MPI
resources; :mod:`repro.analysis.pytest_plugin` wires the leak and race
checks into the mpi-layer test suite.
"""

from .dataflow import CFG, build_cfg, solve
from .events import ParsedEvent, TruncatedTraceError, parse_events
from .linter import (LintViolation, RULES, SEVERITY, default_lint_paths,
                     format_report, lint_file, lint_paths)
from .protocol import (ProtocolViolation, RecoveryEpisode, check_protocol,
                       format_violations, recovery_episodes)
from .races import (MessageRace, build_wait_for_graph, find_message_races,
                    format_races, format_wait_for_graph)
from .runtime import LeakReport, check_runtime_leaks

__all__ = [
    "ParsedEvent", "TruncatedTraceError", "parse_events",
    "CFG", "build_cfg", "solve",
    "LintViolation", "RULES", "SEVERITY", "default_lint_paths",
    "format_report", "lint_file", "lint_paths",
    "ProtocolViolation", "RecoveryEpisode", "check_protocol",
    "format_violations", "recovery_episodes",
    "MessageRace", "build_wait_for_graph", "find_message_races",
    "format_races", "format_wait_for_graph",
    "LeakReport", "check_runtime_leaks",
]
