"""Static and trace-based analysis for the fault-tolerance simulator.

Three analyzers (see ``docs/analysis.md``):

* :mod:`repro.analysis.linter` — AST + dataflow lint enforcing
  ULFM/simulation and cache-safety idioms (rules ULF001-ULF015),
  exposed as ``python -m repro lint`` (``--format sarif`` emits SARIF
  2.1.0 via :mod:`repro.analysis.sarif`); the flow-sensitive rules are
  built on the CFG/fixpoint engine in :mod:`repro.analysis.dataflow`,
  entry points are declared with :mod:`repro.analysis.annotations`;
* :mod:`repro.analysis.protocol` — replay of a recorded trace against the
  paper's revoke/shrink/spawn/merge/split recovery state machine,
  exposed as ``python -m repro analyze-trace``;
* :mod:`repro.analysis.races` — vector-clock happens-before checking for
  ANY_SOURCE/ANY_TAG message races, plus the wait-for-graph explainer
  the engine uses to annotate :class:`~repro.simkernel.errors.DeadlockError`.

:mod:`repro.analysis.runtime` audits a finished universe for leaked MPI
resources; :mod:`repro.analysis.pytest_plugin` wires the leak and race
checks into the mpi-layer test suite.
"""

from .annotations import pure
from .dataflow import CFG, build_cfg, solve
from .events import ParsedEvent, TruncatedTraceError, parse_events
from .linter import (LintViolation, RULES, SEVERITY, default_lint_paths,
                     format_report, lint_file, lint_paths)
from .sarif import to_sarif, validate_sarif
from .protocol import (ProtocolViolation, RecoveryEpisode, check_protocol,
                       format_violations, recovery_episodes)
from .races import (MessageRace, build_wait_for_graph, find_message_races,
                    format_races, format_wait_for_graph)
from .runtime import LeakReport, check_runtime_leaks

__all__ = [
    "ParsedEvent", "TruncatedTraceError", "parse_events",
    "CFG", "build_cfg", "solve", "pure",
    "LintViolation", "RULES", "SEVERITY", "default_lint_paths",
    "format_report", "lint_file", "lint_paths",
    "to_sarif", "validate_sarif",
    "ProtocolViolation", "RecoveryEpisode", "check_protocol",
    "format_violations", "recovery_episodes",
    "MessageRace", "build_wait_for_graph", "find_message_races",
    "format_races", "format_wait_for_graph",
    "LeakReport", "check_runtime_leaks",
]
