"""Cache-safety annotations honoured by the static analyzer.

Two equivalent ways to declare that a function is a **cacheable entry
point** — a pure function of its arguments whose results the sweep
engine's content-addressed :class:`~repro.sweep.cache.RunCache` may
replay (ULF012, see docs/analysis.md "Cache-safety contracts"):

* the :func:`pure` decorator::

      from repro.analysis import pure

      @pure
      def run_point(config, machine):
          ...

* a ``# repro: cacheable`` comment on the ``def`` line — zero runtime
  footprint, usable where importing the analysis package would be a
  layering violation (the sweep and experiment layers use this form)::

      def _execute(point):  # repro: cacheable
          ...

Both mark the function for :mod:`repro.analysis.dataflow.purity`, which
then proves every module-local effect reachable from it pure — global
writes, file I/O, unseeded randomness, and wall-clock reads become
ULF012 errors.  A justified exception is expressed with the ordinary
``# noqa: ULF012`` suppression on the offending line, never by dropping
the annotation.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["pure"]

_F = TypeVar("_F", bound=Callable)


def pure(func: _F) -> _F:
    """Declare ``func`` a cacheable/pure entry point (no-op at runtime).

    The marker is consumed statically by the ULF012 purity pass; at
    runtime the function is returned unchanged (no wrapper frame, so
    pickling for pool transport still sees the original function).
    """
    func.__repro_pure__ = True
    return func
