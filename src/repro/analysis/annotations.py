"""Cache-safety annotations honoured by the static analyzer.

Two equivalent ways to declare that a function is a **cacheable entry
point** — a pure function of its arguments whose results the sweep
engine's content-addressed :class:`~repro.sweep.cache.RunCache` may
replay (ULF012, see docs/analysis.md "Cache-safety contracts"):

* the :func:`pure` decorator::

      from repro.analysis import pure

      @pure
      def run_point(config, machine):
          ...

* a ``# repro: cacheable`` comment on the ``def`` line — zero runtime
  footprint, usable where importing the analysis package would be a
  layering violation (the sweep and experiment layers use this form)::

      def _execute(point):  # repro: cacheable
          ...

Both mark the function for :mod:`repro.analysis.dataflow.purity`, which
then proves every module-local effect reachable from it pure — global
writes, file I/O, unseeded randomness, and wall-clock reads become
ULF012 errors.  A justified exception is expressed with the ordinary
``# noqa: ULF012`` suppression on the offending line, never by dropping
the annotation.

The third marker, :func:`protocol_model`, declares an ``async`` per-rank
entry point a **protocol model**: the skeleton extractor
(:mod:`repro.analysis.model.extract`) abstracts it into protocol IR and
the model checker verifies it deadlock-free over every failure placement
at the annotated rank count (ULF016–ULF020)::

    from repro.analysis import protocol_model

    @protocol_model(ranks=4, failures=1, child="cr_child")
    async def cr_parent(ctx, world):
        ...

The comment twin — for fixtures and code that must not import the
analysis package — is ``# repro: protocol ranks=4 failures=1
child=cr_child`` on the ``def`` line.
"""

from __future__ import annotations

from typing import Callable, Optional, TypeVar

__all__ = ["pure", "protocol_model"]

_F = TypeVar("_F", bound=Callable)


def pure(func: _F) -> _F:
    """Declare ``func`` a cacheable/pure entry point (no-op at runtime).

    The marker is consumed statically by the ULF012 purity pass; at
    runtime the function is returned unchanged (no wrapper frame, so
    pickling for pool transport still sees the original function).
    """
    func.__repro_pure__ = True
    return func


def protocol_model(func: Optional[_F] = None, *, ranks: int = 4,
                   failures: int = 1, child: Optional[str] = None):
    """Declare an async per-rank entry point a protocol model (no-op at
    runtime).

    The skeleton extractor picks the marked function up, abstracts it
    (and everything it calls, including the shipped
    ``ft.reconstruct`` pipeline) into protocol IR, and the model checker
    explores the cross-rank state space at ``ranks`` processes with up
    to ``failures`` injected failures.  ``child`` names the module-local
    entry point that re-spawned processes execute (the ``entry`` handed
    to ``spawn_multiple``).
    """

    def mark(f: _F) -> _F:
        f.__repro_protocol__ = {"ranks": ranks, "failures": failures,
                                "child": child}
        return f

    return mark(func) if func is not None else mark
