"""Dataflow engine behind the flow-sensitive ULF rules (ULF005-ULF015).

Layout:

* :mod:`~repro.analysis.dataflow.cfg` — CFG builder for Python functions
  (branches, loops, try/except/finally, with, match, async constructs);
* :mod:`~repro.analysis.dataflow.engine` — direction-agnostic worklist
  fixpoint solver over small lattice/transfer strategy objects;
* :mod:`~repro.analysis.dataflow.typestate` — communicator
  VALID/REVOKED/FREED typestate (ULF007/ULF008);
* :mod:`~repro.analysis.dataflow.collmatch` — rank-taint + backward
  collective matching (ULF006) and tag constancy (ULF009);
* :mod:`~repro.analysis.dataflow.ckptsync` — interprocedural checkpoint
  synchronisation (ULF005/ULF010);
* :mod:`~repro.analysis.dataflow.effects` — interprocedural effects/
  escape summary store shared by the cache-safety rules;
* :mod:`~repro.analysis.dataflow.frozenstate` — frozen-state typestate
  for shared cached objects (ULF011);
* :mod:`~repro.analysis.dataflow.purity` — purity of declared-cacheable
  call graphs (ULF012);
* :mod:`~repro.analysis.dataflow.escape` — owned-copy escape analysis
  (ULF013);
* :mod:`~repro.analysis.dataflow.nondet` — unordered-iteration
  nondeterminism (ULF014);
* :mod:`~repro.analysis.dataflow.pickling` — pool-transport pickling
  safety (ULF015);
* :mod:`~repro.analysis.dataflow.driver` — per-module orchestration,
  called by :func:`repro.analysis.linter.lint_file`.

See ``docs/analysis.md`` ("How the dataflow engine works") for the
design rationale and the rule catalog.
"""

from .cfg import CFG, Block, build_cfg, walk_shallow
from .driver import analyze_module, module_int_constants
from .effects import EffectsStore
from .engine import Analysis, solve

__all__ = ["CFG", "Block", "build_cfg", "walk_shallow",
           "Analysis", "solve", "EffectsStore",
           "analyze_module", "module_int_constants"]
