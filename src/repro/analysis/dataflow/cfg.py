"""Control-flow graphs for Python functions.

The flow-sensitive ULF rules (ULF005-ULF010) need to reason about *paths*
— "is every path to this checkpoint write synchronised?", "does this
collective run on every rank-dependent branch?" — which an AST walk
cannot answer.  :func:`build_cfg` lowers one ``def``/``async def`` body
into a graph of basic blocks connected by typed edges, covering the
control constructs the simulator's code actually uses: ``if``/``elif``,
``while``/``for`` (with ``else``), ``try``/``except``/``else``/
``finally``, ``break``/``continue``/``return``/``raise``, ``with``, and
``match``.  Async constructs need no special lowering: ``await`` does not
transfer control, so awaits stay inside their statement (analyses find
them with :func:`walk_shallow`), and async generators are plain functions
whose ``yield`` statements are ordinary block members.

Deliberate approximations (all conservative — they only *add* paths):

* one ``finally`` block instance serves every route through it (normal
  fall-through, ``return``, ``break``, ``continue``, exception
  propagation), so its successors are the union of those continuations;
* any block inside a ``try`` body may raise, modelled as one ``exc`` edge
  per handler from the block (not per statement);
* unreachable code after a ``return``/``raise``/``break`` still gets
  blocks and edges, but no incoming edge from live code — its dataflow
  in-state stays bottom, so it cannot pollute results.

``CFG.describe()`` renders a stable, line-oriented dump used by the
golden-graph tests in ``tests/analysis/test_dataflow.py``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["Block", "CFG", "build_cfg", "walk_shallow"]

#: scopes ``walk_shallow`` refuses to descend into: their bodies run at
#: another time (or not at all) and belong to a different CFG
_NEW_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
               ast.Lambda)


def walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` limited to the current scope.

    Yields ``node`` and its descendants, but does not enter nested
    function/class/lambda bodies (a nested ``def``'s statements execute
    when *it* is called, not where it is defined).  Transfer functions
    must use this instead of ``ast.walk`` or they attribute a closure's
    effects to its definition site.
    """
    yield node
    if isinstance(node, _NEW_SCOPES):
        return
    for child in ast.iter_child_nodes(node):
        yield from walk_shallow(child)


class Block:
    """One basic block: a straight-line run of statements.

    ``test`` is set on branch blocks (the ``if``/``while`` condition, the
    ``for`` iterable, the ``match`` subject) and ``branch`` names the
    owning compound statement.  Successor edges carry a kind:

    ========  ========================================================
    next      unconditional fall-through
    true      branch taken (loop entered / case matched)
    false     branch not taken (loop exhausted)
    loop      back edge to a loop head
    break     ``break`` to the code after the loop
    continue  ``continue`` to the loop head
    return    ``return`` to the function exit
    raise     explicit ``raise`` to handler or exit
    exc       implicit may-raise from inside a ``try`` body
    finally   routing into/out of a ``finally`` suite
    ========  ========================================================
    """

    def __init__(self, bid: int, label: str):
        self.bid = bid
        self.label = label
        self.stmts: List[ast.stmt] = []
        self.test: Optional[ast.expr] = None
        self.branch: Optional[ast.stmt] = None
        self.succs: List[Tuple[int, str]] = []

    def add_succ(self, target: int, kind: str) -> None:
        if (target, kind) not in self.succs:
            self.succs.append((target, kind))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Block B{self.bid} {self.label!r}>"


class CFG:
    """The graph for one function; blocks are keyed by id, ``entry`` and
    ``exit`` are synthetic empty blocks."""

    def __init__(self, func, name: str):
        self.func = func
        self.name = name
        self.blocks: Dict[int, Block] = {}
        self.entry: int = 0
        self.exit: int = 0

    def preds(self) -> Dict[int, List[Tuple[int, str]]]:
        """Reverse adjacency: block id -> [(pred id, edge kind)]."""
        out: Dict[int, List[Tuple[int, str]]] = {b: [] for b in self.blocks}
        for bid, block in self.blocks.items():
            for target, kind in block.succs:
                out[target].append((bid, kind))
        return out

    def describe(self) -> str:
        """Stable text dump for golden tests: one line per block, in id
        order, statements as ``ast.unparse`` one-liners."""
        lines = []
        for bid in sorted(self.blocks):
            b = self.blocks[bid]
            parts = [f"B{bid}[{b.label}]"]
            for stmt in b.stmts:
                src = ast.unparse(stmt).split("\n")[0]
                parts.append(f"  {src}")
            if b.test is not None:
                parts.append(f"  ?{ast.unparse(b.test)}")
            edges = " ".join(f"{kind}->B{t}" for t, kind in b.succs)
            parts.append(f"  => {edges}" if edges else "  => (none)")
            lines.append("\n".join(parts))
        return "\n".join(lines)


class _Frame:
    """Exception-routing frame for one ``try``: where an exception raised
    inside the body goes (handler entries, then ``finally``)."""

    def __init__(self, handler_entries: List[int],
                 finally_entry: Optional[int]):
        self.handler_entries = handler_entries
        self.finally_entry = finally_entry


class _Builder:
    def __init__(self, func, name: str):
        self.cfg = CFG(func, name)
        self._counter = 0
        self.frames: List[_Frame] = []          # innermost last
        #: (continue target, break target) per enclosing loop
        self.loops: List[Tuple[int, int]] = []
        #: finally entries to route non-local exits through, innermost last
        self.finallies: List[int] = []
        #: len(self.finallies) snapshot at each loop entry (break/continue
        #: must only traverse finallies *inside* their loop)
        self._loop_finally_marks: List[int] = []
        #: (finally entry, continuation target, kind) resolved at the end
        self._deferred_finally_exits: List[Tuple[int, int, str]] = []
        #: finally entry -> its own exit block, filled when built
        self._finally_exits: Dict[int, int] = {}

    # -- block plumbing --------------------------------------------------
    def new_block(self, label: str) -> Block:
        b = Block(self._counter, label)
        self.cfg.blocks[b.bid] = b
        self._counter += 1
        return b

    def _new_live_block(self, label: str) -> Block:
        """A block created inside the current try frames: may raise."""
        b = self.new_block(label)
        self._attach_exc_edges(b)
        return b

    def _attach_exc_edges(self, b: Block) -> None:
        frame = self.frames[-1] if self.frames else None
        if frame is None:
            return
        for h in frame.handler_entries:
            b.add_succ(h, "exc")
        if frame.finally_entry is not None and not frame.handler_entries:
            b.add_succ(frame.finally_entry, "exc")

    def _route_through_finallies(self, source: Block, target: int,
                                 kind: str, depth: int = 0) -> None:
        """Edge from ``source`` to ``target`` detouring through any
        ``finally`` suites between them (``depth`` = how many innermost
        finallies the jump escapes; 0 = all of them)."""
        pending = self.finallies[depth:]
        if not pending:
            source.add_succ(target, kind)
            return
        # innermost finally runs first, then each outer one, then the jump
        source.add_succ(pending[-1], "finally")
        for inner, outer in zip(reversed(pending), reversed(pending[:-1])):
            self._deferred_finally_exits.append((inner, outer, "finally"))
        self._deferred_finally_exits.append((pending[0], target, kind))

    # -- build -----------------------------------------------------------
    def build(self) -> CFG:
        entry = self.new_block("entry")
        exit_ = self.new_block("exit")
        self.cfg.entry, self.cfg.exit = entry.bid, exit_.bid

        body = self.new_block("body")
        entry.add_succ(body.bid, "next")
        last = self.visit_body(self.cfg.func.body, body)
        if last is not None:
            last.add_succ(exit_.bid, "next")
        for fentry, target, kind in self._deferred_finally_exits:
            fexit = self._finally_exits.get(fentry, fentry)
            self.cfg.blocks[fexit].add_succ(target, kind)
        return self.cfg

    def visit_body(self, stmts: List[ast.stmt],
                   cur: Optional[Block]) -> Optional[Block]:
        """Lower a statement list starting in ``cur``; returns the block
        normal control flow ends in, or None if it cannot fall through."""
        for stmt in stmts:
            if cur is None:  # dead code after return/raise/break
                cur = self.new_block("unreachable")
            cur = self.visit_stmt(stmt, cur)
        return cur

    def visit_stmt(self, stmt: ast.stmt, cur: Block) -> Optional[Block]:
        if isinstance(stmt, ast.If):
            return self._visit_if(stmt, cur)
        if isinstance(stmt, (ast.While,)):
            return self._visit_while(stmt, cur)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._visit_for(stmt, cur)
        if isinstance(stmt, ast.Try):
            return self._visit_try(stmt, cur)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._visit_with(stmt, cur)
        if isinstance(stmt, ast.Match):
            return self._visit_match(stmt, cur)
        if isinstance(stmt, ast.Return):
            cur.stmts.append(stmt)
            self._route_through_finallies(cur, self.cfg.exit, "return")
            return None
        if isinstance(stmt, ast.Raise):
            cur.stmts.append(stmt)
            frame = self.frames[-1] if self.frames else None
            if frame is not None and frame.handler_entries:
                for h in frame.handler_entries:
                    cur.add_succ(h, "raise")
            else:
                self._route_through_finallies(cur, self.cfg.exit, "raise")
            return None
        if isinstance(stmt, ast.Break):
            cur.stmts.append(stmt)
            _, after = self.loops[-1]
            self._route_through_finallies(cur, after, "break",
                                          depth=self._loop_finally_depth())
            return None
        if isinstance(stmt, ast.Continue):
            cur.stmts.append(stmt)
            head, _ = self.loops[-1]
            self._route_through_finallies(cur, head, "continue",
                                          depth=self._loop_finally_depth())
            return None
        cur.stmts.append(stmt)
        return cur

    def _loop_finally_depth(self) -> int:
        """How many entries of ``self.finallies`` were already present
        when the innermost loop started (those are *outside* the loop and
        must not intercept its break/continue)."""
        return self._loop_finally_marks[-1] if self._loop_finally_marks else 0

    # -- compound statements ---------------------------------------------
    def _visit_if(self, stmt: ast.If, cur: Block) -> Optional[Block]:
        cur.test = stmt.test
        cur.branch = stmt
        after = None

        tblk = self._new_live_block("if.then")
        cur.add_succ(tblk.bid, "true")
        tend = self.visit_body(stmt.body, tblk)

        if stmt.orelse:
            fblk = self._new_live_block("if.else")
            cur.add_succ(fblk.bid, "false")
            fend = self.visit_body(stmt.orelse, fblk)
        else:
            fend, fblk = None, None

        ends = [e for e in (tend, fend) if e is not None]
        if fblk is None or ends:
            after = self._new_live_block("if.after")
            if fblk is None:
                cur.add_succ(after.bid, "false")
            for e in ends:
                e.add_succ(after.bid, "next")
        return after

    def _visit_while(self, stmt: ast.While, cur: Block) -> Optional[Block]:
        head = self._new_live_block("while.head")
        cur.add_succ(head.bid, "next")
        head.test = stmt.test
        head.branch = stmt
        after = self._new_live_block("while.after")

        body = self._new_live_block("while.body")
        head.add_succ(body.bid, "true")
        self.loops.append((head.bid, after.bid))
        self._loop_finally_marks.append(len(self.finallies))
        bend = self.visit_body(stmt.body, body)
        self._loop_finally_marks.pop()
        self.loops.pop()
        if bend is not None:
            bend.add_succ(head.bid, "loop")

        if stmt.orelse:  # runs on normal exhaustion, skipped by break
            eblk = self._new_live_block("while.else")
            head.add_succ(eblk.bid, "false")
            eend = self.visit_body(stmt.orelse, eblk)
            if eend is not None:
                eend.add_succ(after.bid, "next")
        else:
            head.add_succ(after.bid, "false")
        return after

    def _visit_for(self, stmt, cur: Block) -> Optional[Block]:
        head = self._new_live_block("for.head")
        cur.add_succ(head.bid, "next")
        # lower the per-iteration binding to `target = iter` so transfer
        # functions see the assignment (the element, not the iterable, is
        # what's bound — close enough for taint/reset purposes)
        binding = ast.Assign(targets=[stmt.target], value=stmt.iter)
        ast.copy_location(binding, stmt)
        ast.fix_missing_locations(binding)
        head.stmts.append(binding)
        head.test = stmt.iter
        head.branch = stmt
        after = self._new_live_block("for.after")

        body = self._new_live_block("for.body")
        head.add_succ(body.bid, "true")
        self.loops.append((head.bid, after.bid))
        self._loop_finally_marks.append(len(self.finallies))
        bend = self.visit_body(stmt.body, body)
        self._loop_finally_marks.pop()
        self.loops.pop()
        if bend is not None:
            bend.add_succ(head.bid, "loop")

        if stmt.orelse:
            eblk = self._new_live_block("for.else")
            head.add_succ(eblk.bid, "false")
            eend = self.visit_body(stmt.orelse, eblk)
            if eend is not None:
                eend.add_succ(after.bid, "next")
        else:
            head.add_succ(after.bid, "false")
        return after

    def _visit_with(self, stmt, cur: Block) -> Optional[Block]:
        # lower each `with e as v:` item to `v = e` (or a bare
        # expression-statement when there is no target) so analyses see
        # the binding, then inline the body
        for item in stmt.items:
            if item.optional_vars is not None:
                lowered: ast.stmt = ast.Assign(
                    targets=[item.optional_vars], value=item.context_expr)
            else:
                lowered = ast.Expr(value=item.context_expr)
            ast.copy_location(lowered, stmt)
            ast.fix_missing_locations(lowered)
            cur.stmts.append(lowered)
        return self.visit_body(stmt.body, cur)

    def _visit_match(self, stmt: ast.Match, cur: Block) -> Optional[Block]:
        cur.test = stmt.subject
        cur.branch = stmt
        after = self._new_live_block("match.after")
        fell_through = True
        for case in stmt.cases:
            arm = self._new_live_block("match.case")
            cur.add_succ(arm.bid, "true")
            end = self.visit_body(case.body, arm)
            if end is not None:
                end.add_succ(after.bid, "next")
            # a bare wildcard case means no fall-through past the match
            if (isinstance(case.pattern, ast.MatchAs)
                    and case.pattern.pattern is None and case.guard is None):
                fell_through = False
        if fell_through:
            cur.add_succ(after.bid, "false")
        return after

    def _visit_try(self, stmt: ast.Try, cur: Block) -> Optional[Block]:
        after = self.new_block("try.after")
        self._attach_exc_edges(after)

        handler_entries: List[Block] = []
        for handler in stmt.handlers:
            h = self.new_block("except")
            self._attach_exc_edges(h)  # uncaught re-raise goes outward
            h.branch = handler  # the ExceptHandler node, for analyses
            handler_entries.append(h)

        fentry: Optional[Block] = None
        if stmt.finalbody:
            fentry = self.new_block("finally")
            self._attach_exc_edges(fentry)

        # --- body: every block inside may jump to the handlers ----------
        self.frames.append(_Frame([h.bid for h in handler_entries],
                                  fentry.bid if fentry else None))
        if fentry is not None:
            self.finallies.append(fentry.bid)
        body = self._new_live_block("try.body")
        cur.add_succ(body.bid, "next")
        bend = self.visit_body(stmt.body, body)
        self.frames.pop()

        # --- else: runs after a clean body, outside the handlers' reach -
        if stmt.orelse:
            eblk = self._new_live_block("try.else")
            if bend is not None:
                bend.add_succ(eblk.bid, "next")
            bend = self.visit_body(stmt.orelse, eblk)

        # --- handlers: exceptions here propagate outward, but still
        #     traverse this try's finally ------------------------------
        hends = []
        for h in handler_entries:
            hends.append(self.visit_body(stmt.handlers[
                handler_entries.index(h)].body, h))

        if fentry is not None:
            self.finallies.pop()

        # --- finally: built once; successors = union of continuations --
        if fentry is not None:
            fend = self.visit_body(stmt.finalbody, fentry)
            fexit = fend if fend is not None else fentry
            self._finally_exits[fentry.bid] = fexit.bid
            for end in [bend] + hends:
                if end is not None:
                    end.add_succ(fentry.bid, "finally")
            if fend is not None:
                fend.add_succ(after.bid, "next")
                # exception propagation continues outward after finally
                frame = self.frames[-1] if self.frames else None
                if frame is not None and frame.handler_entries:
                    for hh in frame.handler_entries:
                        fend.add_succ(hh, "exc")
        else:
            for end in [bend] + hends:
                if end is not None:
                    end.add_succ(after.bid, "next")
        return after


def build_cfg(func, name: Optional[str] = None) -> CFG:
    """Build the CFG of one ``ast.FunctionDef`` / ``ast.AsyncFunctionDef``."""
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise TypeError(f"build_cfg wants a function node, got {func!r}")
    return _Builder(func, name or func.name).build()
