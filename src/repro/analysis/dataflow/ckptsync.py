"""Checkpoint synchronisation along call chains (ULF005/ULF010).

The paper's CR protocol tests for failures "prior to initiating the
checkpoint write": a rank that starts writing generation *k* while a
peer is mid-failure produces a torn checkpoint set.  The invariant is
that every path from an entry point to a ``write_checkpoint`` passes a
synchronising operation (``barrier``/``agree``/``allreduce``/``bcast``/
…/``communicator_reconstruct``) first.

The seed linter checked this per-function and syntactically (any sync
awaited on an earlier *line*).  This module upgrades it twice over:

* **flow-sensitive**: a forward *must* analysis over the CFG — the
  "synchronised" bit must hold on *every* path reaching the write, not
  just on some earlier line (``if fast_path: await comm.barrier()``
  no longer counts);
* **interprocedural**: within a module, each function gets a summary —
  ``syncs`` (every path through it performs a sync before returning) and
  ``writes_unsynced`` (it may reach a checkpoint write without syncing
  first, so the obligation falls on its callers).  Summaries are solved
  to a fixed point over the call graph (``syncs`` first, then
  ``writes_unsynced`` against the fixed sync summaries, so each pass is
  monotone), then:

  - a direct ``write_checkpoint`` on an unsynchronised path is **ULF005**
    — unless the function has module-local callers that all synchronise
    first, in which case the obligation was theirs and is discharged;
  - a call to a ``writes_unsynced`` helper on an unsynchronised path is
    **ULF010**, flagged at the call site — the caller was supposed to
    synchronise before delegating.

Calls are resolved module-locally: plain names to module functions,
``self.m(...)`` to methods of the lexically enclosing class.  Anything
else (imports, other objects) is opaque and assumed neither to sync nor
to write.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from .cfg import CFG, build_cfg, walk_shallow
from .engine import Analysis, solve

__all__ = ["check_checkpoint_sync", "FuncInfo", "Resolver",
           "SYNC_CALLS", "collect_functions"]

#: awaited operations that synchronise the group (any failure surfaces
#: before the checkpoint write begins)
SYNC_CALLS = frozenset({
    "barrier", "agree", "allreduce", "allgather", "alltoall", "bcast",
    "gather", "reduce", "scan", "exscan", "communicator_reconstruct",
    "restore_checkpoint",
    # the recovery-strategy detection point: every implementation runs
    # agree + probe barrier (and repairs on error) before returning, so a
    # write guarded by it satisfies the "test prior to initiating the
    # checkpoint write" invariant
    "detect_and_repair",
})

_WRITE = "write_checkpoint"


class FuncInfo(NamedTuple):
    qualname: str
    node: ast.AST           # FunctionDef / AsyncFunctionDef
    class_name: Optional[str]


class Summary:
    def __init__(self):
        self.syncs = False            # every path syncs before returning
        self.writes_unsynced = False  # may write without a prior sync


def collect_functions(tree: ast.Module) -> List[FuncInfo]:
    """Every function in the module, with its enclosing class (if any).
    Nested functions are collected too — they get their own CFGs."""
    out: List[FuncInfo] = []

    def visit(node, class_name, prefix):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                out.append(FuncInfo(qual, child, class_name))
                visit(child, class_name, f"{qual}.<locals>.")
            elif isinstance(child, ast.ClassDef):
                visit(child, child.name, f"{prefix}{child.name}.")
            else:
                visit(child, class_name, prefix)

    visit(tree, None, "")
    return out


def _callee_key(call: ast.Call, info: FuncInfo) -> Optional[Tuple[str, str]]:
    """Resolution key for a call: ("func", name) for plain names,
    ("method", name) for ``self.name(...)``; None when unresolvable."""
    f = call.func
    if isinstance(f, ast.Name):
        return ("func", f.id)
    if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name) \
            and f.value.id == "self" and info.class_name is not None:
        return ("method", f.attr)
    return None


class Resolver:
    """Module-local call resolution: maps a call in function ``info`` to
    the qualname of the local function it targets, if any."""

    def __init__(self, funcs: List[FuncInfo]):
        self.by_name: Dict[str, str] = {}
        self.by_method: Dict[Tuple[str, str], str] = {}
        for fi in funcs:
            if fi.class_name is None and "." not in fi.qualname:
                self.by_name[fi.qualname] = fi.qualname
            elif fi.class_name is not None and \
                    fi.qualname == f"{fi.class_name}.{fi.node.name}":
                self.by_method[(fi.class_name, fi.node.name)] = fi.qualname

    def resolve(self, call: ast.Call, info: FuncInfo) -> Optional[str]:
        key = _callee_key(call, info)
        if key is None:
            return None
        kind, name = key
        if kind == "func":
            return self.by_name.get(name)
        return self.by_method.get((info.class_name, name))


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


class _SyncState:
    """Must-analysis lattice over one bit. ``TOP`` (bottom of the
    worklist, state of unreachable code) is "vacuously synced"."""
    TOP = "top"
    SYNCED = True
    UNSYNCED = False


class _MustSync(Analysis):
    direction = "forward"

    def __init__(self, info: FuncInfo, resolver: Resolver,
                 summaries: Dict[str, Summary]):
        self.info = info
        self.resolver = resolver
        self.summaries = summaries

    def boundary(self, cfg: CFG):
        return _SyncState.UNSYNCED

    def bottom(self):
        return _SyncState.TOP

    def join(self, a, b):
        if a == _SyncState.TOP:
            return b
        if b == _SyncState.TOP:
            return a
        return a and b  # must: synced only if synced on every path

    def transfer_stmt(self, stmt: ast.stmt, state,
                      emit: Optional[Callable] = None):
        for node in walk_shallow(stmt):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name is None:
                continue
            if name == _WRITE:
                if state == _SyncState.UNSYNCED and emit is not None:
                    emit("ULF005", node,
                         "checkpoint write without a synchronising "
                         "operation (barrier/agree/allreduce/"
                         "reconstruct) on every path reaching it: a "
                         "failure mid-write leaves a torn checkpoint "
                         "generation")
                continue
            if name in SYNC_CALLS:
                state = _SyncState.SYNCED
                continue
            target = self.resolver.resolve(node, self.info)
            if target is None:
                continue
            summary = self.summaries[target]
            if summary.writes_unsynced and state == _SyncState.UNSYNCED \
                    and emit is not None:
                emit("ULF010", node,
                     f"call chain reaches a checkpoint write: "
                     f"'{target}' may write a checkpoint without "
                     "synchronising, and no synchronising operation "
                     "precedes this call on every path; synchronise "
                     "(barrier/agree/allreduce) before delegating")
            if summary.syncs:
                state = _SyncState.SYNCED
        return state


def _has_writes(info: FuncInfo, resolver: Resolver,
                summaries: Dict[str, Summary], cfg: CFG) -> bool:
    """Would the must-sync pass emit anything for this function?"""
    hits: List[str] = []
    analysis = _MustSync(info, resolver, summaries)
    in_states, _ = solve(cfg, analysis)
    for bid, block in cfg.blocks.items():
        analysis.transfer_block(block, in_states[bid],
                                lambda rule, node, msg: hits.append(rule))
    return bool(hits)


def check_checkpoint_sync(tree: ast.Module, flag: Callable,
                          funcs: Optional[List[FuncInfo]] = None,
                          cfgs: Optional[Dict[str, CFG]] = None) -> None:
    """Run the interprocedural checkpoint analysis over a whole module.
    ``flag(rule, node, message)`` receives each violation."""
    funcs = funcs if funcs is not None else collect_functions(tree)
    # fast path: modules that never call write_checkpoint have nothing to
    # prove — skip the summary fixpoints entirely
    if not any(isinstance(n, ast.Call) and _call_name(n) == _WRITE
               for n in ast.walk(tree)):
        return
    cfgs = cfgs or {}
    for fi in funcs:
        if fi.qualname not in cfgs:
            cfgs[fi.qualname] = build_cfg(fi.node, fi.qualname)
    resolver = Resolver(funcs)
    summaries = {fi.qualname: Summary() for fi in funcs}

    # --- phase 1: `syncs` summaries (monotone: False -> True) ----------
    changed = True
    rounds = 0
    while changed and rounds < len(funcs) + 2:
        changed = False
        rounds += 1
        for fi in funcs:
            analysis = _MustSync(fi, resolver, summaries)
            cfg = cfgs[fi.qualname]
            in_states, _ = solve(cfg, analysis)
            syncs = in_states[cfg.exit] == _SyncState.SYNCED
            if syncs and not summaries[fi.qualname].syncs:
                summaries[fi.qualname].syncs = True
                changed = True

    # --- phase 2: `writes_unsynced` (monotone: False -> True) ----------
    changed = True
    rounds = 0
    while changed and rounds < len(funcs) + 2:
        changed = False
        rounds += 1
        for fi in funcs:
            if summaries[fi.qualname].writes_unsynced:
                continue
            if _has_writes(fi, resolver, summaries, cfgs[fi.qualname]):
                summaries[fi.qualname].writes_unsynced = True
                changed = True

    # --- which writers have module-local callers? ----------------------
    called: Dict[str, List[str]] = {fi.qualname: [] for fi in funcs}
    for fi in funcs:
        # walk_shallow per body statement: calls made by *this* function,
        # not by closures nested inside it (those are their own FuncInfo)
        for stmt in fi.node.body:
            for node in walk_shallow(stmt):
                if isinstance(node, ast.Call):
                    target = resolver.resolve(node, fi)
                    if target is not None:
                        called[target].append(fi.qualname)

    # --- emission -------------------------------------------------------
    for fi in funcs:
        summary = summaries[fi.qualname]
        if summary.writes_unsynced and called[fi.qualname]:
            # the obligation moved to the callers: each unsynchronised
            # call site raises ULF010 in *their* pass; flagging inside
            # this helper too would double-report
            continue
        analysis = _MustSync(fi, resolver, summaries)
        cfg = cfgs[fi.qualname]
        in_states, _ = solve(cfg, analysis)
        seen = set()

        def emit(rule, node, message):
            key = (rule, getattr(node, "lineno", 0),
                   getattr(node, "col_offset", 0))
            if key not in seen:
                seen.add(key)
                flag(rule, node, message)

        for bid, block in cfg.blocks.items():
            analysis.transfer_block(block, in_states[bid], emit)
