"""Collective matching under rank-dependent control flow (ULF006/ULF009).

MPI collectives only complete when *every* member of the communicator
calls them; the classic divergence bug is a collective reachable on some
ranks' control flow but not others'::

    if comm.rank == 0:
        await comm.barrier()      # rank 0 blocks here forever

Three cooperating dataflow passes find this shape:

1. **rank taint** (forward, may): which local names carry rank-dependent
   values.  Seeded by any read of a ``.rank`` attribute and by parameters
   conventionally named like ranks; propagated through assignments.
2. **collectives-to-exit** (backward, may): for every program point, the
   set of ``(communicator, collective)`` pairs that may still execute
   before the function returns.
3. at each branch whose test is tainted, the two successors' sets are
   compared.  Collectives both arms eventually reach cancel out (they
   are matched); anything left over runs on one rank-subset only —
   **ULF006**, flagged at the collective call site.  This formulation
   also catches the early-return variant (``if rank != 0: return``
   followed by a collective), which a syntactic arm comparison misses.

**ULF009** reuses the taint pass plus an integer constant-propagation
pass: inside a rank-dependent ``if`` whose arms exchange point-to-point
messages on the same communicator (one side sends, the sibling receives),
tags that both resolve to constants and differ can never match — each
side blocks forever waiting for the other's tag.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, FrozenSet, Optional, Tuple, Union

from .cfg import Block, CFG, build_cfg, walk_shallow
from .engine import Analysis, solve

__all__ = ["check_collectives", "COLLECTIVES"]

#: collective operations every member must call (divergence -> deadlock).
#: agree/shrink are deliberately excluded: they are the *recovery* path
#: and legitimately run on survivor subsets mid-repair.
COLLECTIVES = frozenset({
    "barrier", "bcast", "gather", "allgather", "scatter", "reduce",
    "allreduce", "scan", "exscan", "gatherv", "scatterv",
    "reduce_scatter_block", "alltoall", "split", "dup", "spawn_multiple",
    "merge",
})

#: parameters with these names are assumed to hold this process's rank
RANK_PARAMS = frozenset({"rank", "my_rank", "mpi_rank", "grid_rank"})

_SENDS = frozenset({"send", "isend"})
_RECVS = frozenset({"recv", "irecv"})

_Taint = FrozenSet[str]


# ---------------------------------------------------------------------------
# pass 1: rank taint
# ---------------------------------------------------------------------------
def _expr_tainted(expr: ast.expr, tainted: _Taint) -> bool:
    for node in walk_shallow(expr):
        if isinstance(node, ast.Attribute) and node.attr == "rank":
            return True
        if isinstance(node, ast.Name) and node.id in tainted:
            return True
    return False


class _RankTaint(Analysis):
    direction = "forward"

    def boundary(self, cfg: CFG) -> _Taint:
        args = cfg.func.args
        params = [a.arg for a in (args.posonlyargs + args.args
                                  + args.kwonlyargs)]
        return frozenset(p for p in params if p in RANK_PARAMS)

    def bottom(self) -> _Taint:
        return frozenset()

    def join(self, a: _Taint, b: _Taint) -> _Taint:
        return a | b

    def transfer_stmt(self, stmt: ast.stmt, state: _Taint,
                      emit: Optional[Callable] = None) -> _Taint:
        if isinstance(stmt, ast.Assign):
            value_tainted = _expr_tainted(stmt.value, state)
            for t in stmt.targets:
                state = self._bind(t, value_tainted, state)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            state = self._bind(stmt.target,
                               _expr_tainted(stmt.value, state), state)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                already = stmt.target.id in state
                now = already or _expr_tainted(stmt.value, state)
                state = self._bind(stmt.target, now, state)
        for node in walk_shallow(stmt):
            if isinstance(node, ast.NamedExpr):
                state = self._bind(node.target,
                                   _expr_tainted(node.value, state), state)
        return state

    @staticmethod
    def _bind(target: ast.expr, tainted: bool, state: _Taint) -> _Taint:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                state = _RankTaint._bind(elt, tainted, state)
            return state
        if not isinstance(target, ast.Name):
            return state
        if tainted:
            return state | {target.id}
        return state - {target.id}


# ---------------------------------------------------------------------------
# pass 2: collectives that may still run before exit (backward)
# ---------------------------------------------------------------------------
_Coll = FrozenSet[Tuple[str, str]]


def _collective_calls(stmt: ast.stmt):
    """(call node, comm repr, op) for each collective awaited in ``stmt``."""
    for node in walk_shallow(stmt):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in COLLECTIVES:
            yield node, ast.unparse(node.func.value), node.func.attr


class _CollectivesToExit(Analysis):
    direction = "backward"

    def boundary(self, cfg: CFG) -> _Coll:
        return frozenset()

    def bottom(self) -> _Coll:
        return frozenset()

    def join(self, a: _Coll, b: _Coll) -> _Coll:
        return a | b

    def transfer_stmt(self, stmt: ast.stmt, state: _Coll,
                      emit: Optional[Callable] = None) -> _Coll:
        gen = {(comm, op) for _, comm, op in _collective_calls(stmt)}
        return state | gen if gen else state


# ---------------------------------------------------------------------------
# pass 3: integer constant propagation (for tags)
# ---------------------------------------------------------------------------
_NAC = object()          # "not a constant"
_Consts = Tuple[Tuple[str, Union[int, object]], ...]  # sorted items tuple


def _const_eval(expr: ast.expr, env: Dict[str, object]):
    """Fold ``expr`` to an int if possible, else ``_NAC``."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, int) \
            and not isinstance(expr.value, bool):
        return expr.value
    if isinstance(expr, ast.Name):
        return env.get(expr.id, _NAC)
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
        v = _const_eval(expr.operand, env)
        return -v if v is not _NAC else _NAC
    if isinstance(expr, ast.BinOp):
        left = _const_eval(expr.left, env)
        right = _const_eval(expr.right, env)
        if left is _NAC or right is _NAC:
            return _NAC
        try:
            if isinstance(expr.op, ast.Add):
                return left + right
            if isinstance(expr.op, ast.Sub):
                return left - right
            if isinstance(expr.op, ast.Mult):
                return left * right
            if isinstance(expr.op, ast.Mod):
                return left % right
            if isinstance(expr.op, ast.FloorDiv):
                return left // right
        except (ZeroDivisionError, ValueError):
            return _NAC
    return _NAC


class _ConstProp(Analysis):
    direction = "forward"

    def __init__(self, module_consts: Dict[str, int]):
        self.module_consts = dict(module_consts)

    def boundary(self, cfg: CFG) -> _Consts:
        return tuple(sorted(self.module_consts.items()))

    def bottom(self) -> _Consts:
        return ()

    def join(self, a: _Consts, b: _Consts) -> _Consts:
        if not a:
            return b
        if not b:
            return a
        da, db = dict(a), dict(b)
        out = {}
        for k in set(da) | set(db):
            va, vb = da.get(k, _NAC), db.get(k, _NAC)
            out[k] = va if va == vb else _NAC
        return tuple(sorted(out.items(), key=lambda kv: kv[0]))

    def transfer_stmt(self, stmt: ast.stmt, state: _Consts,
                      emit: Optional[Callable] = None) -> _Consts:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            return state
        env = dict(state)
        if isinstance(stmt, ast.Assign):
            value = _const_eval(stmt.value, env)
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return state
            value = _const_eval(stmt.value, env)
            targets = [stmt.target]
        else:  # AugAssign: fold only the common `x += const` shapes
            value = _NAC
            if isinstance(stmt.target, ast.Name):
                cur = env.get(stmt.target.id, _NAC)
                inc = _const_eval(stmt.value, env)
                if cur is not _NAC and inc is not _NAC and \
                        isinstance(stmt.op, (ast.Add, ast.Sub)):
                    value = cur + inc if isinstance(stmt.op, ast.Add) \
                        else cur - inc
            targets = [stmt.target]
        for t in targets:
            if isinstance(t, ast.Name):
                env[t.id] = value
            elif isinstance(t, (ast.Tuple, ast.List)):
                for elt in t.elts:
                    if isinstance(elt, ast.Name):
                        env[elt.id] = _NAC
        return tuple(sorted(env.items(), key=lambda kv: kv[0]))


_BACK_EDGE_KINDS = ("loop", "continue")


def _acyclic_view(cfg: CFG) -> CFG:
    """The CFG with loop back edges removed.

    The rank taint source (``.rank``) is constant for the lifetime of a
    process, so a rank-tainted branch decides the same way on every loop
    iteration.  Running the collectives-to-exit pass on the cyclic graph
    would let a guarded collective "reach" the other arm via the back
    edge (next iteration) and cancel its own divergence; on the acyclic
    view each arm only sees what *its* ranks actually execute.
    """
    view = CFG(cfg.func, cfg.name)
    view.entry, view.exit = cfg.entry, cfg.exit
    for bid, block in cfg.blocks.items():
        nb = Block(bid, block.label)
        nb.stmts = block.stmts
        nb.test = block.test
        nb.branch = block.branch
        nb.succs = [(t, k) for t, k in block.succs
                    if k not in _BACK_EDGE_KINDS]
        view.blocks[bid] = nb
    return view


# ---------------------------------------------------------------------------
# detection
# ---------------------------------------------------------------------------
def _p2p_calls(stmts, kinds):
    """(call node, comm repr, resolved-or-raw tag expr) for each p2p call
    of the given kinds syntactically inside ``stmts``."""
    out = []
    for stmt in stmts:
        for node in walk_shallow(stmt):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in kinds:
                out.append((node, ast.unparse(node.func.value)))
    return out


def _tag_expr(call: ast.Call) -> Optional[ast.expr]:
    """The tag argument of a send/recv call, or None when defaulted."""
    for kw in call.keywords:
        if kw.arg == "tag":
            return kw.value
    pos = 2 if call.func.attr in _SENDS else 1  # send(obj, dest, tag) / recv(source, tag)
    if len(call.args) > pos:
        return call.args[pos]
    return None


def check_collectives(func: ast.AST, flag: Callable,
                      module_consts: Optional[Dict[str, int]] = None,
                      cfg: Optional[CFG] = None) -> None:
    """ULF006 + ULF009 over one function. ``flag(rule, node, message)``."""
    cfg = cfg or build_cfg(func)
    taint_in, _ = solve(cfg, _RankTaint())
    # backward analysis: out_states[b] is the state at b's *start* in
    # program order, i.e. the collectives still ahead when b begins
    _, coll_ahead = solve(_acyclic_view(cfg), _CollectivesToExit())
    consts_in, _ = solve(cfg, _ConstProp(module_consts or {}))

    flagged = set()

    def emit(rule, node, message):
        key = (rule, getattr(node, "lineno", 0),
               getattr(node, "col_offset", 0))
        if key not in flagged:
            flagged.add(key)
            flag(rule, node, message)

    for bid, block in cfg.blocks.items():
        if block.test is None or block.branch is None:
            continue
        if isinstance(block.branch, ast.ExceptHandler):
            continue
        # taint state *at the test* = state after the block's own stmts
        taint = _RankTaint().transfer_block(block, taint_in[bid])
        if not _expr_tainted(block.test, taint):
            continue
        succ = {kind: t for t, kind in block.succs
                if kind in ("true", "false")}
        if "true" not in succ or "false" not in succ:
            continue
        set_true = coll_ahead[succ["true"]]
        set_false = coll_ahead[succ["false"]]
        divergent = set_true ^ set_false
        if divergent:
            _flag_divergent(block, divergent, set_true, emit)
        if isinstance(block.branch, ast.If) and block.branch.orelse:
            consts = dict(_ConstProp({}).transfer_block(
                block, consts_in[bid]))
            _check_tag_mismatch(block.branch, consts, emit)


def _flag_divergent(block, divergent, set_true, emit) -> None:
    branch = block.branch
    body_arms = {True: getattr(branch, "body", []),
                 False: getattr(branch, "orelse", [])}
    test_src = ast.unparse(block.test)
    for comm, op in sorted(divergent):
        on_true = (comm, op) in set_true
        arm = body_arms[on_true] if isinstance(branch, ast.If) \
            else branch.body
        # locate the call site(s) inside the divergent arm
        sites = []
        for stmt in arm:
            for node, c, o in _collective_calls(stmt):
                if c == comm and o == op:
                    sites.append(node)
        where = "only when" if on_true else "only when not"
        message = (f"collective '{comm}.{op}()' runs {where} "
                   f"'{test_src}' holds: ranks taking the other path "
                   "never call it and every caller deadlocks; hoist the "
                   "collective out of the rank-dependent branch or make "
                   "all ranks call it")
        if sites:
            for node in sites:
                emit("ULF006", node, message)
        else:
            emit("ULF006", branch, message)


def _check_tag_mismatch(branch: ast.If, consts, emit) -> None:
    arms = (branch.body, branch.orelse)
    for sends_arm, recvs_arm in (arms, arms[::-1]):
        sends = _p2p_calls(sends_arm, _SENDS)
        recvs = _p2p_calls(recvs_arm, _RECVS)
        for r_call, r_comm in recvs:
            r_tag_expr = _tag_expr(r_call)
            if r_tag_expr is None:
                continue  # defaulted recv tag is ANY_TAG: matches all
            r_tag = _const_eval(r_tag_expr, consts)
            if r_tag is _NAC:
                continue
            peer = [s for s, s_comm in sends if s_comm == r_comm]
            if not peer:
                continue
            s_tags = []
            for s_call in peer:
                s_tag_expr = _tag_expr(s_call)
                s_tag = 0 if s_tag_expr is None \
                    else _const_eval(s_tag_expr, consts)
                s_tags.append(s_tag)
            if any(t is _NAC for t in s_tags):
                continue
            if r_tag not in s_tags:
                sent = ", ".join(str(t) for t in sorted(set(s_tags)))
                emit("ULF009", r_call,
                     f"recv on '{r_comm}' waits for tag {r_tag} but the "
                     f"sibling rank-branch only sends tag(s) {sent} on "
                     "that communicator: the tags can never match and "
                     "both sides block")
