"""Module-level orchestration of the dataflow rules.

:func:`analyze_module` is the linter's entry into this package: given a
parsed module it builds one CFG per function (shared across analyses),
harvests module-level integer constants (so ``tag=MERGE_TAG`` resolves),
and runs

* the communicator typestate pass (ULF007/ULF008) per function,
* the collective-matching + tag-constancy pass (ULF006/ULF009) per
  function, and
* the interprocedural checkpoint-synchronisation pass (ULF005/ULF010)
  over the whole module, and
* the protocol-model pass (ULF016-ULF020) for functions annotated
  ``@protocol_model`` / ``# repro: protocol`` — extraction plus
  explicit-state model checking (:mod:`repro.analysis.model`),

returning plain :class:`~repro.analysis.linter.LintViolation` records so
the existing ``noqa``/report/CLI machinery applies unchanged.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from .cfg import CFG, build_cfg
from .ckptsync import check_checkpoint_sync, collect_functions
from .collmatch import check_collectives
from .effects import EffectsStore
from .escape import check_escape
from .frozenstate import check_frozen_state
from .nondet import check_nondeterminism
from .pickling import check_pool_pickling
from .purity import check_purity
from .typestate import check_typestate

__all__ = ["analyze_module", "module_int_constants"]


def module_int_constants(tree: ast.Module) -> Dict[str, int]:
    """Top-level ``NAME = <int literal>`` bindings (e.g. tag constants).
    Later rebindings win; non-literal rebindings invalidate the name."""
    consts: Dict[str, int] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name):
            name = stmt.targets[0].id
            if isinstance(stmt.value, ast.Constant) and \
                    isinstance(stmt.value.value, int) and \
                    not isinstance(stmt.value.value, bool):
                consts[name] = stmt.value.value
            else:
                consts.pop(name, None)
    return consts


def analyze_module(tree: ast.Module, path: str,
                   source: Optional[str] = None) -> List:
    """All dataflow-rule violations for one parsed module.  ``source``
    (when available) lets the purity pass see ``# repro: cacheable``
    annotation comments."""
    from ..linter import LintViolation, RULES

    violations: List[LintViolation] = []

    def flag(rule: str, node: ast.AST, message: str) -> None:
        violations.append(LintViolation(
            rule, path, getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1, message))

    assert all(r in RULES for r in
               ("ULF005", "ULF006", "ULF007", "ULF008", "ULF009", "ULF010",
                "ULF011", "ULF012", "ULF013", "ULF014", "ULF015",
                "ULF016", "ULF017", "ULF018", "ULF019", "ULF020"))

    funcs = collect_functions(tree)
    cfgs: Dict[str, CFG] = {}
    consts = module_int_constants(tree)
    for fi in funcs:
        cfg = build_cfg(fi.node, fi.qualname)
        cfgs[fi.qualname] = cfg
        check_typestate(fi.node, flag, cfg=cfg)
        check_collectives(fi.node, flag, module_consts=consts, cfg=cfg)
        check_frozen_state(fi.node, flag, cfg=cfg)
        check_nondeterminism(fi.node, flag, cfg=cfg)
        check_pool_pickling(fi, flag)
    check_checkpoint_sync(tree, flag, funcs=funcs, cfgs=cfgs)
    store = EffectsStore.build(tree, funcs)
    check_purity(tree, flag, store=store, source=source)
    check_escape(tree, flag, store=store, funcs=funcs, cfgs=cfgs)
    if source is not None:
        # third layer: protocol-model checking of annotated entry points
        # (lazy import: the model package reuses the linter's records)
        from ..model.rules import check_protocol_models
        violations.extend(check_protocol_models(tree, path, source))
    return violations
