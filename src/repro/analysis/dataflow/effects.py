"""Interprocedural effects/escape summaries (the ULF012/ULF013 substrate).

The sweep engine's content-addressed :class:`~repro.sweep.cache.RunCache`
is only sound if a cacheable task is a *pure function* of its arguments,
and the hot-path object caches (``cached_scheme`` / ``layout_for`` /
``combination_plan`` / ``_axis_resample_weights``) are only sound if the
shared instances they hand out never escape into mutable long-lived
state.  Both cache-safety rules need the same ingredient: per-function
*effect summaries* solved over the module-local call graph, exactly like
ULF010's ``syncs``/``writes_unsynced`` pass but over a richer lattice.

:class:`EffectsStore` computes, in two phases:

1. **direct effects** per function (one shallow AST walk each):

   ==============  =====================================================
   global_write    ``global``/``nonlocal`` declaration plus a write to
                   one of the declared names
   io              file/disk traffic: ``open``, ``Path.write_text``-
                   style methods, ``os``/``shutil``/``subprocess``
                   calls, environment reads
   rng             the process-global ``random`` module or an unseeded
                   ``random.Random()``
   clock           wall-clock reads (``time.time``, ``datetime.now``,
                   ``perf_counter``, ...)
   shared_return   the function returns a shared cached object — a
                   frozen-provider result, an ``lru_cache``-decorated
                   function of this module, or a pass-through of either
   ==============  =====================================================

2. **transitive closure** over the module-local call graph (plain names
   and ``self.method(...)``, via :class:`~.ckptsync.Resolver`): a caller
   inherits every impurity kind of its local callees, witnessed at the
   call site with the call chain recorded; ``shared_return`` propagates
   only through ``return helper(...)`` / ``return name`` shapes.  Each
   bit only ever flips False -> True, so the fixpoint terminates.

Calls that resolve to nothing module-local (imports, methods of other
objects) are opaque and assumed pure — the same deliberately optimistic
stance as ULF010, traded for zero false positives on foreign APIs.

``EffectsStore.describe()`` renders a stable one-line-per-function dump
pinned by the golden tests in ``tests/analysis/test_effects.py``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, NamedTuple, Optional, Tuple

from .cfg import walk_shallow
from .ckptsync import FuncInfo, Resolver, collect_functions

__all__ = ["Effect", "EffectSummary", "EffectsStore", "EFFECT_KINDS",
           "FROZEN_PROVIDERS"]

#: impurity kinds, in reporting/describe order
EFFECT_KINDS = ("global_write", "io", "rng", "clock", "shared_return")

#: callables whose results are shared cached instances: mutating or
#: leaking one corrupts every later consumer of the same cache entry
#: (see docs/performance.md, "Cache-safety contracts" in docs/analysis.md)
FROZEN_PROVIDERS = frozenset({
    "cached_scheme", "layout_for", "combination_plan", "CombinationPlan",
    "_axis_resample_weights", "_resample_op", "_plan",
})

#: plain-name calls that touch the filesystem
_IO_NAME_CALLS = frozenset({"open"})
#: attribute calls that touch the filesystem regardless of receiver
_IO_METHODS = frozenset({
    "write_text", "write_bytes", "read_text", "read_bytes", "unlink",
    "mkdir", "rmdir", "rename", "replace", "touch", "savez",
    "savez_compressed", "symlink_to", "hardlink_to",
})
#: ``os.<fn>`` calls that are I/O (or read ambient process state)
_OS_IO = frozenset({
    "remove", "unlink", "makedirs", "mkdir", "rmdir", "rename", "replace",
    "system", "popen", "getenv", "putenv", "listdir", "scandir", "stat",
})
#: whole modules that are I/O by construction
_IO_MODULES = frozenset({"shutil", "subprocess"})

#: decorators that memoise: the function's results are shared instances
_MEMO_DECORATORS = frozenset({"lru_cache", "cache"})


class Effect(NamedTuple):
    """One impurity witness inside a function."""

    kind: str
    node: ast.AST            #: witness (direct site or inherited call site)
    detail: str              #: human description of the offending operation
    via: Tuple[str, ...]     #: local call chain, () for a direct effect

    @property
    def direct(self) -> bool:
        return not self.via


class EffectSummary:
    """Every known effect of one function (direct sites + inherited)."""

    def __init__(self, qualname: str):
        self.qualname = qualname
        self.effects: List[Effect] = []
        self._kinds: Dict[str, Effect] = {}   # first witness per kind

    def add(self, effect: Effect) -> bool:
        """Record ``effect``; returns True when its kind is new."""
        self.effects.append(effect)
        if effect.kind not in self._kinds:
            self._kinds[effect.kind] = effect
            return True
        return False

    def has(self, kind: str) -> bool:
        return kind in self._kinds

    def witness(self, kind: str) -> Optional[Effect]:
        return self._kinds.get(kind)

    def direct_effects(self, *kinds: str) -> List[Effect]:
        return [e for e in self.effects if e.direct
                and (not kinds or e.kind in kinds)]

    @property
    def pure(self) -> bool:
        """No impurity bit set (``shared_return`` is not an impurity)."""
        return not any(self.has(k) for k in EFFECT_KINDS
                       if k != "shared_return")

    def describe(self) -> str:
        """Stable one-liner: ``name: kind@line[via a->b], ...`` or
        ``name: pure``."""
        parts = []
        for kind in EFFECT_KINDS:
            e = self._kinds.get(kind)
            if e is None:
                continue
            where = f"{kind}@{getattr(e.node, 'lineno', 0)}"
            if e.via:
                where += f"[via {'->'.join(e.via)}]"
            parts.append(where)
        return f"{self.qualname}: {', '.join(parts) if parts else 'pure'}"


class _ImportMap:
    """Module/from-import alias tracking, enough to resolve ``mod.fn``
    and bare from-imported calls (mirrors the ULF002 resolution)."""

    def __init__(self, tree: ast.Module):
        self.module_aliases: Dict[str, str] = {}
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name] = \
                        alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = \
                        (node.module, alias.name)

    def resolve(self, call: ast.Call) -> Optional[Tuple[str, str]]:
        f = call.func
        if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name):
            mod = self.module_aliases.get(f.value.id)
            if mod is not None:
                return mod, f.attr
            origin = self.from_imports.get(f.value.id)
            if origin is not None:
                return f"{origin[0]}.{origin[1]}", f.attr
        elif isinstance(f, ast.Attribute) and \
                isinstance(f.value, ast.Attribute) and \
                isinstance(f.value.value, ast.Name):
            mod = self.module_aliases.get(f.value.value.id)
            if mod is not None:
                return f"{mod}.{f.value.attr}", f.attr
        elif isinstance(f, ast.Name):
            origin = self.from_imports.get(f.id)
            if origin is not None:
                return origin
        return None


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _decorator_names(func: ast.AST):
    for dec in getattr(func, "decorator_list", ()):
        node = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(node, ast.Attribute):
            yield node.attr
        elif isinstance(node, ast.Name):
            yield node.id


def _assigned_names(stmt: ast.stmt):
    """Plain names written by ``stmt`` (assign/augassign/for targets)."""
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign, ast.For,
                           ast.AsyncFor)):
        targets = [stmt.target]
    for t in targets:
        if isinstance(t, ast.Name):
            yield t.id
        elif isinstance(t, (ast.Tuple, ast.List)):
            for elt in t.elts:
                if isinstance(elt, ast.Name):
                    yield elt.id


def _shared_value(expr: ast.expr, shared_locals: frozenset) -> bool:
    """Is ``expr`` directly a shared-instance producer?  (A frozen
    provider call, or a call to a module-local function known to return
    shared instances.)"""
    if isinstance(expr, ast.Await):
        expr = expr.value
    if not isinstance(expr, ast.Call):
        return False
    name = _call_name(expr)
    return name in FROZEN_PROVIDERS or name in shared_locals


class _FuncFacts(NamedTuple):
    """Per-function raw material for the fixpoint."""

    calls: List[Tuple[str, ast.Call]]          # resolved local call sites
    return_calls: List[str]                    # local callees in `return f()`
    returns_provider: Optional[ast.AST]        # `return cached_scheme(...)`
    returned_names: frozenset                  # names appearing in `return x`
    provider_bound: frozenset                  # names bound from providers
    local_bound: Dict[str, str]                # name -> local callee binding


class EffectsStore:
    """Solved effect summaries for every function of one module."""

    def __init__(self, funcs: List[FuncInfo], resolver: Resolver,
                 imports: _ImportMap):
        self.funcs = funcs
        self.resolver = resolver
        self.imports = imports
        self.summaries: Dict[str, EffectSummary] = {}
        self.calls: Dict[str, List[Tuple[str, ast.Call]]] = {}

    # -- construction ----------------------------------------------------
    @classmethod
    def build(cls, tree: ast.Module,
              funcs: Optional[List[FuncInfo]] = None) -> "EffectsStore":
        funcs = funcs if funcs is not None else collect_functions(tree)
        store = cls(funcs, Resolver(funcs), _ImportMap(tree))
        facts: Dict[str, _FuncFacts] = {}
        memoised = {fi.qualname for fi in funcs
                    if set(_decorator_names(fi.node)) & _MEMO_DECORATORS}
        for fi in funcs:
            summary = EffectSummary(fi.qualname)
            store.summaries[fi.qualname] = summary
            facts[fi.qualname] = store._scan_direct(fi, summary)
            store.calls[fi.qualname] = facts[fi.qualname].calls
            if fi.qualname in memoised:
                summary.add(Effect("shared_return", fi.node,
                                   "memoised (lru_cache): results are "
                                   "shared instances", ()))
        store._propagate(facts)
        return store

    def summary(self, qualname: str) -> EffectSummary:
        return self.summaries[qualname]

    def shared_locals(self) -> frozenset:
        """Qualnames of local functions whose results are shared."""
        return frozenset(q for q, s in self.summaries.items()
                         if s.has("shared_return"))

    def describe(self) -> str:
        return "\n".join(self.summaries[fi.qualname].describe()
                         for fi in self.funcs)

    # -- phase 1: direct effects ----------------------------------------
    def _scan_direct(self, fi: FuncInfo,
                     summary: EffectSummary) -> _FuncFacts:
        declared: set = set()        # global/nonlocal-declared names
        decl_nodes: Dict[str, ast.stmt] = {}
        calls: List[Tuple[str, ast.Call]] = []
        return_calls: List[str] = []
        returns_provider: Optional[ast.AST] = None
        returned_names: set = set()
        provider_bound: set = set()
        local_bound: Dict[str, str] = {}

        for stmt in fi.node.body:
            for node in walk_shallow(stmt):
                if isinstance(node, (ast.Global, ast.Nonlocal)):
                    declared.update(node.names)
                    for n in node.names:
                        decl_nodes.setdefault(n, node)
                elif isinstance(node, ast.Call):
                    self._classify_call(node, summary)
                    target = self.resolver.resolve(node, fi)
                    if target is not None:
                        calls.append((target, node))
                elif isinstance(node, ast.Return) and node.value is not None:
                    value = node.value
                    if isinstance(value, ast.Await):
                        value = value.value
                    if isinstance(value, ast.Name):
                        returned_names.add(value.id)
                    elif isinstance(value, ast.Call):
                        name = _call_name(value)
                        if name in FROZEN_PROVIDERS:
                            returns_provider = value
                        else:
                            target = self.resolver.resolve(value, fi)
                            if target is not None:
                                return_calls.append(target)
                elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                    value = getattr(node, "value", None)
                    if isinstance(value, ast.Await):
                        value = value.value
                    if isinstance(value, ast.Call):
                        name = _call_name(value)
                        names = list(_assigned_names(node))
                        if name in FROZEN_PROVIDERS:
                            provider_bound.update(names)
                        else:
                            target = self.resolver.resolve(value, fi)
                            if target is not None:
                                for n in names:
                                    local_bound[n] = target

        # a global/nonlocal decl only matters if one declared name is
        # actually written in this function
        written = set()
        for stmt in fi.node.body:
            for node in walk_shallow(stmt):
                if isinstance(node, (ast.Assign, ast.AugAssign,
                                     ast.AnnAssign)):
                    written.update(_assigned_names(node))
        for name in sorted(declared & written):
            summary.add(Effect(
                "global_write", decl_nodes[name],
                f"writes module/enclosing state '{name}'", ()))

        if returns_provider is not None:
            summary.add(Effect("shared_return", returns_provider,
                               "returns a frozen-provider result", ()))
        return _FuncFacts(calls, return_calls, returns_provider,
                          frozenset(returned_names),
                          frozenset(provider_bound), local_bound)

    def _classify_call(self, node: ast.Call,
                       summary: EffectSummary) -> None:
        name = _call_name(node)
        if isinstance(node.func, ast.Name) and name in _IO_NAME_CALLS:
            summary.add(Effect("io", node, f"{name}() opens a file", ()))
            return
        if isinstance(node.func, ast.Attribute) and name in _IO_METHODS:
            summary.add(Effect("io", node,
                               f".{name}() performs file/disk I/O", ()))
            return
        resolved = self.imports.resolve(node)
        if resolved is None:
            return
        mod, fn = resolved
        # lazy import: linter's top level has no dataflow dependency, but
        # importing it at *our* module top would still cycle through
        # repro.analysis.__init__ during package import
        from ...analysis.linter import (_GLOBAL_RANDOM, _WALLCLOCK_DATETIME,
                                        _WALLCLOCK_TIME)
        if mod == "time" and fn in _WALLCLOCK_TIME:
            summary.add(Effect("clock", node,
                               f"time.{fn}() reads the wall clock", ()))
        elif mod in ("datetime", "datetime.datetime", "datetime.date") \
                and fn in _WALLCLOCK_DATETIME:
            summary.add(Effect("clock", node,
                               f"datetime {fn}() reads the wall clock", ()))
        elif mod == "random" and fn in _GLOBAL_RANDOM:
            summary.add(Effect("rng", node,
                               f"random.{fn}() uses the global RNG", ()))
        elif mod == "random" and fn == "Random" and not node.args \
                and not node.keywords:
            summary.add(Effect("rng", node,
                               "random.Random() without a seed", ()))
        elif mod == "os" and fn in _OS_IO:
            summary.add(Effect("io", node, f"os.{fn}() is I/O or reads "
                               "ambient process state", ()))
        elif mod.split(".")[0] in _IO_MODULES:
            summary.add(Effect("io", node, f"{mod}.{fn}() is I/O", ()))

    # -- phase 2: transitive closure ------------------------------------
    def _propagate(self, facts: Dict[str, _FuncFacts]) -> None:
        impure_kinds = [k for k in EFFECT_KINDS if k != "shared_return"]
        changed = True
        rounds = 0
        while changed and rounds < len(self.funcs) + 2:
            changed = False
            rounds += 1
            for fi in self.funcs:
                caller = self.summaries[fi.qualname]
                fact = facts[fi.qualname]
                for callee, site in fact.calls:
                    cs = self.summaries[callee]
                    for kind in impure_kinds:
                        if cs.has(kind) and not caller.has(kind):
                            w = cs.witness(kind)
                            caller.add(Effect(
                                kind, site, w.detail,
                                (callee,) + w.via))
                            changed = True
                if caller.has("shared_return"):
                    continue
                shared = any(
                    self.summaries[t].has("shared_return")
                    for t in fact.return_calls
                ) or any(
                    n in fact.provider_bound or (
                        n in fact.local_bound and
                        self.summaries[fact.local_bound[n]]
                        .has("shared_return"))
                    for n in fact.returned_names)
                if shared:
                    caller.add(Effect("shared_return", fi.node,
                                      "passes a shared instance through",
                                      ("<return>",)))
                    changed = True
