"""Worklist fixpoint solver for dataflow analyses over a :class:`~repro.analysis.dataflow.cfg.CFG`.

An analysis is a small strategy object (lattice + transfer); the solver
is direction-agnostic and iterates block states to a fixed point.  All
the ULF dataflow rules are instances:

* rank-taint propagation (forward, may)      — ULF006/ULF009
* collectives-to-exit (backward, may)        — ULF006
* integer constant propagation (forward)     — ULF009
* communicator typestate (forward, may)      — ULF007/ULF008
* checkpoint synchronisation (forward, must) — ULF005/ULF010

States must be treated as immutable by ``transfer_stmt`` (return a new
state rather than mutating), because the solver caches and compares them
for convergence.  ``bottom()`` is the state of unreachable code and the
identity of ``join``; for a *must* analysis that means the vacuous
"everything holds" top-of-the-property value, so dead code never raises
findings.
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Dict, Optional, Tuple

from .cfg import CFG

__all__ = ["Analysis", "solve"]


class Analysis:
    """Base strategy: subclass and override the lattice and transfer."""

    #: "forward" (states flow entry -> exit) or "backward"
    direction = "forward"

    def boundary(self, cfg: CFG) -> Any:
        """State at the entry block (forward) / exit block (backward)."""
        raise NotImplementedError

    def bottom(self) -> Any:
        """Identity of ``join``; the state of unreachable blocks."""
        raise NotImplementedError

    def join(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def transfer_stmt(self, stmt: ast.stmt, state: Any,
                      emit: Optional[Callable] = None) -> Any:
        """Propagate one statement.  ``emit(rule, node, message)`` is only
        provided during the reporting replay, never while solving."""
        return state

    def transfer_block(self, block, state: Any,
                       emit: Optional[Callable] = None) -> Any:
        stmts = block.stmts
        if self.direction == "backward":
            stmts = reversed(stmts)
        for stmt in stmts:
            state = self.transfer_stmt(stmt, state, emit)
        return state


def solve(cfg: CFG, analysis: Analysis) -> Tuple[Dict[int, Any],
                                                 Dict[int, Any]]:
    """Run ``analysis`` to a fixed point; returns ``(in_states,
    out_states)`` keyed by block id.

    For a backward analysis the naming follows the *flow*: ``in_states``
    is the state at the point just before the block in flow order, i.e.
    at the block's start for forward and at the block's end for backward
    — either way ``in_states[b]`` is what ``transfer_block`` was fed.
    """
    forward = analysis.direction == "forward"
    preds = cfg.preds()
    if forward:
        sources: Dict[int, list] = {b: [p for p, _ in preds[b]]
                                    for b in cfg.blocks}
        start = cfg.entry
    else:
        sources = {b: [t for t, _ in cfg.blocks[b].succs]
                   for b in cfg.blocks}
        start = cfg.exit

    in_states = {b: analysis.bottom() for b in cfg.blocks}
    out_states = {b: analysis.bottom() for b in cfg.blocks}
    in_states[start] = analysis.boundary(cfg)
    out_states[start] = analysis.transfer_block(cfg.blocks[start],
                                                in_states[start])

    worklist = sorted(cfg.blocks)
    iterations = 0
    limit = 64 * (len(cfg.blocks) + 1)  # safety valve; lattices are finite
    while worklist and iterations < limit:
        iterations += 1
        bid = worklist.pop(0)
        feeds = sources[bid]
        if bid == start:
            new_in = analysis.boundary(cfg)
        elif feeds:
            new_in = analysis.bottom()
            for f in feeds:
                new_in = analysis.join(new_in, out_states[f])
        else:
            new_in = analysis.bottom()
        new_out = analysis.transfer_block(cfg.blocks[bid], new_in)
        if new_in == in_states[bid] and new_out == out_states[bid]:
            continue
        in_states[bid] = new_in
        out_states[bid] = new_out
        dependents = ([t for t, _ in cfg.blocks[bid].succs] if forward
                      else [p for p, _ in preds[bid]])
        for d in dependents:
            if d not in worklist:
                worklist.append(d)
    return in_states, out_states
