"""Escape analysis for the owned-copy contract (ULF013).

``RunCache.get`` hands out owned copies precisely so callers can do
anything with a hit; the object caches (``cached_scheme`` /
``layout_for`` / ``combination_plan`` / ``_axis_resample_weights``) do
the opposite — they hand out *the* shared instance and rely on callers
treating it as immutable and transient.  That contract breaks quietly
when a shared reference **escapes** into long-lived mutable state: once
stored in ``self.something`` or a module-level container, the shared
object outlives the call and any later mutation (or cache eviction
assumption) corrupts unrelated runs.

Forward may-taint over the CFG, two levels per reference:

``shared``
    bound straight from a frozen provider or a module-local function
    whose :class:`~.effects.EffectsStore` summary says ``shared_return``
    (aliases propagate).
``view``
    derived from a shared reference by subscripting (``w = wx[0]`` — a
    NumPy view of the frozen buffer, not an owned array).

Sinks (flagged at the statement):

* storing a shared/view reference — or a provider call's result
  directly — into a long-lived container: an attribute/subscript of
  ``self``, a ``global``-declared name, or a module-level name
  (``self.plan = combination_plan(...)``, ``_SEEN[k] = scheme``,
  ``self.rows.append(wx)``);
* **returning a view** (``return wx[0]``) — the caller receives an
  unowned window into the cache's buffer.

Returning the *whole* shared object is deliberately allowed: a function
that does ``return cached_scheme(...)`` is itself a provider
(``shared_return`` in its summary) and its callers are analysed with
that knowledge — ``repro.ft.recovery`` is full of legitimate
pass-throughs.  ``.copy()`` / ``deepcopy`` / ``np.array`` rebinds clear
the taint: the owned-copy idiom is the fix the rule suggests.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, FrozenSet, List, Optional, Set

from .cfg import CFG, build_cfg, walk_shallow
from .ckptsync import FuncInfo, collect_functions
from .effects import FROZEN_PROVIDERS, EffectsStore
from .engine import Analysis, solve

__all__ = ["check_escape"]

_SHARED = "shared"
_VIEW = "view"

#: container methods that store their argument for later
_STORE_METHODS = frozenset({"append", "add", "insert", "extend",
                            "update", "setdefault", "push"})

#: state: ref -> taint levels it may carry
_State = Dict[str, FrozenSet[str]]


def _ref_of(expr: ast.expr) -> Optional[str]:
    parts = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _root_name(expr: ast.expr) -> Optional[str]:
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def module_level_names(tree: ast.Module) -> FrozenSet[str]:
    """Names bound by top-level assignments — module-lifetime storage."""
    names: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            for t in targets:
                elts = t.elts if isinstance(t, (ast.Tuple, ast.List)) \
                    else [t]
                for e in elts:
                    if isinstance(e, ast.Name):
                        names.add(e.id)
    return frozenset(names)


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


class _SharedTaint(Analysis):
    direction = "forward"

    def __init__(self, info: FuncInfo, store: EffectsStore,
                 long_lived: FrozenSet[str]):
        self.info = info
        self.store = store
        self.long_lived = long_lived  # global-decl + module-level names

    # -- lattice ---------------------------------------------------------
    def boundary(self, cfg: CFG) -> _State:
        return {}

    def bottom(self) -> _State:
        return {}

    def join(self, a: _State, b: _State) -> _State:
        if not a:
            return b
        if not b:
            return a
        out = dict(a)
        for ref, levels in b.items():
            out[ref] = out.get(ref, frozenset()) | levels
        return out

    # -- taint of an expression -----------------------------------------
    def _taint_of(self, expr: Optional[ast.expr],
                  state: _State) -> FrozenSet[str]:
        if expr is None:
            return frozenset()
        if isinstance(expr, ast.Await):
            expr = expr.value
        if isinstance(expr, ast.Name):
            return state.get(expr.id, frozenset())
        if isinstance(expr, ast.Attribute):
            ref = _ref_of(expr)
            return state.get(ref, frozenset()) if ref else frozenset()
        if isinstance(expr, ast.Subscript):
            base = self._taint_of(expr.value, state)
            return frozenset({_VIEW}) if base else frozenset()
        if isinstance(expr, ast.Call):
            if self._is_shared_call(expr):
                return frozenset({_SHARED})
        return frozenset()

    def _is_shared_call(self, call: ast.Call) -> bool:
        name = _call_name(call)
        if name in FROZEN_PROVIDERS:
            return True
        target = self.store.resolver.resolve(call, self.info)
        return target is not None and \
            self.store.summary(target).has("shared_return")

    def _is_long_lived(self, expr: ast.expr) -> bool:
        root = _root_name(expr)
        if root is None:
            return False
        if root == "self" or root == "cls":
            return True
        return root in self.long_lived

    # -- transfer --------------------------------------------------------
    def transfer_stmt(self, stmt: ast.stmt, state: _State,
                      emit: Optional[Callable] = None) -> _State:
        state = dict(state)
        # container .append(shared) etc. on long-lived receivers
        for node in walk_shallow(stmt):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _STORE_METHODS):
                continue
            if not self._is_long_lived(node.func.value):
                continue
            for arg in node.args:
                taint = self._taint_of(arg, state)
                if taint and emit:
                    recv = _ref_of(node.func.value) or "container"
                    what = "a view of" if _VIEW in taint and \
                        _SHARED not in taint else ""
                    emit("ULF013", node,
                         f"'.{node.func.attr}()' stores {what + ' ' if what else ''}"
                         f"a shared cached object into long-lived "
                         f"'{recv}': the cache's instance now outlives "
                         "the call — store an owned '.copy()' instead")

        if isinstance(stmt, ast.Return) and stmt.value is not None:
            value = stmt.value
            if isinstance(value, ast.Await):
                value = value.value
            taint = self._taint_of(value, state)
            # returning the whole shared object = being a provider (ok);
            # returning a *view* leaks an unowned window into the buffer
            if _VIEW in taint and not (isinstance(value, ast.Name)
                                       and _SHARED in taint) and emit:
                emit("ULF013", stmt,
                     "returns a view of a shared cached array without "
                     "'.copy()': the caller receives an unowned window "
                     "into the cache's buffer")
            return state

        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            value = stmt.value
            vtaint = self._taint_of(value, state)
            for raw in targets:
                elts = raw.elts if isinstance(raw, (ast.Tuple, ast.List)) \
                    else [raw]
                for target in elts:
                    self._apply_store(stmt, target, value, vtaint, state,
                                      emit)
        return state

    def _apply_store(self, stmt: ast.stmt, target: ast.expr,
                     value: Optional[ast.expr], vtaint: FrozenSet[str],
                     state: _State, emit: Optional[Callable]) -> None:
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            if vtaint and self._is_long_lived(target):
                where = _ref_of(target) or \
                    f"{_root_name(target)}[...]"
                if emit:
                    emit("ULF013", stmt,
                         f"stores a shared cached object into long-lived "
                         f"'{where}': the cache's instance now outlives "
                         "the call — store an owned '.copy()' instead")
            return
        if isinstance(target, ast.Name):
            if vtaint:
                state[target.id] = vtaint
            else:
                state.pop(target.id, None)


def check_escape(tree: ast.Module, flag: Callable, store: EffectsStore,
                 funcs: Optional[List[FuncInfo]] = None,
                 cfgs: Optional[Dict[str, CFG]] = None) -> None:
    """Run the escape analysis over a whole module; ``flag(rule, node,
    message)`` receives each violation."""
    funcs = funcs if funcs is not None else collect_functions(tree)
    cfgs = cfgs or {}
    mod_names = module_level_names(tree)
    for fi in funcs:
        cfg = cfgs.get(fi.qualname) or build_cfg(fi.node, fi.qualname)
        declared: Set[str] = set()
        for stmt in fi.node.body:
            for node in walk_shallow(stmt):
                if isinstance(node, ast.Global):
                    declared.update(node.names)
        analysis = _SharedTaint(fi, store,
                                frozenset(declared) | mod_names)
        in_states, _ = solve(cfg, analysis)
        seen = set()

        def emit(rule, node, message):
            key = (rule, getattr(node, "lineno", 0),
                   getattr(node, "col_offset", 0))
            if key not in seen:
                seen.add(key)
                flag(rule, node, message)

        for bid, block in cfg.blocks.items():
            analysis.transfer_block(block, in_states[bid], emit)
