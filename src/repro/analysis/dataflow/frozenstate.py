"""Frozen-state typestate: mutation of shared cached objects (ULF011).

The hot-path caches hand every caller the *same* instance:
``cached_scheme``/``layout_for``/``combination_plan`` are
``lru_cache``-memoised, and ``_axis_resample_weights`` returns index/
weight arrays frozen with ``arr.flags.writeable = False`` (see
docs/performance.md).  Mutating one of those objects corrupts every
later consumer of the same cache entry — the static twin of the
disk-aliasing corruption the checkpoint layer guards against
dynamically.

This is a forward may-analysis in the style of the communicator
typestate (ULF007/ULF008): the state is the set of references that may
point at a shared/frozen object on some path.  References become
tracked when

* bound (incl. tuple-unpack) from a frozen-provider call
  (:data:`~.effects.FROZEN_PROVIDERS`),
* explicitly frozen via ``x.flags.writeable = False`` or
  ``x.setflags(write=False)`` (the freeze itself is exempt), or
* derived from a tracked reference by aliasing (``y = x``) or a
  subscript view (``y = x[...]`` — NumPy views share the buffer).

Rebinding a name to anything else — including ``x.copy()``,
``deepcopy(x)``, ``np.array(x)`` — forgets it: the owned-copy idiom is
exactly what the rule steers toward.  On a tracked reference the rule
flags subscript/attribute stores, augmented assignment, in-place
mutator methods (``.sort()``, ``.update()``, ``.fill()``, ...),
``setattr``, ``del R[...]``, and thawing (``writeable = True``).
"""

from __future__ import annotations

import ast
from typing import Callable, FrozenSet, List, Optional

from .cfg import CFG, build_cfg, walk_shallow
from .effects import FROZEN_PROVIDERS
from .engine import Analysis, solve

__all__ = ["check_frozen_state", "MUTATOR_METHODS"]

#: in-place mutators on lists/dicts/sets/ndarrays: calling one on a
#: shared cached object corrupts every other consumer
MUTATOR_METHODS = frozenset({
    "sort", "append", "extend", "insert", "remove", "pop", "clear",
    "update", "setdefault", "popitem", "reverse", "fill", "resize",
    "itemset", "put", "partition", "byteswap", "add", "discard",
    "difference_update", "intersection_update", "symmetric_difference_update",
})

#: state: refs that may point at a shared/frozen object
_State = FrozenSet[str]


def _chain(expr: ast.expr) -> Optional[List[str]]:
    """Dotted parts of an attribute/subscript chain rooted in a name:
    ``plan.ops[k].data`` -> ``["plan", "ops", "data"]``; None otherwise.
    Subscripts are transparent (a view of a tracked array is the same
    buffer)."""
    parts: List[str] = []
    node = expr
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Starred):
            node = node.value
        else:
            break
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return list(reversed(parts))


def _tracked_prefix(expr: ast.expr, state: _State) -> Optional[str]:
    """The tracked reference this expression reaches into, if any."""
    parts = _chain(expr)
    if parts is None:
        return None
    for i in range(1, len(parts) + 1):
        ref = ".".join(parts[:i])
        if ref in state:
            return ref
    return None


def _ref_of(expr: ast.expr) -> Optional[str]:
    """Exact dotted reference (no subscripts) — assignable identity."""
    parts = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _provider_call(expr: Optional[ast.expr]) -> bool:
    if isinstance(expr, ast.Await):
        expr = expr.value
    if not isinstance(expr, ast.Call):
        return False
    f = expr.func
    name = f.attr if isinstance(f, ast.Attribute) else \
        f.id if isinstance(f, ast.Name) else None
    return name in FROZEN_PROVIDERS


def _freeze_target(target: ast.expr) -> Optional[ast.expr]:
    """For a ``<obj>.flags.writeable = ...`` store, the ``<obj>`` node."""
    if isinstance(target, ast.Attribute) and target.attr == "writeable" \
            and isinstance(target.value, ast.Attribute) \
            and target.value.attr == "flags":
        return target.value.value
    return None


def _assign_targets(target: ast.expr):
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _assign_targets(elt)
    else:
        yield target


class _FrozenState(Analysis):
    direction = "forward"

    def boundary(self, cfg: CFG) -> _State:
        return frozenset()

    def bottom(self) -> _State:
        return frozenset()

    def join(self, a: _State, b: _State) -> _State:
        return a | b

    # -- transfer --------------------------------------------------------
    def transfer_stmt(self, stmt: ast.stmt, state: _State,
                      emit: Optional[Callable] = None) -> _State:
        tracked = set(state)
        # mutator calls / setattr against the pre-statement state
        for node in walk_shallow(stmt):
            if not isinstance(node, ast.Call):
                continue
            f = node.func
            if isinstance(f, ast.Attribute) and f.attr in MUTATOR_METHODS:
                ref = _tracked_prefix(f.value, state)
                if ref is not None and emit:
                    emit("ULF011", node,
                         f"'.{f.attr}()' mutates '{ref}', which may be a "
                         "shared cached object (frozen provider result); "
                         "take an owned '.copy()' before mutating")
            elif isinstance(f, ast.Attribute) and f.attr == "setflags":
                ref = _ref_of(f.value)
                write = next((kw.value for kw in node.keywords
                              if kw.arg == "write"), None)
                if isinstance(write, ast.Constant) and write.value is False:
                    if ref is not None:
                        tracked.add(ref)
                elif ref is not None and ref in state and emit:
                    emit("ULF011", node,
                         f"'{ref}.setflags(write=True)' thaws a frozen "
                         "shared array; copy it instead of unfreezing "
                         "the cached buffer")
            elif isinstance(f, ast.Name) and f.id == "setattr" and node.args:
                ref = _tracked_prefix(node.args[0], state)
                if ref is not None and emit:
                    emit("ULF011", node,
                         f"setattr() on '{ref}', which may be a shared "
                         "cached object; mutate an owned copy instead")

        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = list(stmt.targets) if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            value = getattr(stmt, "value", None)
            for raw in targets:
                for target in _assign_targets(raw):
                    self._apply_store(stmt, target, value, state, tracked,
                                      emit)
        elif isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                if isinstance(t, ast.Subscript):
                    ref = _tracked_prefix(t.value, state)
                    if ref is not None and emit:
                        emit("ULF011", t,
                             f"'del' of an element of '{ref}', which may "
                             "be a shared cached object; copy before "
                             "deleting")
                else:
                    ref = _ref_of(t)
                    if ref is not None:
                        tracked.discard(ref)
        return frozenset(tracked)

    def _apply_store(self, stmt: ast.stmt, target: ast.expr,
                     value: Optional[ast.expr], state: _State,
                     tracked: set, emit: Optional[Callable]) -> None:
        # freeze idiom: `arr.flags.writeable = False` marks arr frozen
        frozen_obj = _freeze_target(target)
        if frozen_obj is not None:
            ref = _ref_of(frozen_obj)
            if isinstance(value, ast.Constant) and value.value is False:
                if ref is not None:
                    tracked.add(ref)
            elif ref is not None and ref in state and emit:
                emit("ULF011", stmt,
                     f"'{ref}.flags.writeable = True' thaws a frozen "
                     "shared array; copy it instead of unfreezing the "
                     "cached buffer")
            return

        if isinstance(stmt, ast.AugAssign):
            ref = _tracked_prefix(target, state)
            if ref is not None and emit:
                emit("ULF011", stmt,
                     f"in-place augmented assignment mutates '{ref}', "
                     "which may be a shared cached object; use an owned "
                     "'.copy()'")
            return

        if isinstance(target, ast.Subscript):
            ref = _tracked_prefix(target.value, state)
            if ref is not None and emit:
                emit("ULF011", stmt,
                     f"subscript store into '{ref}', which may be a "
                     "shared cached object (frozen provider result); "
                     "writing through a view corrupts every other "
                     "consumer — take '.copy()' first")
            return

        if isinstance(target, ast.Attribute):
            ref = _tracked_prefix(target.value, state)
            if ref is not None and emit:
                emit("ULF011", stmt,
                     f"attribute store on '{ref}', which may be a shared "
                     "cached object; mutate an owned copy instead")
            return

        # plain name (re)binding: propagate or forget
        ref = _ref_of(target)
        if ref is None:
            return
        if _provider_call(value):
            tracked.add(ref)
        elif value is not None:
            src = _tracked_prefix(value, state) \
                if isinstance(value, (ast.Name, ast.Subscript,
                                      ast.Attribute)) else None
            if src is not None:
                tracked.add(ref)
            else:
                tracked.discard(ref)


def check_frozen_state(func: ast.AST, flag: Callable,
                       cfg: Optional[CFG] = None) -> None:
    """Run the frozen-state analysis over one function; ``flag(rule,
    node, message)`` receives each violation."""
    cfg = cfg or build_cfg(func)
    analysis = _FrozenState()
    in_states, _ = solve(cfg, analysis)
    seen = set()

    def emit(rule, node, message):
        key = (rule, getattr(node, "lineno", 0),
               getattr(node, "col_offset", 0))
        if key not in seen:
            seen.add(key)
            flag(rule, node, message)

    for bid, block in cfg.blocks.items():
        analysis.transfer_block(block, in_states[bid], emit)
