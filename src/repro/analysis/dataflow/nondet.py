"""Order-nondeterminism feeding aggregation (ULF014).

The sweep engine promises bit-identical results between serial and
pooled execution (``docs/performance.md``): a task's floats must not
depend on iteration order.  Python ``set`` iteration order depends on
insertion history and hash seeding, and ``id()`` values differ between
processes — both are invisible in a single-process test run and only
diverge once the pool (or a rerun) reorders things.

Three patterns are flagged, with a flow-sensitive set-typed taint over
the CFG so that the standard fix — ``sorted(...)`` — genuinely clears
the finding:

* a ``for`` loop over a set-typed expression whose body *accumulates*
  (augmented assignment, ``.append``/``.extend``/``.insert``): float
  addition is not associative, list order escapes into results.
  Order-independent bodies (pure ``dict[k] = v`` stores, ``.add`` into
  another set, deletes) are not flagged;
* ``sum(...)`` / ``math.fsum(...)`` over a set-typed argument;
* ``id()``-derived dictionary keys (``d[id(x)] = ...``, ``{id(x): v}``)
  — the key set changes between processes, so any keyed aggregation or
  serialisation diverges.  Membership dedup via ``seen.add(id(x))``
  is order-free and stays legal.

A name becomes set-typed when bound from a set literal/comprehension,
``set(...)``/``frozenset(...)``, or a union/intersection/difference of
set-typed operands; rebinding through ``sorted``/``list``/``tuple``
clears it.  ``dict`` iteration is insertion-ordered and deterministic
on every supported Python, so it is deliberately not flagged.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, FrozenSet, Optional

from .cfg import CFG, build_cfg, walk_shallow
from .engine import Analysis, solve

__all__ = ["check_nondeterminism"]

#: loop-body operations that make iteration order escape into results
_ACCUMULATORS = frozenset({"append", "extend", "insert"})

_State = FrozenSet[str]  # set-typed names


def _pos(node: ast.AST):
    """Stable identity of an expression: its source position.  The CFG's
    lowered loop-head binding reuses the For's iter node verbatim, so
    position equality recognises it (and, unlike ``id()``, survives the
    rule's own ULF014 check)."""
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0),
            getattr(node, "end_lineno", 0),
            getattr(node, "end_col_offset", 0))


def _is_setty(expr: ast.expr, state: _State) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Name):
        return expr.id in state
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
            and expr.func.id in ("set", "frozenset"):
        return True
    if isinstance(expr, ast.BinOp) and \
            isinstance(expr.op, (ast.BitOr, ast.BitAnd, ast.Sub,
                                 ast.BitXor)):
        return _is_setty(expr.left, state) or _is_setty(expr.right, state)
    return False


def _accumulates(loop: ast.stmt) -> bool:
    """Does the loop body make order-dependent progress?"""
    for stmt in loop.body:
        for node in walk_shallow(stmt):
            if isinstance(node, ast.AugAssign):
                return True
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _ACCUMULATORS:
                return True
    return False


def _id_key(expr: Optional[ast.expr]) -> bool:
    return isinstance(expr, ast.Call) and \
        isinstance(expr.func, ast.Name) and expr.func.id == "id"


def _pop_targets(target: ast.expr, names: set) -> None:
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _pop_targets(elt, names)
    elif isinstance(target, ast.Name):
        names.discard(target.id)


class _SetTaint(Analysis):
    direction = "forward"

    def __init__(self, iter_to_for: Dict[tuple, ast.stmt]):
        #: iter-expr position -> owning For node, to recognise the
        #: lowered ``target = iter`` binding in the loop-head block
        self.iter_to_for = iter_to_for

    def boundary(self, cfg: CFG) -> _State:
        return frozenset()

    def bottom(self) -> _State:
        return frozenset()

    def join(self, a: _State, b: _State) -> _State:
        return a | b

    def transfer_stmt(self, stmt: ast.stmt, state: _State,
                      emit: Optional[Callable] = None) -> _State:
        names = set(state)
        for node in walk_shallow(stmt):
            if isinstance(node, ast.Call):
                self._check_call(node, state, emit)
            elif isinstance(node, ast.Dict) and emit:
                for key in node.keys:
                    if _id_key(key):
                        emit("ULF014", key,
                             "id()-derived dict key: id() values differ "
                             "between processes, so keyed results "
                             "diverge between serial and pooled runs; "
                             "key on stable identity instead")
            elif isinstance(node, ast.DictComp) and emit and \
                    _id_key(node.key):
                emit("ULF014", node.key,
                     "id()-derived dict key: id() values differ between "
                     "processes, so keyed results diverge between "
                     "serial and pooled runs; key on stable identity "
                     "instead")

        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript) and \
                        _id_key(target.slice) and emit:
                    emit("ULF014", stmt,
                         "id()-derived dict key: id() values differ "
                         "between processes, so keyed results diverge "
                         "between serial and pooled runs; key on stable "
                         "identity instead")
            loop = self.iter_to_for.get(_pos(stmt.value))
            if loop is not None:
                # the lowered `target = iter` binding of a for-loop head
                if _is_setty(stmt.value, state) and _accumulates(loop) \
                        and emit:
                    emit("ULF014", loop,
                         "iteration over an unordered set feeds an "
                         "accumulator: set order varies with insertion "
                         "history and hashing, so serial and pooled "
                         "runs produce different floats/orders; "
                         "iterate over sorted(...) instead")
                for target in stmt.targets:
                    _pop_targets(target, names)  # element, not a set
            else:
                setty = _is_setty(stmt.value, state)
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if setty:
                            names.add(target.id)
                        else:
                            names.discard(target.id)
                    else:
                        _pop_targets(target, names)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None \
                and isinstance(stmt.target, ast.Name):
            if _is_setty(stmt.value, state):
                names.add(stmt.target.id)
            else:
                names.discard(stmt.target.id)
        return frozenset(names)

    def _check_call(self, node: ast.Call, state: _State,
                    emit: Optional[Callable]) -> None:
        f = node.func
        is_sum = isinstance(f, ast.Name) and f.id == "sum"
        is_fsum = isinstance(f, ast.Attribute) and f.attr == "fsum"
        if not (is_sum or is_fsum) or not node.args:
            return
        if _is_setty(node.args[0], state) and emit:
            what = "math.fsum" if is_fsum else "sum"
            emit("ULF014", node,
                 f"{what}() over an unordered set: float accumulation "
                 "order varies between runs and processes, breaking the "
                 "bit-identical serial/pool guarantee; sum over "
                 "sorted(...) instead")


def check_nondeterminism(func: ast.AST, flag: Callable,
                         cfg: Optional[CFG] = None) -> None:
    """Run the nondeterminism analysis over one function; ``flag(rule,
    node, message)`` receives each violation."""
    cfg = cfg or build_cfg(func)
    iter_to_for: Dict[tuple, ast.stmt] = {}
    for stmt in func.body:
        for node in walk_shallow(stmt):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_to_for[_pos(node.iter)] = node
    analysis = _SetTaint(iter_to_for)
    in_states, _ = solve(cfg, analysis)
    seen = set()

    def emit(rule, node, message):
        key = (rule, getattr(node, "lineno", 0),
               getattr(node, "col_offset", 0))
        if key not in seen:
            seen.add(key)
            flag(rule, node, message)

    for bid, block in cfg.blocks.items():
        analysis.transfer_block(block, in_states[bid], emit)
