"""Pool-transport pickling safety (ULF015).

``SweepRunner`` ships tasks to worker processes by pickling the
callable and its payload (``multiprocessing``'s contract, see
``repro.sweep.runner._execute`` — a module-level function for exactly
this reason).  Three things break that transport, all of them only at
runtime and some only on the *spawn* start method CI uses:

* **lambdas** — never picklable;
* **local (nested) functions** — their closure cells cannot be
  pickled, and even when the body looks pure the reference itself
  fails to serialise;
* **payloads holding process-local resources** — locks, open file
  handles, or a whole :class:`~repro.mpi.universe.Universe`: either
  unpicklable outright or, worse, silently duplicated per worker so
  synchronisation never happens.

The rule is syntactic with a shallow binding scan per function: it
looks at calls to pool transports (``map`` / ``submit`` / ``starmap``
/ ``imap`` / ``imap_unordered`` / ``apply`` / ``apply_async`` /
``map_async``) whose receiver is *pool-ish* — its name mentions
``pool``/``executor``, or it was bound (incl. ``with ... as p``) from
``Pool``/``ProcessPoolExecutor``/``ThreadPoolExecutor`` — and flags
lambda arguments, references to functions defined inside the calling
function, and argument names bound from ``Lock``/``RLock``/``open``/
``Universe`` constructors.  Generic ``.map()`` on non-pool objects
(e.g. executors' cousins, pandas) is deliberately out of scope.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Optional, Set

from .cfg import walk_shallow
from .ckptsync import FuncInfo

__all__ = ["check_pool_pickling", "TRANSPORT_METHODS"]

#: methods that ship callables/payloads to worker processes
TRANSPORT_METHODS = frozenset({
    "map", "submit", "starmap", "imap", "imap_unordered",
    "apply", "apply_async", "map_async", "starmap_async",
})

#: constructors of pool-like executors
_POOL_CONSTRUCTORS = frozenset({"Pool", "ProcessPoolExecutor",
                                "ThreadPoolExecutor"})

#: constructors of process-local resources that must not ride a payload
_UNPICKLABLE = {
    "Lock": "a lock is process-local: each worker gets its own copy, "
            "so it never synchronises anything",
    "RLock": "a lock is process-local: each worker gets its own copy, "
             "so it never synchronises anything",
    "Semaphore": "a semaphore is process-local and cannot coordinate "
                 "across pool workers",
    "Condition": "a condition variable is process-local and cannot "
                 "coordinate across pool workers",
    "open": "an open file handle cannot be pickled into a worker",
    "Universe": "a Universe holds the whole simulation event loop; "
                "ship (config, machine, kills, spares) and rebuild it "
                "in the worker (as _execute does)",
}


def _name_of(expr: ast.expr) -> Optional[str]:
    parts = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _ctor_name(expr: Optional[ast.expr]) -> Optional[str]:
    if isinstance(expr, ast.Call):
        f = expr.func
        if isinstance(f, ast.Attribute):
            return f.attr
        if isinstance(f, ast.Name):
            return f.id
    return None


def check_pool_pickling(info: FuncInfo, flag: Callable) -> None:
    """Flag unpicklable pool-transport payloads in one function.
    ``flag(rule, node, message)`` receives each violation."""
    func = info.node
    local_defs: Set[str] = set()
    bindings: Dict[str, str] = {}   # name -> constructor that bound it
    pool_names: Set[str] = set()

    def record(target: ast.expr, value: Optional[ast.expr]) -> None:
        name = target.id if isinstance(target, ast.Name) else None
        if name is None:
            return
        ctor = _ctor_name(value)
        if ctor in _POOL_CONSTRUCTORS:
            pool_names.add(name)
        elif ctor in _UNPICKLABLE:
            bindings[name] = ctor
        else:
            bindings.pop(name, None)
            pool_names.discard(name)

    for stmt in func.body:
        for node in walk_shallow(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local_defs.add(node.name)
            elif isinstance(node, ast.Assign):
                for t in node.targets:
                    record(t, node.value)
            elif isinstance(node, ast.AnnAssign):
                record(node.target, node.value)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        record(item.optional_vars, item.context_expr)

    def poolish(recv: ast.expr) -> bool:
        name = _name_of(recv)
        if name is None:
            return False
        lowered = name.lower()
        if "pool" in lowered or "executor" in lowered:
            return True
        return name in pool_names

    for stmt in func.body:
        for node in walk_shallow(stmt):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in TRANSPORT_METHODS
                    and poolish(node.func.value)):
                continue
            transport = node.func.attr
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Lambda):
                    flag("ULF015", arg,
                         f"lambda passed to pool '.{transport}()': "
                         "lambdas cannot be pickled into worker "
                         "processes; use a module-level function")
                elif isinstance(arg, ast.Name) and arg.id in local_defs:
                    flag("ULF015", arg,
                         f"locally-defined function '{arg.id}' passed to "
                         f"pool '.{transport}()': nested functions close "
                         "over their frame and cannot be pickled; move "
                         "it to module level")
                elif isinstance(arg, ast.Name) and arg.id in bindings:
                    ctor = bindings[arg.id]
                    flag("ULF015", arg,
                         f"'{arg.id}' (from {ctor}(...)) in a pool "
                         f"'.{transport}()' payload: {_UNPICKLABLE[ctor]}")
