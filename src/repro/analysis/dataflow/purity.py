"""Interprocedural purity of sweep-cacheable call graphs (ULF012).

The content-addressed :class:`~repro.sweep.cache.RunCache` replays a
task's *recorded result* whenever the same ``(config, machine, kills,
spares)`` key shows up again — sound only if the task is a pure
function of that key.  A cacheable entry point that writes module
state, touches the filesystem, draws from the process-global RNG, or
reads the wall clock produces results that silently differ between a
cache miss and a cache hit.

Entry points are declared (satellite convention, see docs/analysis.md):

* a ``# repro: cacheable`` comment on the ``def`` line, or
* a decorator named ``pure`` or ``cacheable`` (e.g.
  :func:`repro.analysis.annotations.pure`).

For each entry point the rule consults the module's
:class:`~.effects.EffectsStore` — the same two-phase summary-fixpoint
shape as ULF010 — and flags one witness per impurity kind
(``global_write`` / ``io`` / ``rng`` / ``clock``).  Inherited effects
are flagged at the call site inside the entry point, with the local
call chain in the message; direct rng/clock effects are already ULF002,
so the witness sites here are typically global writes, I/O, and the
call sites that *reach* such effects through helpers.

Calls that resolve to nothing module-local are assumed pure (same
optimistic stance as ULF010): the rule proves the module-local part of
the contract and never false-positives on foreign APIs.
"""

from __future__ import annotations

import ast
import re
from typing import Callable, List, Optional

from .effects import EFFECT_KINDS, EffectsStore

__all__ = ["check_purity", "cacheable_entry_points", "CACHEABLE_RE"]

#: the annotation comment, on the ``def`` line of the entry point
CACHEABLE_RE = re.compile(r"#\s*repro:\s*cacheable\b")

#: decorator names that declare a cacheable/pure entry point
_ENTRY_DECORATORS = frozenset({"pure", "cacheable"})

_IMPURE_KINDS = tuple(k for k in EFFECT_KINDS if k != "shared_return")


def _decorator_names(func: ast.AST):
    for dec in getattr(func, "decorator_list", ()):
        node = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(node, ast.Attribute):
            yield node.attr
        elif isinstance(node, ast.Name):
            yield node.id


def cacheable_entry_points(store: EffectsStore,
                           source: Optional[str] = None) -> List:
    """The module's declared-cacheable functions (FuncInfo records)."""
    lines = source.splitlines() if source else []
    entries = []
    for fi in store.funcs:
        if set(_decorator_names(fi.node)) & _ENTRY_DECORATORS:
            entries.append(fi)
            continue
        ln = getattr(fi.node, "lineno", 0)
        if 1 <= ln <= len(lines) and CACHEABLE_RE.search(lines[ln - 1]):
            entries.append(fi)
    return entries


_KIND_LABEL = {
    "global_write": "writes module/global state",
    "io": "performs file/disk I/O",
    "rng": "uses nondeterministic randomness",
    "clock": "reads the wall clock",
}


def check_purity(tree: ast.Module, flag: Callable, store: EffectsStore,
                 source: Optional[str] = None) -> None:
    """Flag impurity witnesses inside declared-cacheable entry points.
    ``flag(rule, node, message)`` receives each violation."""
    for fi in cacheable_entry_points(store, source):
        summary = store.summary(fi.qualname)
        seen = set()
        for kind in _IMPURE_KINDS:
            effect = summary.witness(kind)
            if effect is None:
                continue
            key = (getattr(effect.node, "lineno", 0),
                   getattr(effect.node, "col_offset", 0))
            if key in seen:
                continue
            seen.add(key)
            chain = f" (via {' -> '.join(effect.via)})" if effect.via else ""
            flag("ULF012", effect.node,
                 f"'{fi.qualname}' is declared cacheable but "
                 f"{_KIND_LABEL[kind]}{chain}: {effect.detail}; a cache "
                 "hit replays the recorded result, so the effect "
                 "silently disappears on reruns — hoist it out of the "
                 "cacheable call graph")
