"""Communicator typestate: use-after-revoke and double-free (ULF007/ULF008).

A communicator moves through a small protocol automaton::

    VALID --revoke()--> REVOKED --shrink()--> (new VALID comm)
      \\--free()-------> FREED

ULFM's contract (paper Fig. 5, MPI standard §17) is that a revoked
communicator supports *only* the fault-tolerant trio ``agree`` /
``shrink`` / ``revoke`` (plus local queries); everything else raises
``MPI_ERR_REVOKED`` at runtime — on every healthy rank, long after the
root cause.  A freed communicator supports nothing.  This module finds
both statically with a forward may-analysis: each tracked reference
(a local name or a ``self.x`` attribute chain) maps to the set of bad
states it *may* be in on some path; an MPI operation on a reference
whose may-set contains ``revoked`` (ULF007) or ``freed`` (ULF008) is
flagged at the call site.

Assigning to a name forgets its state (the reference now points at a
different communicator — e.g. ``comm = await comm.shrink()``); aliasing
``a = b`` copies ``b``'s state.  The analysis is intraprocedural: states
do not flow through calls, so passing a revoked communicator to a helper
is not flagged (the trace-replay protocol checker covers that
dynamically).
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, FrozenSet, Optional

from .cfg import CFG, build_cfg, walk_shallow
from .engine import Analysis, solve

__all__ = ["check_typestate", "MPI_OPS", "FT_OPS"]

#: operations that raise on a revoked communicator
MPI_OPS = frozenset({
    "send", "recv", "sendrecv", "isend", "irecv", "iprobe",
    "barrier", "bcast", "gather", "allgather", "scatter", "reduce",
    "allreduce", "scan", "exscan", "gatherv", "scatterv",
    "reduce_scatter_block", "alltoall", "split", "dup", "spawn_multiple",
    "merge",
})
#: fault-tolerant / local operations, legal on a revoked communicator
FT_OPS = frozenset({"agree", "shrink", "revoke", "free", "failure_ack",
                    "failure_get_acked", "set_errhandler"})

_REVOKED = "revoked"
_FREED = "freed"

#: state: mapping ref -> frozenset of bad states it may be in
_State = Dict[str, FrozenSet[str]]


def _ref_of(expr: ast.expr) -> Optional[str]:
    """Trackable reference string: a bare name (``comm``) or a dotted
    chain rooted in a name (``self.grid_comm``); None otherwise."""
    parts = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class _Typestate(Analysis):
    direction = "forward"

    def boundary(self, cfg: CFG) -> _State:
        return {}

    def bottom(self) -> _State:
        return {}

    def join(self, a: _State, b: _State) -> _State:
        if not a:
            return b
        if not b:
            return a
        out = dict(a)
        for ref, states in b.items():
            out[ref] = out.get(ref, frozenset()) | states
        return out

    # -- transfer --------------------------------------------------------
    def transfer_stmt(self, stmt: ast.stmt, state: _State,
                      emit: Optional[Callable] = None) -> _State:
        state = dict(state)
        for node in walk_shallow(stmt):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute):
                self._apply_call(node, state, emit)
        # assignments last: `comm = await comm.shrink()` checks the call
        # against the old state, then rebinds the target
        for target, value in _assignments(stmt):
            ref = _ref_of(target)
            if ref is None:
                continue
            src = _ref_of(value) if value is not None else None
            if src is not None and src in state:
                state[ref] = state[src]
            else:
                state.pop(ref, None)
        if isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                ref = _ref_of(t)
                if ref is not None:
                    state.pop(ref, None)
        return state

    def _apply_call(self, call: ast.Call, state: _State,
                    emit: Optional[Callable]) -> None:
        op = call.func.attr
        ref = _ref_of(call.func.value)
        if ref is None:
            return
        states = state.get(ref, frozenset())
        if op == "revoke":
            if _FREED in states and emit:
                emit("ULF008", call,
                     f"'{ref}.revoke()' but '{ref}' may already be freed")
            state[ref] = states | {_REVOKED}
        elif op == "free":
            if _FREED in states and emit:
                emit("ULF008", call,
                     f"double free: '{ref}.free()' but '{ref}' may "
                     "already be freed on some path")
            state[ref] = frozenset({_FREED})
        elif op in MPI_OPS:
            if _FREED in states and emit:
                emit("ULF008", call,
                     f"use after free: '{ref}.{op}()' but '{ref}' may "
                     "already be freed on some path")
            elif _REVOKED in states and emit:
                emit("ULF007", call,
                     f"'{ref}.{op}()' on a revoked communicator raises "
                     "MPI_ERR_REVOKED: after '{0}.revoke()' only agree/"
                     "shrink are legal; operate on the shrunk "
                     "communicator instead".format(ref))
        elif op in FT_OPS:
            if _FREED in states and emit:
                emit("ULF008", call,
                     f"use after free: '{ref}.{op}()' but '{ref}' may "
                     "already be freed on some path")


def _assignments(stmt: ast.stmt):
    """(target, value) pairs bound by this statement; value may be None
    when unknown (aug-assign keeps the target's identity: skip)."""
    if isinstance(stmt, ast.Assign):
        for t in stmt.targets:
            if isinstance(t, (ast.Tuple, ast.List)):
                for elt in t.elts:
                    yield elt, None
            else:
                yield t, stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        yield stmt.target, stmt.value
    else:
        for node in walk_shallow(stmt):
            if isinstance(node, ast.NamedExpr):
                yield node.target, node.value


def check_typestate(func: ast.AST, flag: Callable,
                    cfg: Optional[CFG] = None) -> None:
    """Run the typestate analysis over one function; ``flag(rule, node,
    message)`` receives each violation."""
    cfg = cfg or build_cfg(func)
    analysis = _Typestate()
    in_states, _ = solve(cfg, analysis)
    seen = set()

    def emit(rule, node, message):
        key = (rule, getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
        if key not in seen:
            seen.add(key)
            flag(rule, node, message)

    for bid, block in cfg.blocks.items():
        analysis.transfer_block(block, in_states[bid], emit)
