"""Parsed trace-event model shared by the protocol and race analyzers.

:class:`~repro.mpi.tracing.Tracer` records free-text events; this module
turns them into structured :class:`ParsedEvent` records using the detail
formats emitted by :mod:`repro.mpi.comm`, :mod:`repro.mpi.intercomm` and
:mod:`repro.mpi.universe`:

========  =======================  =======================================
kind      actor                    detail
========  =======================  =======================================
send      sender proc name         ``<comm> <src>-><dst> tag=<t> [inter]``
recv      receiver proc name       ``<comm> <src>-><dst> tag=<t> [anysrc] [anytag] [inter]``
coll      caller proc name         ``<op> <comm> r<rank>``
kill      killed proc name         free text
spawn     spawned job name         ``<count> proc(s) for <parent comm>``
revoke    revoking proc name       ``<comm> r<rank>``
revoked   communicator name        ``propagated``
========  =======================  =======================================

Unparseable events are kept with ``comm=None`` so analyzers can skip them
without losing the time axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


class TruncatedTraceError(ValueError):
    """The tracer overflowed (``dropped > 0``): analysis results would be
    unsound, so the analyzers refuse to run."""


@dataclass
class ParsedEvent:
    index: int
    time: float
    actor: str
    kind: str
    detail: str
    comm: Optional[str] = None
    op: Optional[str] = None        #: collective op name (kind == "coll")
    src: Optional[int] = None       #: sender rank (send/recv)
    dst: Optional[int] = None       #: receiver rank (send/recv)
    tag: Optional[int] = None
    anysrc: bool = False            #: recv was posted with ANY_SOURCE
    anytag: bool = False            #: recv was posted with ANY_TAG
    inter: bool = False             #: p2p across an intercommunicator
    rank: Optional[int] = None      #: caller rank (coll/revoke)
    spawn_count: Optional[int] = None
    spawn_parent: Optional[str] = None  #: comm the spawn was collective over

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.time:.6f}] {self.actor} {self.kind} {self.detail}"


def _parse_p2p(ev: ParsedEvent, tokens: List[str]) -> None:
    ev.comm = tokens[0]
    src, dst = tokens[1].split("->")
    ev.src, ev.dst = int(src), int(dst)
    for tok in tokens[2:]:
        if tok.startswith("tag="):
            ev.tag = int(tok[4:])
        elif tok == "anysrc":
            ev.anysrc = True
        elif tok == "anytag":
            ev.anytag = True
        elif tok == "inter":
            ev.inter = True


def parse_event(index: int, raw) -> ParsedEvent:
    """Parse one :class:`~repro.mpi.tracing.TraceEvent` (best effort)."""
    ev = ParsedEvent(index, raw.time, raw.actor, raw.kind, raw.detail)
    tokens = raw.detail.split()
    try:
        if raw.kind in ("send", "recv") and len(tokens) >= 2:
            _parse_p2p(ev, tokens)
        elif raw.kind == "coll" and len(tokens) >= 3:
            ev.op, ev.comm = tokens[0], tokens[1]
            if tokens[2].startswith("r"):
                ev.rank = int(tokens[2][1:])
        elif raw.kind == "revoke" and len(tokens) >= 1:
            ev.comm = tokens[0]
            if len(tokens) >= 2 and tokens[1].startswith("r"):
                ev.rank = int(tokens[1][1:])
        elif raw.kind == "revoked":
            ev.comm = raw.actor
        elif raw.kind == "spawn" and "for" in tokens:
            ev.spawn_count = int(tokens[0])
            ev.spawn_parent = tokens[tokens.index("for") + 1]
    except (ValueError, IndexError):
        ev.comm = None  # keep the event, but analyzers will skip it
    return ev


def parse_events(trace, *, allow_truncated: bool = False) -> List[ParsedEvent]:
    """Parse a :class:`Tracer` (or plain event sequence) into structured
    events, refusing truncated traces unless ``allow_truncated``."""
    dropped = getattr(trace, "dropped", 0)
    if dropped and not allow_truncated:
        raise TruncatedTraceError(
            f"trace dropped {dropped} event(s) past the recorder bound; "
            "raise Tracer(max_events=...) and re-record")
    events: Sequence = getattr(trace, "events", trace)
    return [parse_event(i, e) for i, e in enumerate(events)]
