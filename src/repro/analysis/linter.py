"""AST + dataflow lint for ULFM/simulation idioms (rules ULF001-ULF015).

The simulator's correctness leans on a handful of conventions that plain
Python happily lets you break: failure exceptions must reach the recovery
protocol, the event loop must stay deterministic, collectives must not be
retried from inside the very handler that caught their failure, and —
since the sweep engine's content-addressed cache landed — sweep tasks
must be pure and shared cached objects must stay frozen.  This linter
walks the AST of every target file and flags violations of those
conventions; the flow-sensitive rules run on the control-flow graphs and
fixpoint engine of :mod:`repro.analysis.dataflow`.  See
``docs/analysis.md`` for the full catalog with violation/fix examples.

========  ================================================================
ULF001    bare/broad ``except`` that can swallow ``ProcFailedError`` /
          ``RevokedError`` without re-raising or inspecting the exception
ULF002    wall-clock time or unseeded randomness in simulated code
          (breaks deterministic replay; use ``ctx.wtime()`` / seeded
          ``random.Random(seed)``)
ULF003    communicator-creating call whose result is discarded (the new
          communicator can never be used or freed)
ULF004    blocking (non-fault-tolerant) collective awaited inside a
          failure handler; only ``agree``/``shrink`` are safe there
ULF005    checkpoint write reachable without a synchronising operation on
          every path (flow-sensitive; partial checkpoints on failure)
ULF006    collective call diverges across rank-dependent branches: some
          ranks never reach it, every participant deadlocks
ULF007    operation on a possibly-revoked communicator (typestate: only
          agree/shrink/free are legal after revoke)
ULF008    use or double free of a freed communicator (typestate)
ULF009    point-to-point tags across the arms of a rank-dependent branch
          can never match (constant propagation)
ULF010    call chain reaches a checkpoint write without synchronising
          first (interprocedural upgrade of ULF005)
ULF011    mutation of a shared cached object (frozen-provider result or
          ``writeable=False`` array): in-place ops, mutator methods,
          subscript/attribute stores, thawing
ULF012    impurity (global writes, file I/O, unseeded RNG, wall clock)
          reachable from a ``# repro: cacheable`` / ``@pure`` entry
          point whose results the sweep cache replays
ULF013    shared cached reference escapes into long-lived state, or a
          view of one is returned, without an owned ``.copy()``
ULF014    unordered-set iteration / id()-derived keys feeding
          aggregation: breaks the bit-identical serial/pool guarantee
ULF015    unpicklable pool-transport payload (lambda, nested function,
          lock/file/Universe in task arguments)
ULF016    cross-rank collective-sequence divergence under failure
          (protocol model checker, :mod:`repro.analysis.model`)
ULF017    unreachable/incomplete repair state: a survivor can wait on a
          phase no live rank will enter (model checker)
ULF018    checkpoint-epoch inconsistency across restore paths (model
          checker)
ULF019    spawn/merge handshake mismatch in the repair protocol (model
          checker)
ULF020    revoke-propagation gap: a post-failure collective is reachable
          before every member observes the revoke (model checker)
========  ================================================================

Rules ULF016-ULF020 run only on functions annotated ``@protocol_model``
or ``# repro: protocol``: the protocol-skeleton extractor lowers the
function (and the shipped recovery pipeline it calls) to protocol IR and
an explicit-state model checker explores every failure placement; see
``repro verify-protocol`` for counterexample timelines.

Suppression: append ``# noqa`` (all rules) or ``# noqa: ULF002`` /
``# noqa: ULF001, ULF004`` to the offending line; a justification may
follow the codes (``# noqa: ULF002 -- replay-safe: host-only path``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["LintViolation", "RULES", "SEVERITY", "lint_file", "lint_paths",
           "default_lint_paths", "format_report"]

RULES: Dict[str, str] = {
    "ULF001": "broad except may swallow ProcFailedError/RevokedError",
    "ULF002": "wall-clock/unseeded randomness breaks deterministic replay",
    "ULF003": "communicator created but discarded (never used or freed)",
    "ULF004": "blocking collective inside a failure handler",
    "ULF005": "checkpoint write without synchronisation on every path",
    "ULF006": "collective diverges across rank-dependent branches",
    "ULF007": "operation on a possibly-revoked communicator",
    "ULF008": "use or double free of a freed communicator",
    "ULF009": "rank-branch point-to-point tags can never match",
    "ULF010": "call chain reaches an unsynchronised checkpoint write",
    "ULF011": "mutation of a shared cached (frozen) object",
    "ULF012": "impure effect reachable from a cacheable entry point",
    "ULF013": "shared cached reference escapes without an owned copy",
    "ULF014": "unordered iteration / id() keys feed aggregated results",
    "ULF015": "unpicklable payload handed to a pool transport",
    # protocol-model rules (repro.analysis.model): findings of the
    # explicit-state checker over extracted recovery skeletons
    "ULF016": "collective sequence diverges across ranks under failure",
    "ULF017": "survivor can wait on a repair phase no live rank enters",
    "ULF018": "checkpoint epochs inconsistent across restore paths",
    "ULF019": "spawn/merge handshake mismatch in the repair protocol",
    "ULF020": "post-failure collective reachable before revoke observed",
}

#: CI severity per rule.  ``error`` rules are hard correctness contracts;
#: ``warning`` rules rest on heuristics (rank-taint, module-local call
#: resolution) and may need a justified ``# noqa`` in unusual shapes.
#: The exit code treats both as violations.
SEVERITY: Dict[str, str] = {
    "ULF000": "error", "ULF001": "error", "ULF002": "error",
    "ULF003": "error", "ULF004": "error", "ULF005": "error",
    "ULF006": "warning", "ULF007": "error", "ULF008": "error",
    "ULF009": "warning", "ULF010": "error",
    "ULF011": "error", "ULF012": "error", "ULF013": "warning",
    "ULF014": "warning", "ULF015": "error",
    # model-checker findings come with a concrete counterexample
    # interleaving, so they are never heuristic
    "ULF016": "error", "ULF017": "error", "ULF018": "error",
    "ULF019": "error", "ULF020": "error",
}

#: exception names whose handlers count as *failure handlers* (ULF004)
_FAILURE_EXCEPTS = {"MPIError", "ProcFailedError", "RevokedError",
                    "CommInvalidError", "TaskFailedError"}
#: collectives that block on every member and die with it (RvKind.NORMAL)
_BLOCKING_COLLECTIVES = {"barrier", "bcast", "reduce", "allreduce",
                         "gather", "allgather", "scatter", "alltoall",
                         "scan", "exscan", "gatherv", "scatterv",
                         "reduce_scatter_block",
                         "merge", "split", "dup", "spawn_multiple"}
#: fault-tolerant operations, fine inside failure handlers
_SURVIVOR_CALLS = {"agree", "shrink", "revoke", "failure_ack",
                   "failure_get_acked"}
#: methods returning a fresh communicator (ULF003)
_COMM_CREATORS = {"dup", "split", "shrink", "merge"}
#: wall-clock attributes of the ``time`` module (ULF002)
_WALLCLOCK_TIME = {"time", "time_ns", "monotonic", "monotonic_ns",
                   "perf_counter", "perf_counter_ns", "sleep"}
_WALLCLOCK_DATETIME = {"now", "utcnow", "today"}
#: module-level functions of ``random`` that use the global RNG (ULF002)
_GLOBAL_RANDOM = {"random", "randint", "randrange", "choice", "choices",
                  "shuffle", "sample", "uniform", "gauss", "betavariate",
                  "expovariate", "normalvariate", "getrandbits", "seed"}

#: the directive itself; code parsing happens token-wise afterwards so
#: trailing prose ("# noqa: ULF002 justified because ...") cannot leak
#: into the code list (the old ``[A-Z0-9, ]+`` + IGNORECASE regex ate it)
_NOQA_RE = re.compile(r"#\s*noqa\b(?P<rest>:)?", re.IGNORECASE)
_CODE_TOKEN_RE = re.compile(r"[A-Za-z]+[0-9]+$")


def parse_noqa(line: str) -> Optional[Set[str]]:
    """Parse a ``# noqa`` directive on a source line.

    Returns ``None`` when the line has no directive, an empty set for a
    blanket ``# noqa`` (suppress every rule), or the set of upper-cased
    rule codes for ``# noqa: ULF001, ULF004``.  Codes may be separated
    by commas and/or spaces; anything after the first non-code token is
    treated as justification text and ignored, so
    ``# noqa: ULF002 wall clock ok here`` suppresses exactly ULF002.
    A ``noqa:`` with no parseable codes degrades to a blanket noqa.
    """
    m = _NOQA_RE.search(line)
    if not m:
        return None
    if not m.group("rest"):
        return set()
    codes: Set[str] = set()
    for token in re.split(r"[,\s]+", line[m.end():].strip()):
        if not token:
            continue
        if _CODE_TOKEN_RE.match(token):
            codes.add(token.upper())
        else:
            break  # justification prose starts here
    return codes


@dataclass
class LintViolation:
    rule: str
    path: str
    line: int
    col: int
    message: str
    #: True when an in-source ``# noqa`` covers this finding.  Suppressed
    #: findings are normally dropped; ``lint_file(keep_suppressed=True)``
    #: keeps them marked so SARIF can emit them with a ``suppressions``
    #: object (the audit trail CI reviewers act on) instead of silently.
    suppressed: bool = False

    @property
    def severity(self) -> str:
        return SEVERITY.get(self.rule, "error")

    def to_dict(self) -> dict:
        d = {"rule": self.rule, "severity": self.severity,
             "path": self.path, "line": self.line, "col": self.col,
             "message": self.message}
        if self.suppressed:
            d["suppressed"] = True
        return d

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _call_attr(node: ast.AST) -> Optional[str]:
    """Attribute name of a ``x.y(...)`` call, else None."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _call_name(node: ast.AST) -> Optional[str]:
    """Either the attribute (``x.y(...)``) or plain (``y(...)``) name."""
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        if isinstance(node.func, ast.Name):
            return node.func.id
    return None


def _except_names(handler: ast.ExceptHandler) -> Set[str]:
    """Leaf names of the handler's exception type(s); empty for bare."""
    t = handler.type
    if t is None:
        return set()
    nodes = t.elts if isinstance(t, ast.Tuple) else [t]
    names = set()
    for n in nodes:
        if isinstance(n, ast.Name):
            names.add(n.id)
        elif isinstance(n, ast.Attribute):
            names.add(n.attr)
    return names


class _FileLinter(ast.NodeVisitor):
    """Syntactic rules (ULF001-ULF004). ``noqa`` suppression happens
    centrally in :func:`lint_file`, over syntactic and dataflow
    violations alike."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.violations: List[LintViolation] = []
        # import tracking for ULF002
        self.module_aliases: Dict[str, str] = {}     # alias -> module
        self.from_imports: Dict[str, Tuple[str, str]] = {}  # alias -> (mod, name)

    # -- plumbing --------------------------------------------------------
    def flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.violations.append(LintViolation(
            rule, self.path, getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1, message))

    # -- imports (ULF002 support) ---------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            for alias in node.names:
                self.from_imports[alias.asname or alias.name] = \
                    (node.module, alias.name)
        self.generic_visit(node)

    # -- ULF001: broad excepts ------------------------------------------
    def visit_Try(self, node: ast.Try) -> None:
        for handler in node.handlers:
            self._check_broad_except(handler)
            self._check_collective_in_handler(handler)
        self.generic_visit(node)

    def _check_broad_except(self, handler: ast.ExceptHandler) -> None:
        names = _except_names(handler)
        bare = handler.type is None
        broad = bool(names & {"Exception", "BaseException"})
        if not (bare or broad):
            return
        body_raises = any(isinstance(n, ast.Raise)
                          for stmt in handler.body for n in ast.walk(stmt))
        uses_bound = handler.name is not None and any(
            isinstance(n, ast.Name) and n.id == handler.name
            for stmt in handler.body for n in ast.walk(stmt))
        if body_raises or uses_bound:
            return
        what = "bare except" if bare else f"except {'/'.join(sorted(names))}"
        self.flag("ULF001", handler,
                  f"{what} silently swallows ProcFailedError/RevokedError; "
                  "catch the specific MPI error, re-raise, or inspect the "
                  "exception")

    # -- ULF004: blocking collective inside failure handler -------------
    def _check_collective_in_handler(self, handler: ast.ExceptHandler) -> None:
        names = _except_names(handler)
        is_failure = handler.type is None or bool(names & _FAILURE_EXCEPTS)
        if not is_failure:
            return
        for await_node in self._unguarded_awaits(handler.body):
            attr = _call_attr(await_node.value)
            if attr in _BLOCKING_COLLECTIVES:
                self.flag(
                    "ULF004", await_node,
                    f"blocking collective '{attr}' awaited inside a "
                    "failure handler: if the failure also broke this "
                    "communicator the handler deadlocks; use agree/shrink "
                    "or revoke-then-repair")

    def _unguarded_awaits(self, body: Sequence[ast.stmt]):
        """Await nodes in ``body`` not wrapped in their own MPI-error try."""
        for stmt in body:
            if isinstance(stmt, ast.Try):
                guarded = any(h.type is None
                              or _except_names(h) & _FAILURE_EXCEPTS
                              for h in stmt.handlers)
                if not guarded:
                    yield from self._unguarded_awaits(stmt.body)
                for h in stmt.handlers:
                    yield from self._unguarded_awaits(h.body)
                yield from self._unguarded_awaits(stmt.orelse)
                yield from self._unguarded_awaits(stmt.finalbody)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # a nested def is a new scope, not handler code
            else:
                for n in ast.walk(stmt):
                    if isinstance(n, ast.Await):
                        yield n

    # -- ULF002: wall clock / unseeded randomness ------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_determinism(node)
        self.generic_visit(node)

    def _resolve_call(self, node: ast.Call) -> Optional[Tuple[str, str]]:
        """(module, function) of a call through tracked imports, or None."""
        f = node.func
        if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name):
            mod = self.module_aliases.get(f.value.id)
            if mod is not None:
                return mod, f.attr
            # datetime.datetime.now: `datetime` name bound by from-import
            origin = self.from_imports.get(f.value.id)
            if origin is not None:
                return f"{origin[0]}.{origin[1]}", f.attr
        elif isinstance(f, ast.Attribute) and \
                isinstance(f.value, ast.Attribute) and \
                isinstance(f.value.value, ast.Name):
            mod = self.module_aliases.get(f.value.value.id)
            if mod is not None:
                return f"{mod}.{f.value.attr}", f.attr
        elif isinstance(f, ast.Name):
            origin = self.from_imports.get(f.id)
            if origin is not None:
                return origin
        return None

    def _check_determinism(self, node: ast.Call) -> None:
        resolved = self._resolve_call(node)
        if resolved is None:
            return
        mod, fn = resolved
        if mod == "time" and fn in _WALLCLOCK_TIME:
            self.flag("ULF002", node,
                      f"time.{fn}() reads the wall clock; simulated code "
                      "must use ctx.wtime() / engine.now (virtual time)")
        elif mod in ("datetime", "datetime.datetime", "datetime.date") \
                and fn in _WALLCLOCK_DATETIME:
            self.flag("ULF002", node,
                      f"datetime {fn}() reads the wall clock; derive "
                      "timestamps from virtual time instead")
        elif mod == "random" and fn in _GLOBAL_RANDOM:
            self.flag("ULF002", node,
                      f"random.{fn}() uses the global unseeded RNG; create "
                      "a random.Random(seed) owned by the caller")
        elif mod == "random" and fn == "Random" and not node.args \
                and not node.keywords:
            self.flag("ULF002", node,
                      "random.Random() without a seed is nondeterministic; "
                      "pass an explicit seed")

    # -- ULF003: discarded communicator ----------------------------------
    def visit_Expr(self, node: ast.Expr) -> None:
        val = node.value
        if isinstance(val, ast.Await):
            attr = _call_attr(val.value)
            if attr in _COMM_CREATORS:
                self.flag("ULF003", node,
                          f"result of '{attr}' discarded: the new "
                          "communicator can never be used or freed (leaks "
                          "its rendezvous/message state)")
        self.generic_visit(node)

def _suppressed(v: LintViolation, lines: Sequence[str]) -> bool:
    if not (1 <= v.line <= len(lines)):
        return False
    codes = parse_noqa(lines[v.line - 1])
    if codes is None:
        return False
    return not codes or v.rule in codes


def lint_file(path, *, source: Optional[str] = None,
              keep_suppressed: bool = False) -> List[LintViolation]:
    """Lint one Python file; syntax errors become a single pseudo-violation
    (rule ``ULF000``) rather than an exception.

    Runs the syntactic visitor (ULF001-ULF004) and the dataflow/model
    analyses (ULF005-ULF020), then applies ``noqa`` suppression to the
    combined result.  ``keep_suppressed=True`` returns suppressed findings
    too, marked ``suppressed=True``, instead of dropping them — the SARIF
    emitter uses this to preserve the suppression audit trail."""
    from .dataflow.driver import analyze_module  # lazy: driver imports us

    p = str(path)
    if source is None:
        source = Path(path).read_text()
    try:
        tree = ast.parse(source, filename=p)
    except SyntaxError as exc:
        return [LintViolation("ULF000", p, exc.lineno or 1,
                              (exc.offset or 0) + 1,
                              f"syntax error: {exc.msg}")]
    linter = _FileLinter(p, source)
    linter.visit(tree)
    violations = linter.violations + analyze_module(tree, p, source=source)
    lines = source.splitlines()
    if keep_suppressed:
        violations = [replace(v, suppressed=True) if _suppressed(v, lines)
                      else v for v in violations]
    else:
        violations = [v for v in violations if not _suppressed(v, lines)]
    return sorted(violations, key=lambda v: (v.path, v.line, v.col, v.rule))


def _iter_py_files(paths: Sequence) -> List[Path]:
    files: List[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    return files


def lint_paths(paths: Sequence, *,
               keep_suppressed: bool = False) -> List[LintViolation]:
    """Lint every ``.py`` file under the given files/directories."""
    out: List[LintViolation] = []
    for f in _iter_py_files(paths):
        out.extend(lint_file(f, keep_suppressed=keep_suppressed))
    return out


def default_lint_paths() -> List[Path]:
    """The repository's own lintable code: the ``repro`` package plus the
    ``examples/`` directory when running from a checkout."""
    pkg = Path(__file__).resolve().parent.parent  # src/repro
    targets = [pkg]
    examples = pkg.parent.parent / "examples"
    if examples.is_dir():
        targets.append(examples)
    return targets


def format_report(violations: List[LintViolation],
                  n_files: Optional[int] = None) -> str:
    if not violations:
        suffix = f" ({n_files} file(s))" if n_files is not None else ""
        return f"lint: clean{suffix}"
    lines = [str(v) for v in violations]
    lines.append(f"lint: {len(violations)} violation(s)")
    return "\n".join(lines)
