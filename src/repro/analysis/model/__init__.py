"""Protocol-skeleton extraction and explicit-state model checking.

The third analysis layer (see docs/analysis.md "Three analysis
layers"): per-rank communication skeletons are extracted from annotated
entry points into a small protocol IR (:mod:`.ir`, :mod:`.extract`),
the shipped ``ft.reconstruct`` recovery pipeline is inlined, and an
explicit-state checker (:mod:`.checker`) explores the cross-rank
product state space under protocol-level failure injection, proving
deadlock-freedom or reporting a per-rank counterexample timeline.
Rules ULF016-ULF020 (:mod:`.rules`) surface the findings through the
ordinary lint/SARIF pipeline; :mod:`.modes` holds the reference
programs for the CR/RC/AC respawn configurations and the SHRINK and NC
repair modes that ``python -m repro verify-protocol`` certifies.
"""

from .checker import (CheckResult, ModelError, ModelViolation,
                      ProtocolModel, check_model)
from .extract import (ExtractError, build_module_env, extract_function,
                      find_protocol_models, reconstruct_registry)
from .ir import Asm, Op, Skeleton
from .rules import (MODEL_RULES, ModeReport, SourceModel,
                    check_protocol_models, iter_source_models, verify_modes)

__all__ = [
    "Asm", "CheckResult", "ExtractError", "MODEL_RULES", "ModeReport",
    "ModelError", "ModelViolation", "Op", "ProtocolModel", "Skeleton",
    "SourceModel", "build_module_env", "check_model",
    "check_protocol_models", "extract_function", "find_protocol_models",
    "iter_source_models", "reconstruct_registry", "verify_modes",
]
