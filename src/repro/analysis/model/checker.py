"""Explicit-state model checker for extracted recovery protocols.

The checker runs one :class:`~repro.analysis.model.ir.Skeleton` per rank
(plus an optional child skeleton for re-spawned processes) and explores
the cross-rank product state space with protocol-level failure
injection.  It mirrors the simulator's rendezvous semantics exactly:

* ordinary collectives share one ordered rendezvous stream per
  communicator (channel ``"coll"`` — MPI's same-order rule);
* ``agree`` and ``shrink`` are fault-tolerant: they run on their own
  channels, complete over the *survivors*, and are legal on revoked
  communicators;
* on a bridge intercommunicator, ``agree`` spans only the caller's local
  group (channel ``agree-a`` / ``agree-b``) while ``merge`` spans both
  groups — the asymmetry that makes the paper's parents-merge-then-agree
  / children-agree-then-merge call sequence deadlock-free, and exactly
  what a naive all-member model would mis-flag.

Failure injection and partial-order reduction
---------------------------------------------

Deterministic local execution (assignments, branches on concrete
values) is folded into each step; visible protocol ops are scheduled
canonically (lowest process id first).  This is sound for the
properties checked here because the explored operations commute:
rendezvous arrivals complete identically in any arrival order, buffered
sends and their matching receives converge, and a revoke races with an
arrival to the same raised error.  The only true branching points are
(a) branches on values the abstraction lost (both outcomes explored)
and (b) failure injection.

Kills follow the paper's failure model: processes die *during solve
segments* (``plan_failures`` arms failures at a fraction of solve time),
so a victim is eligible while it executes or waits in a ``halo`` op —
the IR's abstraction of one stepping segment.  Each eligible victim can
die immediately before its arrival or at any point while it waits, up
to the configured failure budget.  Checkpoint-store accesses are
scheduled canonically but not permuted: every shipped protocol (and any
sane one) separates write and restore phases with collectives, and the
ULF018 rule compares restores *between* writes, so the missing
permutations cannot change any verdict.

Any state in which no process can run and no rendezvous can ever
complete is a hang; it is classified as ULF019 (stuck in the
spawn/merge handshake), ULF016 (a live rank already ran past the
collective others wait on) or ULF017 (all other cross-waits), with the
counterexample rendered as a per-rank step timeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .ir import (FT_OPS, OPAQUE, Branch, FailStop, Jump, Op, Return,
                 SetVar, Skeleton, TryPop, TryPush)

__all__ = ["ProtocolModel", "CheckResult", "ModelViolation", "ModelError",
           "check_model"]

#: hard cap on explored states — hitting it means the abstraction blew up
STATE_LIMIT = 250_000

_REVOKED = "revoked"
_PROC_FAILED = "proc_failed"


class ModelError(RuntimeError):
    """The model itself is malformed (not a protocol finding)."""


class ModelViolation:
    """One protocol finding with its counterexample."""

    def __init__(self, rule: str, lineno: int, message: str,
                 timeline: str = ""):
        self.rule = rule
        self.lineno = lineno
        self.message = message
        self.timeline = timeline

    def __repr__(self) -> str:
        return f"ModelViolation({self.rule}, line {self.lineno})"


class ProtocolModel:
    """What to check: a main skeleton per rank plus an optional child
    skeleton for processes created by ``spawn``."""

    def __init__(self, main: Skeleton, ranks: int,
                 child: Optional[Skeleton] = None, failures: int = 1):
        if ranks < 1:
            raise ModelError("a protocol model needs at least one rank")
        if failures < 0:
            raise ModelError("failure budget must be >= 0")
        self.main = main
        self.child = child
        self.ranks = ranks
        self.failures = failures


class CheckResult:
    def __init__(self, model: ProtocolModel):
        self.model = model
        self.violations: List[ModelViolation] = []
        self.states = 0
        self.terminals = 0
        self.kills_explored = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        name = self.model.main.name
        if self.ok:
            return (f"{name}: deadlock-free — {self.states} states, "
                    f"{self.terminals} terminal(s), "
                    f"{self.kills_explored} failure placement(s), "
                    f"{self.model.ranks} rank(s), "
                    f"budget {self.model.failures}")
        rules = ", ".join(sorted({v.rule for v in self.violations}))
        return (f"{name}: {len(self.violations)} violation(s) [{rules}] "
                f"in {self.states} states")


# --------------------------------------------------------------------------
# state representation


class _Comm:
    """Immutable communicator descriptor."""

    __slots__ = ("cid", "kind", "members", "side_a", "side_b", "revoked")

    def __init__(self, cid, kind, members, side_a=(), side_b=(),
                 revoked=False):
        self.cid = cid
        self.kind = kind                # "intra" | "inter"
        self.members = members          # pid tuple (rank -> pid)
        self.side_a = side_a            # inter only: spawning side pids
        self.side_b = side_b            # inter only: child side pids
        self.revoked = revoked

    def with_revoked(self) -> "_Comm":
        return _Comm(self.cid, self.kind, self.members, self.side_a,
                     self.side_b, True)

    def key(self):
        return (self.cid, self.kind, self.members, self.side_a,
                self.side_b, self.revoked)


class _Proc:
    __slots__ = ("pid", "prog", "pc", "env", "trystack", "status",
                 "blocked", "slot", "spawned")

    def __init__(self, pid, prog, slot, spawned=False):
        self.pid = pid
        self.prog = prog                # "main" | "child"
        self.pc = 0
        self.env: Dict[str, object] = {}
        self.trystack: List[int] = []
        self.status = "run"             # run|blocked|done|dead
        self.blocked = None             # arrival tuple, see _arrive
        self.slot = slot                # world rank (original numbering)
        self.spawned = spawned

    @property
    def alive(self) -> bool:
        return self.status != "dead"

    def label(self) -> str:
        return f"r{self.slot}'" if self.spawned else f"r{self.slot}"

    def clone(self) -> "_Proc":
        p = _Proc(self.pid, self.prog, self.slot, self.spawned)
        p.pc = self.pc
        p.env = dict(self.env)
        p.trystack = list(self.trystack)
        p.status = self.status
        p.blocked = self.blocked
        return p

    def key(self):
        return (self.pid, self.prog, self.pc, self.status, self.slot,
                self.spawned, self.blocked, tuple(self.trystack),
                tuple(sorted((k, _vkey(v)) for k, v in self.env.items())))


def _vkey(v):
    # values are always hashable (ints, strs, None, OPAQUE, tuples of
    # those, ("c", cid) refs) so they key as themselves
    return v


class _State:
    __slots__ = ("procs", "comms", "msgs", "ckpt", "ckpt_version",
                 "restores", "dead_slots", "budget", "seq", "next_cid",
                 "next_pid")

    def clone(self) -> "_State":
        s = _State()
        s.procs = [p.clone() for p in self.procs]
        s.comms = dict(self.comms)
        s.msgs = list(self.msgs)
        s.ckpt = dict(self.ckpt)
        s.ckpt_version = self.ckpt_version
        s.restores = list(self.restores)
        s.dead_slots = self.dead_slots
        s.budget = self.budget
        s.seq = self.seq
        s.next_cid = self.next_cid
        s.next_pid = self.next_pid
        return s

    def key(self):
        return (tuple(p.key() for p in self.procs),
                tuple(c.key() for _, c in sorted(self.comms.items())),
                tuple(sorted(self.msgs, key=lambda m: m[5])),
                tuple(sorted(self.ckpt.items())),
                self.ckpt_version,
                tuple(self.restores),
                self.dead_slots, self.budget)


def _initial_state(model: ProtocolModel) -> _State:
    s = _State()
    s.procs = [_Proc(i, "main", i) for i in range(model.ranks)]
    s.comms = {0: _Comm(0, "intra", tuple(range(model.ranks)))}
    s.msgs = []
    s.ckpt = {}
    s.ckpt_version = 0
    s.restores = []
    s.dead_slots = ()
    s.budget = model.failures
    s.seq = 0
    s.next_cid = 1
    s.next_pid = model.ranks
    for p in s.procs:
        p.env["__world__"] = ("c", 0)
        p.env["__parent__"] = None
    return s


# --------------------------------------------------------------------------
# exceptions raised *inside the model* (control flow, not Python errors)


class _MpiRaise(Exception):
    def __init__(self, kind: str, lineno: int):
        super().__init__(kind)
        self.kind = kind
        self.lineno = lineno


class _Flag(Exception):
    """A protocol violation was detected while building a successor."""

    def __init__(self, violations: List[Tuple[str, int, str]]):
        super().__init__("protocol violation")
        self.violations = violations


# --------------------------------------------------------------------------
# checker


class _Checker:
    def __init__(self, model: ProtocolModel):
        self.model = model
        self.progs = {"main": model.main}
        if model.child is not None:
            self.progs["child"] = model.child
        self.result = CheckResult(model)
        self._seen_violations = set()
        # parent pointers for counterexample reconstruction:
        # state key -> (parent key | None, action label)
        self._parents: Dict[object, Tuple[object, str]] = {}

    # -- expression evaluation --------------------------------------------

    def _eval(self, e, proc: _Proc, st: _State):
        if not isinstance(e, tuple) or not e:
            raise ModelError(f"bad expression {e!r}")
        tag = e[0]
        if tag == "const":
            return e[1]
        if tag == "var":
            try:
                return proc.env[e[1]]
            except KeyError:
                raise ModelError(
                    f"undefined variable {e[1]!r} in {proc.prog}")
        if tag == "opaque":
            return OPAQUE
        if tag == "tuple":
            vals = [self._eval(x, proc, st) for x in e[1:]]
            return OPAQUE if any(v is OPAQUE for v in vals) else tuple(vals)
        if tag == "known_failed":
            if proc.spawned:
                return (proc.slot,)
            return tuple(sorted(st.dead_slots))
        if tag == "world_comm":
            return ("c", 0)
        if tag in ("bin", "cmp"):
            op = e[1]
            a = self._eval(e[2], proc, st)
            b = self._eval(e[3], proc, st)
            if a is OPAQUE or b is OPAQUE:
                return OPAQUE
            try:
                if tag == "bin":
                    return {"+": lambda: a + b, "-": lambda: a - b,
                            "*": lambda: a * b, "//": lambda: a // b,
                            "%": lambda: a % b}[op]()
                return {"==": lambda: a == b, "!=": lambda: a != b,
                        "<": lambda: a < b, "<=": lambda: a <= b,
                        ">": lambda: a > b, ">=": lambda: a >= b}[op]()
            except TypeError:
                return OPAQUE
        if tag in ("and", "or"):
            a = self._eval(e[1], proc, st)
            if a is OPAQUE:
                return OPAQUE
            take_second = bool(a) if tag == "and" else not a
            return self._eval(e[2], proc, st) if take_second else a
        if tag == "select_key":
            vals = [self._eval(x, proc, st) for x in e[1:5]]
            if any(v is OPAQUE for v in vals):
                return OPAQUE
            from ...ft.reconstruct import select_rank_key
            rank, size, failed, total = vals
            return select_rank_key(rank, size, list(failed), total)
        a = self._eval(e[1], proc, st)
        if tag == "not":
            return OPAQUE if a is OPAQUE else (not a)
        if tag == "len":
            return OPAQUE if a is OPAQUE else len(a)
        if tag == "rank":
            return self._rank_of(proc, a, st)
        if tag == "size":
            c = self._comm(a, st)
            return len(c.members)
        if tag == "failed_pair":
            c = self._comm(a, st)
            failed = tuple(r for r, pid in enumerate(c.members)
                           if not st.procs[pid].alive)
            return (failed, len(failed))
        if tag == "failed_count":
            c = self._comm(a, st)
            return sum(1 for pid in c.members if not st.procs[pid].alive)
        if tag == "union_flat":
            if a is OPAQUE:
                return OPAQUE
            out = set()
            for part in a:
                if part is OPAQUE:
                    return OPAQUE
                out.update(part if isinstance(part, tuple) else (part,))
            return tuple(sorted(out))
        b = self._eval(e[2], proc, st) if len(e) > 2 else None
        if tag == "map_div":
            if a is OPAQUE or b is OPAQUE:
                return OPAQUE
            return tuple(sorted({v // b for v in a}))
        if tag == "index":
            if a is OPAQUE or b is OPAQUE:
                return OPAQUE
            return a[b]
        if tag == "in":
            if a is OPAQUE or b is OPAQUE:
                return OPAQUE
            return a in b
        if tag in ("is", "isnot"):
            if a is OPAQUE or b is OPAQUE:
                return OPAQUE
            same = a == b
            return same if tag == "is" else not same
        raise ModelError(f"unknown expression tag {tag!r}")

    def _comm(self, v, st: _State) -> _Comm:
        if not (isinstance(v, tuple) and len(v) == 2 and v[0] == "c"):
            raise ModelError(f"not a communicator value: {v!r}")
        return st.comms[v[1]]

    def _rank_of(self, proc: _Proc, v, st: _State) -> int:
        c = self._comm(v, st)
        if c.kind == "inter":
            side = c.side_a if proc.pid in c.side_a else c.side_b
            return side.index(proc.pid)
        return c.members.index(proc.pid)

    # -- violations --------------------------------------------------------

    def _flag(self, rule: str, lineno: int, message: str,
              timeline: str) -> None:
        key = (rule, lineno)
        if key in self._seen_violations:
            return
        self._seen_violations.add(key)
        self.result.violations.append(
            ModelViolation(rule, lineno, message, timeline))

    # -- raising inside the model -----------------------------------------

    def _raise(self, proc: _Proc, kind: str, lineno: int) -> None:
        proc.blocked = None
        if proc.trystack:
            proc.pc = proc.trystack.pop()
            proc.status = "run"
            return
        # unhandled: the failure escapes the protocol
        if kind == _REVOKED:
            raise _Flag([("ULF020", lineno,
                          "a collective on a revoked communicator is "
                          "reachable with no MPIError handler: the revoke "
                          "is not observed by every member before the "
                          "next collective")])
        raise _Flag([("ULF017", lineno,
                      "a process-failure error escapes every failure "
                      "handler at this operation: the survivor enters a "
                      "state the protocol cannot repair")])

    # -- rendezvous --------------------------------------------------------

    @staticmethod
    def _channel(kind: str, c: _Comm, proc: _Proc) -> str:
        if kind == "agree":
            if c.kind == "inter":
                return ("agree-a" if proc.pid in c.side_a else "agree-b")
            return "agree"
        if kind == "shrink":
            return "shrink"
        return "coll"

    def _rendezvous_members(self, c: _Comm, channel: str) -> Tuple[int, ...]:
        if c.kind == "inter":
            if channel == "agree-a":
                return c.side_a
            if channel == "agree-b":
                return c.side_b
            return c.side_a + c.side_b
        return c.members

    def _arrive(self, proc: _Proc, op: Op, cid: int, channel: str,
                sig, vals: dict, st: _State) -> None:
        """Register ``proc`` at a rendezvous and complete it if ready."""
        for p in st.procs:
            if (p.alive and p.blocked and p.blocked[0] == "coll"
                    and p.blocked[1] == cid and p.blocked[2] == channel
                    and p.blocked[4] != sig):
                raise _Flag([
                    ("ULF016", p.blocked[6],
                     f"collective sequence diverges under failure: this "
                     f"rank posts {p.blocked[3]} while another live rank "
                     f"posts {op.kind} on the same communicator stream"),
                    ("ULF016", op.lineno,
                     f"collective sequence diverges under failure: this "
                     f"rank posts {op.kind} while another live rank "
                     f"posts {p.blocked[3]} on the same communicator "
                     f"stream"),
                ])
        proc.status = "blocked"
        proc.blocked = ("coll", cid, channel, op.kind, sig,
                        tuple(sorted(vals.items())), op.lineno, op.out)
        self._try_complete(cid, channel, st)

    def _try_complete(self, cid: int, channel: str, st: _State) -> None:
        c = st.comms[cid]
        members = self._rendezvous_members(c, channel)
        arrived = [st.procs[pid] for pid in members
                   if st.procs[pid].alive and st.procs[pid].blocked
                   and st.procs[pid].blocked[0] == "coll"
                   and st.procs[pid].blocked[1] == cid
                   and st.procs[pid].blocked[2] == channel]
        if not arrived:
            return
        kind = arrived[0].blocked[3]
        if kind in FT_OPS:
            required = [pid for pid in members if st.procs[pid].alive]
        else:
            required = list(members)
        if {p.pid for p in arrived} != set(required):
            return
        self._complete(c, channel, kind, arrived, st)

    def _complete(self, c: _Comm, channel: str, kind: str,
                  arrived: List[_Proc], st: _State) -> None:
        def val(p, name):
            return dict(p.blocked[5]).get(name)

        def deliver(p, result):
            out = p.blocked[7]
            p.blocked = None
            p.status = "run"
            if out:
                p.env[out] = result

        order = {pid: i for i, pid in enumerate(
            self._rendezvous_members(c, channel))}
        arrived = sorted(arrived, key=lambda p: order[p.pid])

        if kind in ("barrier", "halo", "alltoall"):
            for p in arrived:
                deliver(p, None)
        elif kind in ("bcast", "scatter"):
            root = val(arrived[0], "root")
            root_proc = st.procs[c.members[root]]
            payload = val(root_proc, "value")
            for p in arrived:
                if kind == "bcast":
                    deliver(p, payload)
                else:
                    i = order[p.pid]
                    deliver(p, OPAQUE if payload is OPAQUE else payload[i])
        elif kind in ("reduce", "allreduce"):
            red = self._reduce(val(arrived[0], "op"),
                               [val(p, "value") for p in arrived])
            root = val(arrived[0], "root") if kind == "reduce" else None
            for p in arrived:
                if kind == "allreduce" or order[p.pid] == root:
                    deliver(p, red)
                else:
                    deliver(p, None)
        elif kind in ("gather", "allgather"):
            gathered = tuple(val(p, "value") for p in arrived)
            root = val(arrived[0], "root") if kind == "gather" else None
            for p in arrived:
                if kind == "allgather" or order[p.pid] == root:
                    deliver(p, gathered)
                else:
                    deliver(p, None)
        elif kind == "agree":
            flags = [val(p, "value") for p in arrived]
            out = flags[0]
            for f in flags[1:]:
                out = OPAQUE if (out is OPAQUE or f is OPAQUE) else out & f
            for p in arrived:
                deliver(p, out)
        elif kind == "shrink":
            new = _Comm(st.next_cid, "intra",
                        tuple(pid for pid in c.members
                              if st.procs[pid].alive))
            st.comms[new.cid] = new
            st.next_cid += 1
            for p in arrived:
                deliver(p, ("c", new.cid))
        elif kind == "split":
            self._complete_split(c, arrived, st, deliver)
        elif kind == "merge":
            self._complete_merge(c, arrived, st, deliver, val)
        elif kind == "spawn":
            self._complete_spawn(c, arrived, st, deliver, val)
        else:
            raise ModelError(f"no completion rule for {kind!r}")

    def _complete_split(self, c, arrived, st, deliver):
        by_color: Dict[object, list] = {}
        for p in arrived:
            vals = dict(p.blocked[5])
            color, key = vals.get("color"), vals.get("key")
            if color is OPAQUE or key is OPAQUE:
                raise ModelError("split with opaque color/key")
            if color is None:
                continue
            by_color.setdefault(color, []).append(
                (key, c.members.index(p.pid), p))
        out: Dict[int, tuple] = {}
        for color in sorted(by_color):
            group = sorted(by_color[color], key=lambda t: (t[0], t[1]))
            new = _Comm(st.next_cid, "intra",
                        tuple(t[2].pid for t in group))
            st.comms[new.cid] = new
            st.next_cid += 1
            for t in group:
                out[t[2].pid] = ("c", new.cid)
        for p in arrived:
            deliver(p, out.get(p.pid))

    def _complete_merge(self, c, arrived, st, deliver, val):
        if c.kind != "inter":
            raise ModelError("merge on an intracommunicator")
        a_flags = {val(p, "high") for p in arrived if p.pid in c.side_a}
        b_flags = {val(p, "high") for p in arrived if p.pid in c.side_b}
        if len(a_flags) > 1 or len(b_flags) > 1 or a_flags == b_flags:
            raise _Flag([("ULF019", p.blocked[6],
                          "inconsistent intercommunicator merge: the two "
                          "groups do not split cleanly into one low and "
                          "one high side, so the merged rank order is "
                          "undefined")
                         for p in arrived])
        low_first = c.side_a if a_flags == {False} else c.side_b
        high_last = c.side_b if low_first is c.side_a else c.side_a
        new = _Comm(st.next_cid, "intra", low_first + high_last)
        st.comms[new.cid] = new
        st.next_cid += 1
        for p in arrived:
            deliver(p, ("c", new.cid))

    def _complete_spawn(self, c, arrived, st, deliver, val):
        counts = {val(p, "count") for p in arrived}
        if len(counts) != 1:
            shown = sorted(str(v) for v in counts)
            raise _Flag([("ULF019", p.blocked[6],
                          "spawn handshake mismatch: ranks request "
                          f"different child counts {shown}")
                         for p in arrived])
        count = counts.pop()
        if count is OPAQUE or not isinstance(count, int) or count < 1:
            raise ModelError(f"spawn with untracked count {count!r}")
        if "child" not in self.progs:
            raise ModelError(
                f"{self.model.main.name} spawns but the model declares "
                f"no child program (child=... annotation)")
        taken = {p.slot for p in st.procs if p.alive and p.spawned}
        vacant = [s for s in sorted(st.dead_slots) if s not in taken]
        vacant += [s for s in sorted(st.dead_slots) if s in taken]
        children = []
        for i in range(count):
            child = _Proc(st.next_pid, "child", vacant[i] if i < len(vacant)
                          else -1, spawned=True)
            st.next_pid += 1
            children.append(child)
            st.procs.append(child)
        bridge = _Comm(st.next_cid, "inter",
                       tuple(p.pid for p in arrived) +
                       tuple(ch.pid for ch in children),
                       side_a=tuple(p.pid for p in arrived),
                       side_b=tuple(ch.pid for ch in children))
        st.comms[bridge.cid] = bridge
        st.next_cid += 1
        for ch in children:
            ch.env["__parent__"] = ("c", bridge.cid)
        for p in arrived:
            deliver(p, ("c", bridge.cid))

    @staticmethod
    def _reduce(op, values):
        if any(v is OPAQUE for v in values):
            return OPAQUE
        if op in (None, "max"):
            return max(values)
        if op == "min":
            return min(values)
        if op == "sum":
            return sum(values)
        if op == "and":
            out = values[0]
            for v in values[1:]:
                out &= v
            return out
        return OPAQUE

    # -- p2p ---------------------------------------------------------------

    def _do_send(self, proc: _Proc, op: Op, st: _State) -> None:
        c = self._comm(self._eval(op.comm, proc, st), st)
        if c.revoked:
            self._raise(proc, _REVOKED, op.lineno)
            return
        dest = self._eval(op.args["dest"], proc, st)
        tag = self._eval(op.args.get("tag", ("const", 0)), proc, st)
        payload = self._eval(op.args.get("value", ("const", None)),
                             proc, st)
        if dest is OPAQUE or tag is OPAQUE:
            raise ModelError("send with untracked dest/tag")
        if not st.procs[c.members[dest]].alive:
            self._raise(proc, _PROC_FAILED, op.lineno)
            return
        src_rank = c.members.index(proc.pid)
        st.msgs.append((c.cid, src_rank, dest, tag, payload, st.seq))
        st.seq += 1
        # instant delivery to an already-blocked matching receiver
        dst_proc = st.procs[c.members[dest]]
        if (dst_proc.blocked and dst_proc.blocked[0] == "recv"
                and dst_proc.blocked[1] == c.cid
                and dst_proc.blocked[2] == src_rank
                and dst_proc.blocked[3] == tag):
            self._deliver_recv(dst_proc, c, st)

    def _deliver_recv(self, proc: _Proc, c: _Comm, st: _State) -> bool:
        _, cid, src, tag, _lineno, out = proc.blocked
        my_rank = c.members.index(proc.pid)
        matches = [m for m in st.msgs
                   if m[0] == cid and m[1] == src and m[2] == my_rank
                   and m[3] == tag]
        if not matches:
            return False
        msg = min(matches, key=lambda m: m[5])
        st.msgs.remove(msg)
        proc.blocked = None
        proc.status = "run"
        if out:
            proc.env[out] = msg[4]
        return True

    def _do_recv(self, proc: _Proc, op: Op, st: _State) -> None:
        c = self._comm(self._eval(op.comm, proc, st), st)
        if c.revoked:
            self._raise(proc, _REVOKED, op.lineno)
            return
        src = self._eval(op.args["source"], proc, st)
        tag = self._eval(op.args.get("tag", ("const", 0)), proc, st)
        if src is OPAQUE or tag is OPAQUE:
            raise ModelError("recv with untracked source/tag")
        proc.status = "blocked"
        proc.blocked = ("recv", c.cid, src, tag, op.lineno, op.out)
        if self._deliver_recv(proc, c, st):
            return
        if not st.procs[c.members[src]].alive:
            self._raise(proc, _PROC_FAILED, op.lineno)

    # -- kills -------------------------------------------------------------

    def _apply_kill(self, st: _State, victim_pid: int) -> None:
        victim = st.procs[victim_pid]
        victim.status = "dead"
        victim.blocked = None
        st.dead_slots = tuple(sorted(set(st.dead_slots) | {victim.slot}))
        st.budget -= 1
        # wake every process whose progress depended on the victim
        for p in st.procs:
            if not (p.alive and p.blocked):
                continue
            if p.blocked[0] == "coll":
                cid, channel, kind = p.blocked[1], p.blocked[2], p.blocked[3]
                c = st.comms[cid]
                members = self._rendezvous_members(c, channel)
                if victim_pid not in members:
                    continue
                if kind in FT_OPS:
                    self._try_complete(cid, channel, st)
                else:
                    self._raise(p, _PROC_FAILED, p.blocked[6])
            elif p.blocked[0] == "recv":
                cid, src = p.blocked[1], p.blocked[2]
                c = st.comms[cid]
                if c.members[src] == victim_pid:
                    if not self._deliver_recv(p, c, st):
                        self._raise(p, _PROC_FAILED, p.blocked[4])

    def _do_readmit(self, proc: _Proc, op: Op, st: _State) -> None:
        """Local membership patch (non-collective repair): replace the
        dead member at ``rank`` with the spawned process occupying the
        same world slot.  No rendezvous — other members keep running.
        Idempotent when the slot is already held by a live process, like
        ``CommState.readmit`` in the simulator."""
        c = self._comm(self._eval(op.comm, proc, st), st)
        rank = self._eval(op.args["rank"], proc, st)
        if rank is OPAQUE or not isinstance(rank, int):
            raise ModelError(
                f"readmit at line {op.lineno} with untracked rank")
        old = st.procs[c.members[rank]]
        if old.alive:
            return
        repl = next((p for p in st.procs
                     if p.alive and p.spawned and p.slot == old.slot),
                    None)
        if repl is None:
            raise ModelError(
                f"readmit at line {op.lineno}: no live spawned "
                f"replacement holds slot {old.slot}")
        members = list(c.members)
        members[rank] = repl.pid
        st.comms[c.cid] = _Comm(c.cid, c.kind, tuple(members),
                                c.side_a, c.side_b, c.revoked)

    def _do_revoke(self, proc: _Proc, op: Op, st: _State) -> None:
        c = self._comm(self._eval(op.comm, proc, st), st)
        if c.revoked:
            return
        st.comms[c.cid] = c.with_revoked()
        for p in st.procs:
            if not (p.alive and p.blocked):
                continue
            if (p.blocked[0] == "coll" and p.blocked[1] == c.cid
                    and p.blocked[3] not in FT_OPS):
                self._raise(p, _REVOKED, p.blocked[6])
            elif p.blocked[0] == "recv" and p.blocked[1] == c.cid:
                self._raise(p, _REVOKED, p.blocked[4])

    # -- one visible step --------------------------------------------------

    def _exec_op(self, proc: _Proc, op: Op, st: _State) -> None:
        if op.kind == "revoke":
            self._do_revoke(proc, op, st)
            return
        if op.kind == "ckpt_write":
            group = self._eval(op.args["group"], proc, st)
            epoch = self._eval(op.args["epoch"], proc, st)
            if group is OPAQUE or epoch is OPAQUE:
                raise ModelError("checkpoint write with untracked key")
            st.ckpt[(group, proc.slot)] = epoch
            st.ckpt_version += 1
            return
        if op.kind == "ckpt_restore":
            group = self._eval(op.args["group"], proc, st)
            if group is OPAQUE:
                raise ModelError("checkpoint restore with untracked key")
            epoch = st.ckpt.get((group, proc.slot), 0)
            st.restores.append((group, epoch, st.ckpt_version, op.lineno))
            if op.out:
                proc.env[op.out] = epoch
            return
        if op.kind == "send":
            self._do_send(proc, op, st)
            return
        if op.kind == "recv":
            self._do_recv(proc, op, st)
            return
        if op.kind == "readmit":
            self._do_readmit(proc, op, st)
            return
        # rendezvous op
        cv = self._eval(op.comm, proc, st)
        if cv is None or cv is OPAQUE:
            raise ModelError(
                f"{op.kind} at line {op.lineno} on an untracked "
                f"communicator")
        c = self._comm(cv, st)
        channel = self._channel(op.kind, c, proc)
        if op.kind not in FT_OPS:
            if c.revoked:
                self._raise(proc, _REVOKED, op.lineno)
                return
            members = self._rendezvous_members(c, channel)
            if any(not st.procs[pid].alive for pid in members):
                self._raise(proc, _PROC_FAILED, op.lineno)
                return
        vals = {}
        for name, expr in op.args.items():
            vals[name] = self._eval(expr, proc, st)
        if op.kind in ("bcast", "reduce", "gather", "scatter"):
            root = vals.get("root", 0)
            if root is OPAQUE:
                raise ModelError(f"{op.kind} with untracked root")
            sig = (op.kind, root)
        else:
            sig = (op.kind, None)
        self._arrive(proc, op, c.cid, channel, sig, vals, st)

    # -- advancing a process through local instructions --------------------

    def _advance(self, st: _State, pid: int) -> List[Tuple[_State, str]]:
        """Run proc ``pid`` up to and through its next visible op.  Returns
        successor states with action labels (several on opaque branches or
        when a kill is possible at a halo arrival)."""
        proc = st.procs[pid]
        prog = self.progs[proc.prog]
        while True:
            if proc.pc >= len(prog.instrs):
                proc.status = "done"
                return [(st, f"{proc.label()}: falls off program end")]
            instr = prog.instrs[proc.pc]
            if isinstance(instr, SetVar):
                proc.env[instr.name] = self._eval(instr.expr, proc, st)
                proc.pc += 1
            elif isinstance(instr, Jump):
                proc.pc = instr.target
            elif isinstance(instr, TryPush):
                proc.trystack.append(instr.handler)
                proc.pc += 1
            elif isinstance(instr, TryPop):
                if proc.trystack:
                    proc.trystack.pop()
                proc.pc += 1
            elif isinstance(instr, Return):
                proc.status = "done"
                return [(st, f"{proc.label()}: returns")]
            elif isinstance(instr, FailStop):
                raise _Flag([("ULF017", instr.lineno,
                              f"protocol abstraction bound exceeded: "
                              f"{instr.message}")])
            elif isinstance(instr, Branch):
                cond = self._eval(instr.cond, proc, st)
                if cond is OPAQUE:
                    other = st.clone()
                    other.procs[pid].pc = instr.else_pc
                    proc.pc = instr.then_pc
                    return [(st, f"{proc.label()}: assumes condition at "
                                 f"line {instr.lineno}"),
                            (other, f"{proc.label()}: refutes condition "
                                    f"at line {instr.lineno}")]
                proc.pc = instr.then_pc if cond else instr.else_pc
            elif isinstance(instr, Op):
                succ: List[Tuple[_State, str]] = []
                if instr.kind == "halo" and st.budget > 0:
                    killed = st.clone()
                    self._apply_kill(killed, pid)
                    self.result.kills_explored += 1
                    succ.append(
                        (killed, f"{proc.label()}: KILLED entering "
                                 f"solve segment (line {instr.lineno})"))
                proc.pc += 1
                before = proc.pc
                self._exec_op(proc, instr, st)
                desc = (f"{proc.label()}: {instr.kind} at line "
                        f"{instr.lineno}")
                if proc.status == "blocked":
                    desc += " [waits]"
                elif proc.pc != before:
                    desc += " [raises -> handler]"
                succ.insert(0, (st, desc))
                return succ
            else:
                raise ModelError(f"unknown instruction {instr!r}")

    # -- the search --------------------------------------------------------

    def run(self) -> CheckResult:
        init = _initial_state(self.model)
        queue = [init]
        key0 = init.key()
        self._parents[key0] = (None, "initial state")
        visited = {key0}
        while queue:
            st = queue.pop()
            self.result.states += 1
            if self.result.states > STATE_LIMIT:
                raise ModelError(
                    f"state limit {STATE_LIMIT} exceeded for "
                    f"{self.model.main.name}: the abstraction is too "
                    f"coarse to explore")
            parent_key = st.key()
            for nxt, action in self._expand(st, parent_key):
                k = nxt.key()
                if k in visited:
                    continue
                visited.add(k)
                self._parents[k] = (parent_key, action)
                queue.append(nxt)
        return self.result

    def _expand(self, st: _State, parent_key) -> List[Tuple[_State, str]]:
        runnable = [p.pid for p in st.procs if p.status == "run"]
        succ: List[Tuple[_State, str]] = []
        if runnable:
            pid = min(runnable)
            work = st.clone()
            try:
                succ.extend(self._advance(work, pid))
            except _Flag as flag:
                self._record(flag.violations, parent_key,
                             extra=f"while advancing "
                                   f"{st.procs[pid].label()}")
            # kills of processes already waiting inside a solve segment
            for p in st.procs:
                if (st.budget > 0 and p.alive and p.blocked
                        and p.blocked[0] == "coll"
                        and p.blocked[3] == "halo"):
                    killed = st.clone()
                    try:
                        self._apply_kill(killed, p.pid)
                        self.result.kills_explored += 1
                        succ.append(
                            (killed, f"{p.label()}: KILLED inside solve "
                                     f"segment (line {p.blocked[6]})"))
                    except _Flag as flag:
                        self._record(flag.violations, parent_key,
                                     extra=f"after killing {p.label()}")
            return succ
        # no runnable process: terminal or hang
        blocked = [p for p in st.procs if p.alive and p.blocked]
        if not blocked:
            self._check_terminal(st, parent_key)
            return []
        self._record(self._classify_hang(st, blocked), parent_key)
        return []

    def _classify_hang(self, st: _State, blocked: List[_Proc]):
        sites = ", ".join(
            f"{p.label()} at {p.blocked[3] if p.blocked[0] == 'coll' else 'recv'} "
            f"(line {p.blocked[6] if p.blocked[0] == 'coll' else p.blocked[4]})"
            for p in blocked)
        anchor = min(blocked, key=lambda p: p.pid)
        anchor_line = (anchor.blocked[6] if anchor.blocked[0] == "coll"
                       else anchor.blocked[4])
        for p in blocked:
            if p.blocked[0] == "coll" and (
                    p.blocked[3] in ("merge", "spawn")
                    or p.blocked[2].startswith("agree-")):
                return [("ULF019", p.blocked[6],
                         f"spawn/merge handshake deadlock: {sites}; no "
                         f"sequence of events completes the "
                         f"intercommunicator handshake")]
        for p in blocked:
            if p.blocked[0] != "coll":
                continue
            c = st.comms[p.blocked[1]]
            members = self._rendezvous_members(c, p.blocked[2])
            if any(st.procs[pid].status == "done" for pid in members):
                return [("ULF016", p.blocked[6],
                         f"collective sequence diverges: a live rank "
                         f"already finished without posting the "
                         f"collective these ranks wait on ({sites})")]
        return [("ULF017", anchor_line,
                 f"unreachable repair state: {sites}; every live rank "
                 f"waits on a phase no live rank will enter")]

    def _check_terminal(self, st: _State, parent_key) -> None:
        self.result.terminals += 1
        # ULF018: restores of the same group between the same writes must
        # observe the same epoch
        by_group: Dict[Tuple[object, int], set] = {}
        lines: Dict[Tuple[object, int], int] = {}
        for group, epoch, version, lineno in st.restores:
            by_group.setdefault((group, version), set()).add(epoch)
            lines.setdefault((group, version), lineno)
        for (group, version), epochs in by_group.items():
            if len(epochs) > 1:
                self._record(
                    [("ULF018", lines[(group, version)],
                      f"checkpoint-epoch inconsistency: ranks restoring "
                      f"sub-grid {group} in the same recovery observe "
                      f"different epochs {sorted(epochs)}")],
                    parent_key)

    # -- counterexample rendering ------------------------------------------

    def _record(self, violations, parent_key, extra: str = "") -> None:
        timeline = self._timeline(parent_key, extra)
        for rule, lineno, message in violations:
            self._flag(rule, lineno, message, timeline)

    def _timeline(self, key, extra: str = "") -> str:
        steps: List[str] = []
        while key is not None:
            parent, action = self._parents[key]
            steps.append(action)
            key = parent
        steps.reverse()
        # drop the uninformative prefix entry
        if steps and steps[0] == "initial state":
            steps = steps[1:]
        out = [f"  step {i + 1:3d}: {s}" for i, s in enumerate(steps)]
        if extra:
            out.append(f"  then: {extra}")
        return "\n".join(out) if out else "  (initial state)"


def check_model(model: ProtocolModel) -> CheckResult:
    """Explore ``model`` exhaustively and return the findings."""
    return _Checker(model).run()
