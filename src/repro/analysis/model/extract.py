"""Protocol-skeleton extraction: Python AST -> protocol IR.

The extractor abstracts one ``async def`` per-rank entry point into a
:class:`~repro.analysis.model.ir.Skeleton`.  Communication calls become
IR ops, control flow becomes branches with every loop unrolled to a
failure-budget-derived bound, called protocol functions (module-local or
the shipped ``ft.reconstruct`` pair) are inlined with renamed locals,
and everything else — timers, spans, error-handler plumbing, host
placement — collapses to opaque values.  Branching on an opaque value
makes the checker explore both outcomes, so dropping detail is always
sound (it can only add behaviours, never hide one).

Loop bounds
-----------

* ``range(...)`` over a small static count (<= ``FULL_UNROLL_LIMIT``)
  is unrolled completely — segment loops.
* ``range(...)`` over a large static count is a retry loop: it is
  unrolled ``failures + 1`` times (one attempt per possible failure
  plus the final clean attempt) followed by a ``FailStop`` — reaching
  it would mean the protocol needed more retries than failures, which
  the checker reports.
* ``while`` loops unroll ``failures + 2`` times (detect, repair,
  validate) with the same ``FailStop`` backstop.
* loops over a runtime sequence (failed-rank lists) unroll ``failures``
  times, each iteration guarded by a length check.

Name resolution for calls, in order: context intrinsics
(``ctx.get_parent`` and friends), protocol intrinsics
(``failed_procs_list``, ``select_rank_key``, checkpoint and lint-stub
vocabulary), communicator methods (the op table), inlinable functions
(module-local defs, then the cross-module registry), then opaque.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .ir import Asm, Branch, FailStop, Jump, Op, Return, SetVar, Skeleton, \
    TryPop, TryPush

__all__ = ["ExtractError", "ModuleEnv", "build_module_env",
           "extract_function", "find_protocol_models",
           "reconstruct_registry", "FULL_UNROLL_LIMIT"]

#: static loop counts up to this are unrolled in full; larger counts are
#: treated as retry bounds
FULL_UNROLL_LIMIT = 8

_MAX_INLINE_DEPTH = 5

#: communicator method -> (op kind, positional arg names)
_OP_METHODS: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "barrier": ("barrier", ()),
    "halo": ("halo", ()),
    "exchange": ("halo", ()),
    "step": ("halo", ()),
    "bcast": ("bcast", ("value", "root")),
    "reduce": ("reduce", ("value", "op", "root")),
    "allreduce": ("allreduce", ("value", "op")),
    "gather": ("gather", ("value", "root")),
    "allgather": ("allgather", ("value",)),
    "scatter": ("scatter", ("value", "root")),
    "alltoall": ("alltoall", ("value",)),
    "split": ("split", ("color", "key")),
    "merge": ("merge", ("high",)),
    "agree": ("agree", ("value",)),
    "shrink": ("shrink", ()),
    "spawn_multiple": ("spawn", ("count", "entry", "argv")),
    "send": ("send", ("value", "dest", "tag")),
    "recv": ("recv", ("source", "tag")),
    "revoke": ("revoke", ()),
    "readmit": ("readmit", ("rank",)),
}

#: args dropped from ops (modelled implicitly or irrelevant)
_DROPPED_OP_ARGS = {"entry", "argv", "host_names", "op_root"}

#: reduction-op constant names -> model vocabulary
_REDUCE_NAMES = {"MAX": "max", "MIN": "min", "SUM": "sum",
                 "LAND": "and", "BAND": "and", "PROD": "sum"}

_CTX = object()   # varmap marker: this name is the context object

_PROTOCOL_RE = re.compile(
    r"#\s*repro:\s*protocol\b(?P<params>[^#]*)")


class ExtractError(Exception):
    """The function uses a construct the protocol abstraction can't keep."""

    def __init__(self, message: str, lineno: int = 0):
        super().__init__(message)
        self.lineno = lineno


class ModuleEnv:
    """Per-module extraction context: foldable constants and local
    function definitions."""

    def __init__(self, consts: Dict[str, object],
                 funcs: Dict[str, ast.AST], path: str):
        self.consts = consts
        self.funcs = funcs
        self.path = path


def build_module_env(tree: ast.Module, path: str,
                     const_overrides: Optional[Dict[str, object]] = None
                     ) -> ModuleEnv:
    consts: Dict[str, object] = {}
    funcs: Dict[str, ast.AST] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, (int, str, bool)):
            consts[node.targets[0].id] = node.value.value
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            funcs[node.name] = node
    if const_overrides:
        consts.update(const_overrides)
    return ModuleEnv(consts, funcs, path)


def reconstruct_registry() -> Dict[str, Tuple[ast.AST, ModuleEnv]]:
    """The shipped recovery protocol as an inline registry: extraction
    targets can call ``communicator_reconstruct`` / ``repair_comm`` and
    get the *real* ``ft.reconstruct`` code inlined."""
    from ... import ft
    path = str(Path(ft.__file__).parent / "reconstruct.py")
    tree = ast.parse(Path(path).read_text())
    env = build_module_env(tree, path)
    return {name: (env.funcs[name], env)
            for name in ("communicator_reconstruct", "repair_comm")
            if name in env.funcs}


# --------------------------------------------------------------------------
# annotation discovery


def find_protocol_models(tree: ast.Module, source: str
                         ) -> List[Tuple[ast.AST, Dict[str, object]]]:
    """Top-level functions marked as protocol models, via the
    ``@protocol_model(...)`` decorator or a ``# repro: protocol`` comment
    on the ``def`` line.  Returns ``(funcdef, params)`` pairs with params
    like ``{"ranks": 4, "failures": 1, "child": "name"}``."""
    lines = source.splitlines()
    found = []
    for node in tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = _decorator_params(node)
        if params is None and node.lineno <= len(lines):
            params = _comment_params(lines[node.lineno - 1])
        if params is None and node.lineno >= 2:
            prev = lines[node.lineno - 2].strip()
            if prev.startswith("#"):
                params = _comment_params(prev)
        if params is not None:
            found.append((node, params))
    return found


def _decorator_params(node) -> Optional[Dict[str, object]]:
    for dec in node.decorator_list:
        call = dec if isinstance(dec, ast.Call) else None
        target = call.func if call else dec
        name = target.attr if isinstance(target, ast.Attribute) else \
            (target.id if isinstance(target, ast.Name) else None)
        if name != "protocol_model":
            continue
        params: Dict[str, object] = {}
        if call:
            for kw in call.keywords:
                if isinstance(kw.value, ast.Constant):
                    params[kw.arg] = kw.value.value
                elif isinstance(kw.value, ast.Name):
                    params[kw.arg] = kw.value.id
        return params
    return None


def _comment_params(line: str) -> Optional[Dict[str, object]]:
    m = _PROTOCOL_RE.search(line)
    if not m:
        return None
    params: Dict[str, object] = {}
    for token in m.group("params").split():
        if "=" not in token:
            continue
        key, _, val = token.partition("=")
        params[key] = int(val) if val.isdigit() else val
    return params


# --------------------------------------------------------------------------
# extraction


class _Frame:
    def __init__(self, env: ModuleEnv, prefix: str, lineno_base: int,
                 retvar: Optional[str]):
        self.env = env
        self.prefix = prefix
        # inlined frames anchor every instruction at the call site so
        # findings always point into the annotated file
        self.lineno_base = lineno_base
        self.retvar = retvar            # None in the top frame
        self.varmap: Dict[str, object] = {}
        self.const_hints: Dict[str, int] = {}
        self.ret_jumps: List[int] = []
        self.loop_stack: List[Dict[str, List[int]]] = []

    def var(self, name: str) -> str:
        mapped = self.varmap.get(name)
        if mapped is None:
            mapped = self.prefix + name if self.prefix else name
            self.varmap[name] = mapped
        return mapped


class Extractor:
    def __init__(self, *, failures: int = 1,
                 registry: Optional[Dict[str, Tuple[ast.AST, ModuleEnv]]]
                 = None):
        self.failures = failures
        self.registry = registry or {}
        self.asm = Asm()
        self._depth = 0
        self._stack: List[str] = []

    # -- public entry ------------------------------------------------------

    def extract(self, func: ast.AST, env: ModuleEnv,
                name: Optional[str] = None) -> Skeleton:
        frame = _Frame(env, prefix="", lineno_base=0, retvar=None)
        args = func.args.args
        if args and args[0].arg in ("ctx", "self"):
            frame.varmap[args[0].arg] = _CTX
            args = args[1:]
        if args:
            frame.varmap[args[0].arg] = "__world__"
        for extra in args[1:]:
            self.asm.emit(SetVar(frame.var(extra.arg), ("opaque",),
                                 func.lineno))
        self._stmts(func.body, frame)
        for idx in frame.ret_jumps:
            self.asm.patch(idx, "target")
        self.asm.emit(Return(("const", None), _last_line(func)))
        return self.asm.finish(name or func.name, env.path)

    # -- helpers -----------------------------------------------------------

    def _line(self, node, frame: _Frame) -> int:
        if frame.lineno_base:
            return frame.lineno_base
        return getattr(node, "lineno", 0)

    def _stmts(self, body, frame: _Frame) -> None:
        for node in body:
            self._stmt(node, frame)

    # -- statements --------------------------------------------------------

    def _stmt(self, node, frame: _Frame) -> None:
        line = self._line(node, frame)
        if isinstance(node, (ast.Pass, ast.Import, ast.ImportFrom,
                             ast.Assert, ast.Global, ast.Nonlocal,
                             ast.Delete, ast.FunctionDef,
                             ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are callbacks: calls to them are opaque
        if isinstance(node, ast.Expr):
            value = _unwrap_await(node.value)
            if isinstance(value, ast.Call):
                self._call_stmt(value, frame, out=None, line=line)
            return
        if isinstance(node, ast.Assign):
            if len(node.targets) != 1:
                raise ExtractError("chained assignment unsupported", line)
            self._assign(node.targets[0], node.value, frame, line)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._assign(node.target, node.value, frame, line)
            return
        if isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                op = _BINOPS.get(type(node.op))
                if op is None:
                    raise ExtractError("unsupported augmented op", line)
                var = frame.var(node.target.id)
                frame.const_hints.pop(var, None)
                self.asm.emit(SetVar(
                    var, ("bin", op, ("var", var),
                          self._expr(node.value, frame)), line))
            return
        if isinstance(node, ast.If):
            self._if(node, frame)
            return
        if isinstance(node, ast.While):
            self._while(node, frame)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._for(node, frame)
            return
        if isinstance(node, ast.Try):
            self._try(node, frame)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._stmts(node.body, frame)
            return
        if isinstance(node, ast.Return):
            value = _unwrap_await(node.value) if node.value else None
            if isinstance(value, ast.Call):
                tmp = f"__ret{self.asm.here()}__"
                self._call_stmt(value, frame, out=tmp, line=line)
                expr: tuple = ("var", tmp)
            elif node.value is not None:
                expr = self._expr(node.value, frame)
            else:
                expr = ("const", None)
            if frame.retvar is None:
                self.asm.emit(Return(expr, line))
            else:
                self.asm.emit(SetVar(frame.retvar, expr, line))
                frame.ret_jumps.append(self.asm.emit(Jump(lineno=line)))
            return
        if isinstance(node, ast.Raise):
            self.asm.emit(FailStop(f"explicit raise at line {line}", line))
            return
        if isinstance(node, ast.Break):
            if not frame.loop_stack:
                raise ExtractError("break outside loop", line)
            frame.loop_stack[-1]["breaks"].append(
                self.asm.emit(Jump(lineno=line)))
            return
        if isinstance(node, ast.Continue):
            if not frame.loop_stack:
                raise ExtractError("continue outside loop", line)
            frame.loop_stack[-1]["continues"].append(
                self.asm.emit(Jump(lineno=line)))
            return
        raise ExtractError(
            f"unsupported statement {type(node).__name__}", line)

    def _assign(self, target, value, frame: _Frame, line: int) -> None:
        value = _unwrap_await(value)
        if isinstance(target, ast.Name):
            out = frame.var(target.id)
            frame.const_hints.pop(out, None)
            if isinstance(value, ast.Call):
                self._call_stmt(value, frame, out=out, line=line)
            else:
                expr = self._expr(value, frame)
                if expr[0] == "const" and isinstance(expr[1], int) \
                        and not isinstance(expr[1], bool):
                    frame.const_hints[out] = expr[1]
                self.asm.emit(SetVar(out, expr, line))
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            tmp = f"__tmp{self.asm.here()}__"
            if isinstance(value, ast.Call):
                self._call_stmt(value, frame, out=tmp, line=line)
            else:
                self.asm.emit(SetVar(tmp, self._expr(value, frame), line))
            for i, elt in enumerate(target.elts):
                if not isinstance(elt, ast.Name):
                    raise ExtractError("nested unpack unsupported", line)
                self.asm.emit(SetVar(
                    frame.var(elt.id),
                    ("index", ("var", tmp), ("const", i)), line))
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            return  # attribute/container state is outside the abstraction
        raise ExtractError("unsupported assignment target", line)

    # -- calls -------------------------------------------------------------

    def _call_stmt(self, call: ast.Call, frame: _Frame,
                   out: Optional[str], line: int) -> None:
        """A call in statement position: op, intrinsic, inline or drop."""
        func = call.func
        # context methods
        if isinstance(func, ast.Attribute) and \
                frame.varmap.get(_receiver_name(func)) is _CTX:
            if func.attr == "get_parent":
                if out:
                    self.asm.emit(SetVar(out, ("var", "__parent__"), line))
                return
            if func.attr == "set_parent_null":
                self.asm.emit(SetVar("__parent__", ("const", None), line))
                return
            if out:  # wtime(), compute(), universe accessors, ...
                self.asm.emit(SetVar(out, ("opaque",), line))
            return
        # checkpoint vocabulary
        if isinstance(func, ast.Name) and func.id == "ckpt_write":
            self.asm.emit(Op("ckpt_write", None, None,
                             {"group": self._expr(call.args[0], frame),
                              "epoch": self._expr(call.args[1], frame)},
                             line))
            return
        if isinstance(func, ast.Name) and func.id == "ckpt_restore":
            self.asm.emit(Op("ckpt_restore", None, out,
                             {"group": self._expr(call.args[0], frame)},
                             line))
            return
        # intrinsic value calls (also usable in expression position)
        intr = self._intrinsic_expr(call, frame)
        if intr is not None:
            if out:
                self.asm.emit(SetVar(out, intr, line))
            return
        # communicator methods
        if isinstance(func, ast.Attribute) and func.attr in _OP_METHODS:
            self._op_call(call, frame, out, line)
            return
        # inlinable protocol functions
        if isinstance(func, ast.Name):
            inlined = self._resolve_inline(func.id, frame)
            if inlined is not None:
                self._inline(inlined[0], inlined[1], call, frame, out, line)
                return
        if out:
            self.asm.emit(SetVar(out, ("opaque",), line))

    def _op_call(self, call: ast.Call, frame: _Frame,
                 out: Optional[str], line: int) -> None:
        func = call.func
        kind, arg_names = _OP_METHODS[func.attr]
        comm = self._expr(func.value, frame)
        if comm == ("opaque",):
            # method on something we don't track (timers, solvers)
            if out:
                self.asm.emit(SetVar(out, ("opaque",), line))
            return
        args: Dict[str, tuple] = {}
        for i, arg in enumerate(call.args):
            if i < len(arg_names):
                name = arg_names[i]
                args[name] = self._reduce_op(arg) if name == "op" \
                    else self._expr(arg, frame)
        for kw in call.keywords:
            if kw.arg:
                args[kw.arg] = self._reduce_op(kw.value) if kw.arg == "op" \
                    else self._expr(kw.value, frame)
        for dropped in ("entry", "argv", "host_names"):
            args.pop(dropped, None)
        if kind == "spawn" and "count" not in args:
            raise ExtractError("spawn without a child count", line)
        self.asm.emit(Op(kind, comm, out, args, line))

    @staticmethod
    def _reduce_op(node) -> tuple:
        """Map a reduction-op argument (``op=MAX``) to model vocabulary
        by *name* — reduction constants are imported, not module consts."""
        name = node.id if isinstance(node, ast.Name) else \
            (node.attr if isinstance(node, ast.Attribute) else None)
        return ("const", _REDUCE_NAMES.get(name, "max") if name else "max")

    def _intrinsic_expr(self, call: ast.Call, frame: _Frame
                        ) -> Optional[tuple]:
        func = call.func
        if not isinstance(func, ast.Name):
            return None
        name = func.id
        if name == "len" and len(call.args) == 1:
            return ("len", self._expr(call.args[0], frame))
        if name == "failed_procs_list":
            return ("failed_pair", self._expr(call.args[0], frame))
        if name == "failed_count":
            return ("failed_count", self._expr(call.args[0], frame))
        if name == "known_failed_ranks":
            return ("known_failed",)
        if name == "world_comm":
            return ("world_comm",)
        if name == "select_rank_key":
            a = [self._expr(x, frame) for x in call.args]
            return ("select_key", a[0], a[1], a[2], a[3])
        if name == "grids_of":
            return ("map_div", ("union_flat",
                                self._expr(call.args[0], frame)),
                    self._expr(call.args[1], frame))
        if name in ("sorted", "tuple", "list"):
            return self._expr(call.args[0], frame) if call.args else None
        return None

    def _resolve_inline(self, name: str, frame: _Frame
                        ) -> Optional[Tuple[ast.AST, ModuleEnv]]:
        if name in frame.env.funcs:
            fn = frame.env.funcs[name]
            if _is_protocol_function(fn):
                return (fn, frame.env)
            return None
        if name in self.registry:
            return self.registry[name]
        return None

    def _inline(self, func: ast.AST, env: ModuleEnv, call: ast.Call,
                frame: _Frame, out: Optional[str], line: int) -> None:
        if func.name in self._stack:
            raise ExtractError(
                f"recursive protocol call to {func.name}", line)
        if self._depth >= _MAX_INLINE_DEPTH:
            raise ExtractError(
                f"inline depth limit at call to {func.name}", line)
        self._depth += 1
        self._stack.append(func.name)
        prefix = f"__in{self._depth}_{func.name}__"
        sub = _Frame(env, prefix, lineno_base=line,
                     retvar=f"{prefix}ret")
        self._bind_params(func, call, frame, sub, line)
        self.asm.emit(SetVar(sub.retvar, ("const", None), line))
        self._stmts(func.body, sub)
        for idx in sub.ret_jumps:
            self.asm.patch(idx, "target")
        self._stack.pop()
        self._depth -= 1
        if out:
            self.asm.emit(SetVar(out, ("var", sub.retvar), line))

    def _bind_params(self, func: ast.AST, call: ast.Call, frame: _Frame,
                     sub: _Frame, line: int) -> None:
        params = list(func.args.posonlyargs) + list(func.args.args)
        defaults = list(func.args.defaults)
        bound: Dict[str, object] = {}
        for i, arg in enumerate(call.args):
            if i < len(params):
                bound[params[i].arg] = arg
        for kw in call.keywords:
            if kw.arg:
                bound[kw.arg] = kw.value
        pos_defaults = dict(zip([p.arg for p in params[-len(defaults):]],
                                defaults)) if defaults else {}
        kw_defaults = {p.arg: d for p, d in
                       zip(func.args.kwonlyargs, func.args.kw_defaults)
                       if d is not None}
        for p in params + list(func.args.kwonlyargs):
            name = p.arg
            node = bound.get(name)
            if node is not None and isinstance(node, ast.Name) and \
                    frame.varmap.get(node.id) is _CTX:
                sub.varmap[name] = _CTX
                continue
            if node is not None:
                expr = self._expr(node, frame)
            elif name in pos_defaults:
                expr = self._default_expr(pos_defaults[name])
            elif name in kw_defaults:
                expr = self._default_expr(kw_defaults[name])
            else:
                expr = ("opaque",)
            var = sub.var(name)
            if expr[0] == "const" and isinstance(expr[1], int) \
                    and not isinstance(expr[1], bool):
                sub.const_hints[var] = expr[1]
            self.asm.emit(SetVar(var, expr, line))

    @staticmethod
    def _default_expr(node) -> tuple:
        if isinstance(node, ast.Constant) and \
                isinstance(node.value, (int, str, bool, type(None))):
            return ("const", node.value)
        if isinstance(node, ast.Tuple) and not node.elts:
            return ("const", ())
        return ("opaque",)

    # -- control flow ------------------------------------------------------

    def _if(self, node: ast.If, frame: _Frame) -> None:
        line = self._line(node, frame)
        br = self.asm.emit(Branch(self._expr(node.test, frame),
                                  lineno=line))
        self.asm.patch(br, "then_pc")
        self._stmts(node.body, frame)
        j = self.asm.emit(Jump(lineno=line))
        self.asm.patch(br, "else_pc")
        self._stmts(node.orelse, frame)
        self.asm.patch(j, "target")

    def _try(self, node: ast.Try, frame: _Frame) -> None:
        line = self._line(node, frame)
        if node.finalbody or node.orelse:
            raise ExtractError("try finally/else unsupported", line)
        if len(node.handlers) != 1:
            raise ExtractError("exactly one except handler supported", line)
        handler = node.handlers[0]
        tp = self.asm.emit(TryPush(lineno=line))
        self._stmts(node.body, frame)
        self.asm.emit(TryPop(lineno=line))
        j = self.asm.emit(Jump(lineno=line))
        self.asm.patch(tp, "handler")
        self._stmts(handler.body, frame)
        self.asm.patch(j, "target")

    def _while(self, node: ast.While, frame: _Frame) -> None:
        line = self._line(node, frame)
        bound = self.failures + 2
        ctx = {"breaks": [], "continues": []}
        frame.loop_stack.append(ctx)
        exits: List[int] = []
        for _ in range(bound):
            for idx in ctx["continues"]:
                self.asm.patch(idx, "target")
            ctx["continues"] = []
            br = self.asm.emit(Branch(self._expr(node.test, frame),
                                      lineno=line))
            self.asm.patch(br, "then_pc")
            exits.append(br)
            self._stmts(node.body, frame)
        for idx in ctx["continues"]:
            self.asm.patch(idx, "target")
        final = self.asm.emit(Branch(self._expr(node.test, frame),
                                     lineno=line))
        self.asm.patch(final, "then_pc")
        self.asm.emit(FailStop(
            f"loop at line {line} exceeded {bound} unrolled iterations",
            line))
        self.asm.patch(final, "else_pc")
        for br in exits:
            self.asm.patch(br, "else_pc")
        frame.loop_stack.pop()
        for idx in ctx["breaks"]:
            self.asm.patch(idx, "target")

    def _for(self, node, frame: _Frame) -> None:
        line = self._line(node, frame)
        if node.orelse:
            raise ExtractError("for-else unsupported", line)
        rng = self._static_range(node.iter, frame)
        if rng is not None and len(rng) <= FULL_UNROLL_LIMIT:
            self._for_static(node, frame, rng, line)
        elif rng is not None:
            self._for_retry(node, frame, line)
        else:
            self._for_dynamic(node, frame, line)

    def _for_static(self, node, frame: _Frame, values, line: int) -> None:
        if not isinstance(node.target, ast.Name):
            raise ExtractError("static loop target must be a name", line)
        ctx = {"breaks": [], "continues": []}
        frame.loop_stack.append(ctx)
        var = frame.var(node.target.id)
        for v in values:
            for idx in ctx["continues"]:
                self.asm.patch(idx, "target")
            ctx["continues"] = []
            frame.const_hints[var] = v
            self.asm.emit(SetVar(var, ("const", v), line))
            self._stmts(node.body, frame)
        frame.const_hints.pop(var, None)
        frame.loop_stack.pop()
        for idx in ctx["continues"] + ctx["breaks"]:
            self.asm.patch(idx, "target")

    def _for_retry(self, node, frame: _Frame, line: int) -> None:
        """A wide static range is a retry loop: one attempt per possible
        failure plus one clean attempt, then the abstraction bound."""
        ctx = {"breaks": [], "continues": []}
        frame.loop_stack.append(ctx)
        attempts = self.failures + 1
        var = frame.var(node.target.id) if isinstance(node.target, ast.Name) \
            else None
        for k in range(attempts):
            for idx in ctx["continues"]:
                self.asm.patch(idx, "target")
            ctx["continues"] = []
            if var:
                self.asm.emit(SetVar(var, ("const", k), line))
            self._stmts(node.body, frame)
        for idx in ctx["continues"]:
            self.asm.patch(idx, "target")
        self.asm.emit(FailStop(
            f"retry loop at line {line} exceeded {attempts} attempts "
            f"within the failure budget", line))
        frame.loop_stack.pop()
        for idx in ctx["breaks"]:
            self.asm.patch(idx, "target")

    def _for_dynamic(self, node, frame: _Frame, line: int) -> None:
        """Loop over a runtime sequence (e.g. the failed-rank list):
        unroll to the failure budget with a length guard per copy."""
        it = node.iter
        enum = False
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Name) \
                and it.func.id == "enumerate":
            enum = True
            it = it.args[0]
        seq = self._expr(it, frame)
        tmp = f"__seq{self.asm.here()}__"
        self.asm.emit(SetVar(tmp, seq, line))
        ctx = {"breaks": [], "continues": []}
        frame.loop_stack.append(ctx)
        guards: List[int] = []
        for k in range(max(self.failures, 1)):
            for idx in ctx["continues"]:
                self.asm.patch(idx, "target")
            ctx["continues"] = []
            br = self.asm.emit(Branch(
                ("cmp", ">", ("len", ("var", tmp)), ("const", k)),
                lineno=line))
            self.asm.patch(br, "then_pc")
            guards.append(br)
            self._bind_loop_target(node.target, tmp, k, enum, frame, line)
            self._stmts(node.body, frame)
        for idx in ctx["continues"]:
            self.asm.patch(idx, "target")
        over = self.asm.emit(Branch(
            ("cmp", ">", ("len", ("var", tmp)),
             ("const", max(self.failures, 1))), lineno=line))
        self.asm.patch(over, "then_pc")
        self.asm.emit(FailStop(
            f"sequence loop at line {line} longer than the failure "
            f"budget", line))
        self.asm.patch(over, "else_pc")
        for br in guards:
            self.asm.patch(br, "else_pc")
        frame.loop_stack.pop()
        for idx in ctx["breaks"]:
            self.asm.patch(idx, "target")

    def _bind_loop_target(self, target, tmp: str, k: int, enum: bool,
                          frame: _Frame, line: int) -> None:
        item = ("index", ("var", tmp), ("const", k))
        if enum:
            if not (isinstance(target, ast.Tuple)
                    and len(target.elts) == 2
                    and all(isinstance(e, ast.Name) for e in target.elts)):
                raise ExtractError("enumerate target must be (i, x)", line)
            self.asm.emit(SetVar(frame.var(target.elts[0].id),
                                 ("const", k), line))
            self.asm.emit(SetVar(frame.var(target.elts[1].id), item, line))
        elif isinstance(target, ast.Name):
            self.asm.emit(SetVar(frame.var(target.id), item, line))
        else:
            raise ExtractError("unsupported loop target", line)

    def _static_range(self, it, frame: _Frame) -> Optional[range]:
        if not (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                and it.func.id == "range" and not it.keywords):
            return None
        vals = [self._const_int(a, frame) for a in it.args]
        if any(v is None for v in vals):
            return None
        if len(vals) == 1:
            return range(vals[0])
        if len(vals) == 2:
            return range(vals[0], vals[1])
        return range(vals[0], vals[1], vals[2])

    def _const_int(self, node, frame: _Frame) -> Optional[int]:
        if isinstance(node, ast.Constant) and isinstance(node.value, int) \
                and not isinstance(node.value, bool):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in frame.env.consts and \
                    isinstance(frame.env.consts[node.id], int):
                if node.id not in frame.varmap:
                    return frame.env.consts[node.id]
            mapped = frame.varmap.get(node.id)
            if isinstance(mapped, str):
                return frame.const_hints.get(mapped)
            return None
        if isinstance(node, ast.BinOp):
            a = self._const_int(node.left, frame)
            b = self._const_int(node.right, frame)
            op = _BINOPS.get(type(node.op))
            if a is None or b is None or op is None:
                return None
            return {"+": a + b, "-": a - b, "*": a * b,
                    "//": a // b if b else None,
                    "%": a % b if b else None}.get(op)
        return None

    # -- expressions -------------------------------------------------------

    def _expr(self, node, frame: _Frame) -> tuple:
        node = _unwrap_await(node)
        if isinstance(node, ast.Constant):
            v = node.value
            if isinstance(v, (int, bool, str, type(None))):
                return ("const", v)
            return ("opaque",)
        if isinstance(node, ast.Name):
            mapped = frame.varmap.get(node.id)
            if mapped is _CTX:
                return ("opaque",)
            if isinstance(mapped, str):
                return ("var", mapped)
            if node.id in frame.env.consts:
                return ("const", frame.env.consts[node.id])
            if node.id in ("True", "False", "None"):
                return ("const", {"True": True, "False": False,
                                  "None": None}[node.id])
            return ("opaque",)
        if isinstance(node, ast.Attribute):
            if node.attr in ("rank", "size"):
                base = self._expr(node.value, frame)
                if base != ("opaque",):
                    return (node.attr, base)
            return ("opaque",)
        if isinstance(node, (ast.Tuple, ast.List)):
            return ("tuple",) + tuple(self._expr(e, frame)
                                      for e in node.elts)
        if isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                return ("opaque",)
            return ("bin", op, self._expr(node.left, frame),
                    self._expr(node.right, frame))
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                return ("not", self._expr(node.operand, frame))
            if isinstance(node.op, ast.USub):
                inner = self._expr(node.operand, frame)
                if inner[0] == "const" and isinstance(inner[1], int):
                    return ("const", -inner[1])
            return ("opaque",)
        if isinstance(node, ast.BoolOp):
            op = "and" if isinstance(node.op, ast.And) else "or"
            out = self._expr(node.values[0], frame)
            for v in node.values[1:]:
                out = (op, out, self._expr(v, frame))
            return out
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                return ("opaque",)
            a = self._expr(node.left, frame)
            b = self._expr(node.comparators[0], frame)
            cmp = node.ops[0]
            if isinstance(cmp, ast.Is):
                return ("is", a, b)
            if isinstance(cmp, ast.IsNot):
                return ("isnot", a, b)
            if isinstance(cmp, ast.In):
                return ("in", a, b)
            if isinstance(cmp, ast.NotIn):
                return ("not", ("in", a, b))
            sym = _CMPOPS.get(type(cmp))
            return ("cmp", sym, a, b) if sym else ("opaque",)
        if isinstance(node, ast.Subscript):
            return ("index", self._expr(node.value, frame),
                    self._expr(node.slice, frame))
        if isinstance(node, ast.Call):
            intr = self._intrinsic_expr(node, frame)
            return intr if intr is not None else ("opaque",)
        if isinstance(node, (ast.IfExp, ast.JoinedStr, ast.Dict,
                             ast.Set, ast.ListComp, ast.SetComp,
                             ast.GeneratorExp, ast.DictComp,
                             ast.Starred, ast.Lambda)):
            return ("opaque",)
        return ("opaque",)


_BINOPS = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*",
           ast.FloorDiv: "//", ast.Mod: "%"}
_CMPOPS = {ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<", ast.LtE: "<=",
           ast.Gt: ">", ast.GtE: ">="}


def _unwrap_await(node):
    return node.value if isinstance(node, ast.Await) else node


def _receiver_name(func: ast.Attribute) -> Optional[str]:
    return func.value.id if isinstance(func.value, ast.Name) else None


def _is_protocol_function(fn) -> bool:
    """Functions are inlined when they look like protocol code: any
    async def, or a sync helper that touches a communicator or the
    checkpoint store (``declare_failure``-style revoke wrappers).
    Everything else (placement, error-handler factories) stays opaque."""
    if isinstance(fn, ast.AsyncFunctionDef):
        return True
    if not isinstance(fn, ast.FunctionDef):
        return False
    for n in ast.walk(fn):
        if isinstance(n, ast.Call):
            if isinstance(n.func, ast.Attribute) and \
                    n.func.attr in _OP_METHODS:
                return True
            if isinstance(n.func, ast.Name) and \
                    n.func.id in ("ckpt_write", "ckpt_restore"):
                return True
    return False


def _last_line(func) -> int:
    return getattr(func, "end_lineno", getattr(func, "lineno", 0)) or 0


def extract_function(func: ast.AST, env: ModuleEnv, *, failures: int = 1,
                     registry=None, name: Optional[str] = None) -> Skeleton:
    """Extract one entry-point function into a skeleton."""
    return Extractor(failures=failures, registry=registry).extract(
        func, env, name)
