"""The protocol IR: what the model checker executes.

A :class:`Skeleton` is one per-rank program abstracted from real solver /
``ft.reconstruct`` code: a flat instruction list over a tiny expression
language.  Everything that is not communication, control flow or
checkpoint traffic is dropped by the extractor; everything that *is* kept
evaluates to concrete, hashable values so the cross-rank product state
space stays finite and canonical.

Instructions
------------

=========  ============================================================
Op         a visible protocol step: collective, p2p, ULFM action or
           checkpoint access (``kind`` below)
SetVar     bind a local variable to the value of an expression
Branch     conditional jump (two explicit targets)
Jump       unconditional jump
TryPush    enter a ``try``-region whose ``except MPIError`` handler
           starts at ``handler``
TryPop     leave the region (fall through past the handler)
Return     terminate the program (value recorded for inlined calls)
FailStop   abstraction boundary reached (e.g. a retry loop unrolled past
           its bound): the process counts as crashed
=========  ============================================================

``Op.kind`` is one of::

    barrier bcast reduce allreduce gather allgather scatter alltoall
    halo split merge agree shrink spawn send recv revoke readmit
    ckpt_write ckpt_restore

``readmit`` is the non-collective repair mode's local membership update
(``mpi.comm.CommHandle.readmit``): it replaces a dead member of the
communicator with the spawned process occupying the same world slot,
without any rendezvous — which is the whole point of that mode, and why
the op is *not* in ``COLLECTIVE_KINDS``.

``halo`` abstracts a solver stepping segment (the neighbour exchanges of
one checkpoint segment) as a grid-wide collective: it blocks on every
member and dies with any of them, which is exactly the property the
deadlock analysis needs.  It is also the checker's *failure window*: the
paper injects failures during solve segments, so kills are offered while
a victim sits in a halo (see ``checker.ProtocolModel.kill_when``).

Expressions
-----------

Expressions are nested tuples, evaluated eagerly against the per-process
environment and the global model state::

    ("const", v)            literal
    ("var", name)           local variable
    ("tuple", *items)       tuple construction
    ("rank", e)             caller's rank in communicator e
    ("size", e)             total size of communicator e (incl. dead)
    ("bin", op, a, b)       + - * // %
    ("cmp", op, a, b)       == != < <= > >=
    ("and", a, b) / ("or", a, b) / ("not", a)
    ("is", a, b) / ("isnot", a, b)   identity (communicators: same cid)
    ("in", a, b)            membership in a tuple value
    ("len", e) / ("index", a, i)
    ("failed_pair", e)      (failed-rank tuple, count) of communicator e
                            — the model of ``failed_procs_list``
    ("failed_count", e)     number of dead members of communicator e
    ("known_failed",)       the failed world ranks this process knows:
                            survivors know the full history, a re-spawned
                            process knows (only) its own slot
    ("world_comm",)         the world communicator (the model of the
                            ``world_comm(ctx)`` vocabulary marker: a
                            re-admitted process resolving the enclosing
                            world it was patched into)
    ("union_flat", e)       sorted deduplicated union of a tuple of
                            tuples (allgather post-processing)
    ("map_div", e, k)       sorted {v // k for v in e} (ranks -> grids)
    ("select_key", r, s, f, t)  the Fig. 7 split key, evaluated with the
                            *real* ``repro.ft.reconstruct.select_rank_key``
    ("opaque",)             a value the extractor could not track

An expression that cannot be evaluated concretely yields ``OPAQUE``;
branching on an opaque condition explores both outcomes.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

__all__ = ["OPAQUE", "Op", "SetVar", "Branch", "Jump", "TryPush", "TryPop",
           "Return", "FailStop", "Skeleton", "Asm", "OP_KINDS", "FT_OPS",
           "COLLECTIVE_KINDS"]


class _Opaque:
    """Singleton for values the abstraction dropped."""

    def __repr__(self) -> str:
        return "OPAQUE"


OPAQUE = _Opaque()

#: every legal Op.kind
OP_KINDS = frozenset({
    "barrier", "bcast", "reduce", "allreduce", "gather", "allgather",
    "scatter", "alltoall", "halo", "split", "merge", "agree", "shrink",
    "spawn", "send", "recv", "revoke", "readmit", "ckpt_write",
    "ckpt_restore",
})

#: fault-tolerant rendezvous: complete over the survivors, legal on
#: revoked communicators (the simulator's RvKind.SURVIVOR ops)
FT_OPS = frozenset({"agree", "shrink"})

#: kinds that rendezvous (block on other members)
COLLECTIVE_KINDS = frozenset({
    "barrier", "bcast", "reduce", "allreduce", "gather", "allgather",
    "scatter", "alltoall", "halo", "split", "merge", "agree", "shrink",
    "spawn",
})


class Instr:
    __slots__ = ("lineno",)

    def __init__(self, lineno: int = 0):
        self.lineno = lineno


class Op(Instr):
    """A visible protocol step.  ``comm`` is an expression evaluating to a
    communicator (None for checkpoint ops); ``out`` names the variable
    receiving the result; ``args`` is a kind-specific dict of
    expressions."""

    __slots__ = ("kind", "comm", "out", "args")

    def __init__(self, kind: str, comm=None, out: Optional[str] = None,
                 args: Optional[dict] = None, lineno: int = 0):
        super().__init__(lineno)
        if kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {kind!r}")
        self.kind = kind
        self.comm = comm
        self.out = out
        self.args = args or {}

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={_fmt(v)}" for k, v in sorted(self.args.items()))
        target = f"{self.out} = " if self.out else ""
        on = f" on {_fmt(self.comm)}" if self.comm is not None else ""
        return f"{target}{self.kind}({args}){on}"


class SetVar(Instr):
    __slots__ = ("name", "expr")

    def __init__(self, name: str, expr, lineno: int = 0):
        super().__init__(lineno)
        self.name = name
        self.expr = expr

    def __repr__(self) -> str:
        return f"{self.name} = {_fmt(self.expr)}"


class Branch(Instr):
    """``if cond: goto then_pc else: goto else_pc``."""

    __slots__ = ("cond", "then_pc", "else_pc")

    def __init__(self, cond, then_pc: int = -1, else_pc: int = -1,
                 lineno: int = 0):
        super().__init__(lineno)
        self.cond = cond
        self.then_pc = then_pc
        self.else_pc = else_pc

    def __repr__(self) -> str:
        return f"if {_fmt(self.cond)} -> {self.then_pc} else -> {self.else_pc}"


class Jump(Instr):
    __slots__ = ("target",)

    def __init__(self, target: int = -1, lineno: int = 0):
        super().__init__(lineno)
        self.target = target

    def __repr__(self) -> str:
        return f"jump -> {self.target}"


class TryPush(Instr):
    __slots__ = ("handler",)

    def __init__(self, handler: int = -1, lineno: int = 0):
        super().__init__(lineno)
        self.handler = handler

    def __repr__(self) -> str:
        return f"try (handler -> {self.handler})"


class TryPop(Instr):
    __slots__ = ()

    def __repr__(self) -> str:
        return "end try"


class Return(Instr):
    __slots__ = ("expr",)

    def __init__(self, expr=("const", None), lineno: int = 0):
        super().__init__(lineno)
        self.expr = expr

    def __repr__(self) -> str:
        return f"return {_fmt(self.expr)}"


class FailStop(Instr):
    __slots__ = ("message",)

    def __init__(self, message: str, lineno: int = 0):
        super().__init__(lineno)
        self.message = message

    def __repr__(self) -> str:
        return f"failstop: {self.message}"


def _fmt(e) -> str:
    if e is None:
        return "-"
    if isinstance(e, tuple):
        if e and e[0] == "const":
            return repr(e[1])
        if e and e[0] == "var":
            return str(e[1])
        return "(" + " ".join(_fmt(x) if isinstance(x, tuple) else str(x)
                              for x in e) + ")"
    return repr(e)


class Skeleton:
    """One extracted per-rank program."""

    def __init__(self, name: str, path: str, instrs: List[Instr]):
        self.name = name
        self.path = path
        self.instrs = instrs

    def __len__(self) -> int:
        return len(self.instrs)

    def ops(self) -> List[Op]:
        return [i for i in self.instrs if isinstance(i, Op)]

    def describe(self) -> str:
        """Readable listing, pinned by the golden extraction tests so model
        drift against the real protocol code is caught in review."""
        lines = [f"skeleton {self.name} ({len(self.instrs)} instr(s))"]
        lines += [f"  {pc:3d}  {instr!r}" for pc, instr in
                  enumerate(self.instrs)]
        return "\n".join(lines)


class Asm:
    """Small assembler: emit instructions, create/patch labels."""

    def __init__(self):
        self.instrs: List[Instr] = []
        self._patches: List[Tuple[int, str, Any]] = []

    def emit(self, instr: Instr) -> int:
        self.instrs.append(instr)
        return len(self.instrs) - 1

    def here(self) -> int:
        return len(self.instrs)

    def patch(self, idx: int, field: str) -> None:
        """Point ``instrs[idx].<field>`` at the next emitted position."""
        setattr(self.instrs[idx], field, self.here())

    def finish(self, name: str, path: str) -> Skeleton:
        for instr in self.instrs:
            for field in ("then_pc", "else_pc", "target", "handler"):
                if hasattr(instr, field) and getattr(instr, field) < 0:
                    raise ValueError(
                        f"unpatched {field} in {instr!r} of {name}")
        return Skeleton(name, path, self.instrs)
