"""Reference protocol programs for the shipped recovery configurations.

Each ``@protocol_model`` function below is the *communication skeleton*
of one recovery configuration of :class:`repro.core.app.SolverApp`: the
CR (checkpoint/restart), RC (resampling/copying) and AC (alternate
combination) data-recovery techniques under the paper's global respawn
repair, plus the two alternative repair modes of
:mod:`repro.ft.strategy` — SHRINK (shrink-in-place: no spawn, the world
contracts and survivors adopt the lost work) and NC (non-collective
repair: only the damaged sub-grid's communicator is rebuilt and the
replacements are re-admitted into the world by a local membership
update) — written as per-rank async programs over the same vocabulary
the extractor understands.  The bodies are **never
executed**: ``python -m repro verify-protocol`` extracts them to
protocol IR, inlines the *real* ``ft.reconstruct`` pipeline
(``communicator_reconstruct`` / ``repair_comm``), and model-checks the
cross-rank product state space over every failure placement.

The model dimensions are deliberately small (two grids of two ranks,
two solve segments): the protocol properties being proved — every
survivor and every re-spawned process converge on the same collective
sequence, the spawn/merge handshake matches, checkpoint epochs agree —
are rank-count-symmetric beyond the first non-trivial configuration,
while the state space is exponential in ranks.

These functions double as the executable documentation of the recovery
protocol: a step here corresponds one-to-one with a phase of
``SolverApp`` (the ``# app:`` comments name the counterpart).
"""

from __future__ import annotations

from ...ft.detection import failed_procs_list
from ...ft.reconstruct import communicator_reconstruct, repair_comm
from ...mpi.comm import MAX
from ...mpi.errors import MPIError
from .vocab import (ckpt_restore, ckpt_write, grids_of,
                    known_failed_ranks, world_comm)

__all__ = ["MODES", "DEFAULT_RANKS", "GRID_RANKS", "NGRIDS", "SEGMENTS"]

GRID_RANKS = 2
NGRIDS = 2
SEGMENTS = 2
RECOVERY_TAG = 7000

DEFAULT_RANKS = GRID_RANKS * NGRIDS


async def rejoin(ctx, world, gid, target):
    """Post-repair resynchronisation.  # app: _post_failure_resync +
    _cr_failure_branch (every rank contributes what it knows — a
    re-spawned root must not be the single source of truth).  The
    shrink mode shares this resync verbatim: after the in-place repair
    the contracted world re-splits and restores exactly the same way
    (# app: _shrink_resync + _shrink_failure_branch)."""
    known = await world.allgather(known_failed_ranks(ctx))
    lost = grids_of(known, GRID_RANKS)
    grid = await world.split(gid, world.rank)
    horizon = await world.allreduce(target, op=MAX)
    if gid in lost:
        epoch = ckpt_restore(gid)
        try:
            await grid.halo()  # recompute the segment from the checkpoint
        except MPIError:
            grid.revoke()
    try:
        await world.barrier()
    except MPIError:
        pass
    return (grid, horizon, lost)


async def cr_segment(ctx, world, grid, gid, seg):
    """One guarded solve segment.  # app: _step_guarded + _cr_segments"""
    try:
        await grid.halo()
    except MPIError:
        grid.revoke()
    world2 = await communicator_reconstruct(ctx, world, entry=cr_child)
    if world2 is not world:
        world = world2
        state = await rejoin(ctx, world, gid, seg)
        grid = state[0]
    else:
        if seg < SEGMENTS:
            ckpt_write(gid, seg)  # app: write_checkpoint at the boundary
    return (world, grid)


async def finale(ctx, world, grid, gid):
    """Recovery + combination phases.  # app: _recovery_phase +
    _combination_phase (CR recovers from disk, so no extra traffic)."""
    await world.barrier()
    await world.barrier()
    await world.barrier()
    nodal = await world.gather(gid, root=0)
    await world.barrier()
    stats = await world.gather(0, root=0)


# repro: protocol ranks=4 failures=1 child=cr_child
async def cr_parent(ctx, world):
    """Checkpoint/restart mode, original-process entry point."""
    gid = world.rank // GRID_RANKS
    grid = await world.split(gid, world.rank)
    for seg in range(1, SEGMENTS + 1):
        pair = await cr_segment(ctx, world, grid, gid, seg)
        world = pair[0]
        grid = pair[1]
    await finale(ctx, world, grid, gid)


async def cr_child(ctx):
    """Checkpoint/restart mode, re-spawned-process entry point.
    # app: SolverApp.run() with ctx.is_respawned"""
    world = await communicator_reconstruct(ctx, None, entry=cr_child)
    if world is None:
        return None  # orphan of an abandoned repair round
    gid = world.rank // GRID_RANKS
    state = await rejoin(ctx, world, gid, 0)
    grid = state[0]
    horizon = state[1]
    for seg in range(1, SEGMENTS + 1):
        if seg > horizon:
            pair = await cr_segment(ctx, world, grid, gid, seg)
            world = pair[0]
            grid = pair[1]
    await finale(ctx, world, grid, gid)


async def sparse_step(ctx, world, grid, gid, entry):
    """One unsegmented solve + single repair round.  # app:
    _plain_stepping (RC and AC do not checkpoint: one guarded solve,
    one reconstruct, then resync)."""
    lost = ()
    try:
        await grid.halo()
    except MPIError:
        grid.revoke()
    world2 = await communicator_reconstruct(ctx, world, entry=entry)
    if world2 is not world:
        world = world2
        known = await world.allgather(known_failed_ranks(ctx))
        lost = grids_of(known, GRID_RANKS)
        grid = await world.split(gid, world.rank)
    return (world, grid, lost)


async def rc_finale(ctx, world, grid, gid, lost):
    """Resampling/copying recovery: the paired surviving grid root
    sends its field to each lost grid's root, which scatters it.
    # app: _rc_recover + _combination_phase"""
    await world.barrier()
    for g in lost:
        src = NGRIDS - 1 - g
        if gid == src:
            if grid.rank == 0:
                await world.send(g, dest=g * GRID_RANKS,
                                 tag=RECOVERY_TAG + g)
        if gid == g:
            if grid.rank == 0:
                full = await world.recv(source=src * GRID_RANKS,
                                        tag=RECOVERY_TAG + g)
            await grid.bcast(0, root=0)  # app: solver.scatter_full
    await world.barrier()
    await world.barrier()
    nodal = await world.gather(gid, root=0)
    await world.barrier()
    stats = await world.gather(0, root=0)


# repro: protocol ranks=4 failures=1 child=rc_child
async def rc_parent(ctx, world):
    """Resampling/copying mode, original-process entry point."""
    gid = world.rank // GRID_RANKS
    grid = await world.split(gid, world.rank)
    state = await sparse_step(ctx, world, grid, gid, rc_child)
    await rc_finale(ctx, state[0], state[1], gid, state[2])


async def rc_child(ctx):
    """Resampling/copying mode, re-spawned-process entry point."""
    world = await communicator_reconstruct(ctx, None, entry=rc_child)
    if world is None:
        return None
    gid = world.rank // GRID_RANKS
    known = await world.allgather(known_failed_ranks(ctx))
    lost = grids_of(known, GRID_RANKS)
    grid = await world.split(gid, world.rank)
    await rc_finale(ctx, world, grid, gid, lost)


async def ac_finale(ctx, world, grid, gid, lost):
    """Alternate-combination recovery: root recombines without the lost
    grids, then re-seeds each lost grid root from the combined field.
    # app: AlternateCombination.recover + scatter_samples"""
    await world.barrier()
    await world.barrier()
    await world.barrier()
    nodal = await world.gather(gid, root=0)
    for g in lost:
        if world.rank == 0:
            await world.send(0, dest=g * GRID_RANKS, tag=RECOVERY_TAG + g)
        if world.rank == g * GRID_RANKS:
            sample = await world.recv(source=0, tag=RECOVERY_TAG + g)
        if gid == g:
            await grid.bcast(0, root=0)  # app: solver.scatter_full
    await world.barrier()
    stats = await world.gather(0, root=0)


# repro: protocol ranks=4 failures=1 child=ac_child
async def ac_parent(ctx, world):
    """Alternate-combination mode, original-process entry point."""
    gid = world.rank // GRID_RANKS
    grid = await world.split(gid, world.rank)
    state = await sparse_step(ctx, world, grid, gid, ac_child)
    await ac_finale(ctx, state[0], state[1], gid, state[2])


async def ac_child(ctx):
    """Alternate-combination mode, re-spawned-process entry point."""
    world = await communicator_reconstruct(ctx, None, entry=ac_child)
    if world is None:
        return None
    gid = world.rank // GRID_RANKS
    known = await world.allgather(known_failed_ranks(ctx))
    lost = grids_of(known, GRID_RANKS)
    grid = await world.split(gid, world.rank)
    await ac_finale(ctx, world, grid, gid, lost)


async def shrink_repair(ctx, world):
    """World-wide detection and in-place repair: agree + probe barrier;
    on error revoke + shrink, and *no* spawn — the contracted
    communicator simply becomes the world.  # app:
    _shrink_detect_repair"""
    for _attempt in range(16):
        ok = await world.agree(1)
        try:
            await world.barrier()
            return (world, _attempt > 0)
        except MPIError:
            pass
        world.revoke()
        shrunk = await world.shrink()
        pair = failed_procs_list(world, shrunk)
        world = shrunk


async def shrink_segment(ctx, world, grid, gid, seg):
    """One guarded solve segment under in-place repair.  # app:
    _cr_segment_loop with ShrinkInPlaceStrategy"""
    try:
        await grid.halo()
    except MPIError:
        grid.revoke()
    state = await shrink_repair(ctx, world)
    world = state[0]
    if state[1]:
        sub = await rejoin(ctx, world, gid, seg)
        grid = sub[0]
    else:
        if seg < SEGMENTS:
            ckpt_write(gid, seg)  # app: write_checkpoint at the boundary
    return (world, grid)


# repro: protocol ranks=4 failures=1
async def shrink_parent(ctx, world):
    """Shrink-in-place mode, sole entry point — nothing is ever
    re-spawned, so the model declares no child program: survivors
    continue on the contracted world and adopt the lost grids' work."""
    gid = world.rank // GRID_RANKS
    grid = await world.split(gid, world.rank)
    for seg in range(1, SEGMENTS + 1):
        pair = await shrink_segment(ctx, world, grid, gid, seg)
        world = pair[0]
        grid = pair[1]
    await finale(ctx, world, grid, gid)


async def nc_repair(ctx, world, grid):
    """Per-grid detection and non-collective repair: only the damaged
    grid's members stop; the unaffected grid never appears in this
    exchange.  Replacements are re-admitted into the world by a purely
    local membership update *before* the re-probe — the rebuilt grid's
    agree + barrier double as the child's join point, so the child can
    only proceed past them once its world slot is patched.  # app:
    _nc_detect_repair"""
    for _attempt in range(16):
        ok = await grid.agree(1)
        try:
            await grid.barrier()
            return (grid, _attempt > 0)
        except MPIError:
            pass
        grid2 = await repair_comm(ctx, grid, entry=nc_child)
        for r in known_failed_ranks(ctx):
            await world.readmit(r)
        grid = grid2


async def nc_rejoin(ctx, world, grid, gid, target):
    """Post-repair resynchronisation, confined to the rebuilt grid:
    agree on the resume horizon and restore from the grid's own
    checkpoints.  # app: _nc_cr_branch"""
    horizon = await grid.allreduce(target, op=MAX)
    epoch = ckpt_restore(gid)
    try:
        await grid.halo()  # recompute the segment from the checkpoint
    except MPIError:
        grid.revoke()
    return horizon


async def nc_segment(ctx, world, grid, gid, seg):
    """One guarded solve segment; detection and repair stay grid-local.
    # app: _cr_segment_loop with NonCollectiveStrategy"""
    try:
        await grid.halo()
    except MPIError:
        grid.revoke()
    state = await nc_repair(ctx, world, grid)
    grid = state[0]
    if state[1]:
        horizon = await nc_rejoin(ctx, world, grid, gid, seg)
    else:
        if seg < SEGMENTS:
            ckpt_write(gid, seg)  # app: write_checkpoint at the boundary
    return grid


async def nc_finale(ctx, world, grid, gid):
    """Deferred world resynchronisation — the mode's one world-wide
    exchange, after stepping completes — then the recovery/combination
    phases.  # app: _nc_world_resync + _recovery_phase +
    _combination_phase"""
    ok = await world.agree(1)
    known = await world.allgather(known_failed_ranks(ctx))
    lost = grids_of(known, GRID_RANKS)
    await finale(ctx, world, grid, gid)


# repro: protocol ranks=4 failures=1 child=nc_child
async def nc_parent(ctx, world):
    """Non-collective mode, original-process entry point."""
    gid = world.rank // GRID_RANKS
    grid = await world.split(gid, world.rank)
    for seg in range(1, SEGMENTS + 1):
        grid = await nc_segment(ctx, world, grid, gid, seg)
    await nc_finale(ctx, world, grid, gid)


async def nc_child(ctx):
    """Non-collective mode, re-spawned-process entry point: joins only
    its own grid's rebuild, then adopts the world whose membership the
    survivors already patched.  # app: SolverApp._nc_child_join"""
    grid = await communicator_reconstruct(ctx, None, entry=nc_child)
    if grid is None:
        return None  # orphan of an abandoned repair round
    world = world_comm(ctx)
    gid = world.rank // GRID_RANKS
    horizon = await nc_rejoin(ctx, world, grid, gid, 0)
    for seg in range(1, SEGMENTS + 1):
        if seg > horizon:
            grid = await nc_segment(ctx, world, grid, gid, seg)
    await nc_finale(ctx, world, grid, gid)


#: recovery mode -> annotated parent entry point name
MODES = {
    "CR": "cr_parent",
    "RC": "rc_parent",
    "AC": "ac_parent",
    "SHRINK": "shrink_parent",
    "NC": "nc_parent",
}
