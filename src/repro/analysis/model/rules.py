"""Protocol-model rules ULF016-ULF020: extraction + checking as a lint pass.

This is the third analysis layer (after the syntactic visitor and the
dataflow engine): any top-level function annotated ``@protocol_model``
or ``# repro: protocol`` is extracted to protocol IR and model-checked
over every failure placement at its annotated rank count.  Violations
come back as ordinary :class:`~repro.analysis.linter.LintViolation`
objects, so ``repro lint`` and the SARIF emitter pick them up with no
special casing; ``repro verify-protocol`` additionally renders the
per-rank counterexample timelines.

=======  =============================================================
ULF016   cross-rank collective-sequence divergence under failure: two
         members of a communicator issue different operations at the
         same rendezvous (or one finishes while a peer still waits)
ULF017   unreachable/incomplete repair state: a survivor waits on a
         phase no live rank will enter (stranded recv, unhandled
         failure, repair abandoned past its retry budget)
ULF018   checkpoint-epoch inconsistency: restores of the same repair
         round observe different checkpoint epochs
ULF019   spawn/merge handshake mismatch: spawn counts or merge
         ordering flags disagree, or a rank blocks forever inside the
         spawn/merge/bridge-agree handshake
ULF020   revoke-propagation gap: a failure exception (revoked
         communicator) escapes the protocol — a post-failure
         collective was reachable before the revoke was observed
=======  =============================================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from ..linter import LintViolation
from .checker import CheckResult, ModelError, ProtocolModel, check_model
from .extract import (ExtractError, build_module_env, extract_function,
                      find_protocol_models, reconstruct_registry)

__all__ = ["MODEL_RULES", "SourceModel", "ModeReport", "iter_source_models",
           "check_protocol_models", "verify_modes"]

#: rule id -> one-line description (merged into ``linter.RULES``)
MODEL_RULES: Dict[str, str] = {
    "ULF016": "collective sequence diverges across ranks under failure",
    "ULF017": "survivor can wait on a repair phase no live rank enters",
    "ULF018": "checkpoint epochs inconsistent across restore paths",
    "ULF019": "spawn/merge handshake mismatch in the repair protocol",
    "ULF020": "post-failure collective reachable before revoke observed",
}


@dataclass
class SourceModel:
    """One annotated entry point extracted from a source file."""

    name: str
    path: str
    params: Dict[str, object]
    model: ProtocolModel
    lineno: int


@dataclass
class ModeReport:
    """verify-protocol result for one recovery mode."""

    mode: str
    source: SourceModel
    result: CheckResult

    @property
    def ok(self) -> bool:
        return self.result.ok


def iter_source_models(source: str, path: str, *,
                       ranks: Optional[int] = None,
                       failures: Optional[int] = None,
                       registry=None) -> Iterator[SourceModel]:
    """Extract every annotated protocol model in ``source``.

    ``ranks``/``failures`` override the annotation (CLI flags); loop
    unrolling depends on the failure budget, so overriding re-extracts
    rather than just re-checking.  Raises :class:`ExtractError` on an
    annotation the extractor cannot honour.
    """
    tree = ast.parse(source, filename=path)
    annotated = find_protocol_models(tree, source)
    if not annotated:
        return
    env = build_module_env(tree, path)
    if registry is None:
        registry = reconstruct_registry()
    for func, params in annotated:
        f = int(failures if failures is not None
                else params.get("failures", 1))
        r = int(ranks if ranks is not None else params.get("ranks", 4))
        main = extract_function(func, env, failures=f, registry=registry)
        child = None
        child_name = params.get("child")
        if child_name:
            child_fn = env.funcs.get(str(child_name))
            if child_fn is None:
                raise ExtractError(
                    f"protocol model {func.name}: child entry point "
                    f"{child_name!r} not found in {path}", func.lineno)
            child = extract_function(child_fn, env, failures=f,
                                     registry=registry)
        yield SourceModel(func.name, path, dict(params),
                          ProtocolModel(main, ranks=r, child=child,
                                        failures=f),
                          func.lineno)


def check_protocol_models(tree: ast.Module, path: str,
                          source: str) -> List[LintViolation]:
    """Lint hook: model-check every annotated function in the file.

    Extraction or checker failures surface as ULF000 (analysis could
    not complete) rather than silently passing the file.
    """
    # cheap pre-scan before touching the extractor machinery
    if not find_protocol_models(tree, source):
        return []
    out: List[LintViolation] = []
    try:
        for sm in iter_source_models(source, path):
            result = check_model(sm.model)
            for v in result.violations:
                out.append(LintViolation(
                    v.rule, path, v.lineno or sm.lineno, 1,
                    f"{v.message} [model {sm.name}, "
                    f"ranks={sm.model.ranks}, "
                    f"failures={sm.model.failures}; run 'repro "
                    f"verify-protocol' for the step timeline]"))
    except ExtractError as exc:
        out.append(LintViolation(
            "ULF000", path, exc.lineno or 1, 1,
            f"protocol extraction failed: {exc}"))
    except ModelError as exc:
        out.append(LintViolation(
            "ULF000", path, 1, 1, f"protocol model check failed: {exc}"))
    return out


def verify_modes(modes: Optional[List[str]] = None, *,
                 ranks: Optional[int] = None,
                 failures: Optional[int] = None) -> List[ModeReport]:
    """Model-check the shipped recovery configurations
    (CR/RC/AC/SHRINK/NC).

    Returns one report per requested mode, in request order.  Unknown
    mode names raise ``ValueError`` (the CLI maps that to exit 2).
    """
    from . import modes as modes_module

    wanted = [m.upper() for m in (modes or list(modes_module.MODES))]
    unknown = [m for m in wanted if m not in modes_module.MODES]
    if unknown:
        raise ValueError(
            f"unknown recovery mode(s) {', '.join(unknown)}; "
            f"choose from {', '.join(modes_module.MODES)}")
    path = str(Path(modes_module.__file__))
    source = Path(path).read_text()
    by_name = {sm.name: sm for sm in iter_source_models(
        source, path, ranks=ranks, failures=failures)}
    reports = []
    for mode in wanted:
        entry = modes_module.MODES[mode]
        sm = by_name.get(entry)
        if sm is None:
            raise ExtractError(
                f"mode {mode}: entry point {entry!r} is not annotated "
                f"as a protocol model in {path}")
        reports.append(ModeReport(mode, sm, check_model(sm.model)))
    return reports
