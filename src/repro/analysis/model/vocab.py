"""Protocol-model vocabulary: names the skeleton extractor understands.

Reference programs (:mod:`.modes`) and fixtures call these so their
bodies are valid, importable Python, but the functions are **markers**:
the extractor recognises them by name and lowers each to its protocol-IR
meaning (see ``extract.Extractor._intrinsic_expr``).  The runtime
implementations exist only so accidental execution fails loudly instead
of silently computing nothing.
"""

from __future__ import annotations

__all__ = ["ckpt_write", "ckpt_restore", "known_failed_ranks", "grids_of",
           "world_comm"]


def _marker(name: str):
    raise RuntimeError(
        f"{name} is a protocol-model marker: reference programs are "
        f"extracted by repro.analysis.model, never executed")


def ckpt_write(group, epoch):
    """Record a checkpoint for grid ``group`` at epoch ``epoch``.

    Models ``ft.checkpoint.write_checkpoint``: one entry per (grid,
    rank-slot) in the shared checkpoint store.
    """
    _marker("ckpt_write")


def ckpt_restore(group):
    """Read grid ``group``'s checkpoint epoch for the calling slot.

    Models ``ft.checkpoint.restore_checkpoint``; the checker compares
    the epochs observed by restores of the same repair round (ULF018).
    """
    _marker("ckpt_restore")


def known_failed_ranks(ctx):
    """The failed world ranks this process knows of.

    Survivors know the full failure history; a re-spawned process knows
    only its own slot — which is exactly the asymmetry that makes
    single-source resync protocols wrong (see ``rejoin``).
    """
    _marker("known_failed_ranks")


def grids_of(known, grid_ranks):
    """Sorted grid ids owning any of the ranks in ``known`` (a
    per-rank tuple-of-tuples as returned by ``allgather``)."""
    _marker("grids_of")


def world_comm(ctx):
    """The enclosing world communicator of the calling process.

    Models a re-admitted replacement adopting the world whose membership
    ``CommHandle.readmit`` patched it into (the app's
    ``ctx.argv[1].handle(ctx.proc)``): the checker resolves it to the
    initial world communicator, whose member table the ``readmit`` op
    has already updated by the time the rebuilt grid's join barrier lets
    the child proceed.
    """
    _marker("world_comm")
