"""ULFM recovery-protocol checker over recorded MPI traces.

The paper's repair sequence (Figs. 4-7) is a strict state machine:

    detect -> revoke -> shrink -> spawn -> merge -> (agree) -> split

This module replays a :class:`~repro.mpi.tracing.Tracer` event stream and
flags transitions that violate that order, per communicator.  Communicator
lineage follows the simulator's naming convention: ``X.shrunk`` is the
shrink of ``X``, ``<job>.bridge`` the intercommunicator created by spawn
job ``<job>``, ``B.merged`` the merge of bridge ``B`` and ``M.split<c>``
a split of ``M``.

Rule catalog (see ``docs/analysis.md`` for rationale and examples):

=========================== ==============================================
PROTO-SHRINK-BEFORE-REVOKE  shrink on a damaged communicator that was
                            never revoked (survivors not adjacent to the
                            failure can hang in pending operations)
PROTO-SPAWN-BEFORE-SHRINK   spawn_multiple collective over a communicator
                            with dead members (must spawn on the shrunk
                            communicator)
PROTO-MERGE-BEFORE-SPAWN    intercommunicator merge before the spawn that
                            creates the bridge
PROTO-SPLIT-BEFORE-MERGE    rank-restoring split before the merge that
                            forms the ordered intracommunicator
PROTO-USE-AFTER-REVOKE      ordinary (non-fault-tolerant) operation on a
                            communicator after revocation propagated
=========================== ==============================================

``agree`` is deliberately unordered relative to ``merge``: the paper's
parents agree *after* merging (Fig. 5 l.14-15) while children agree
*before* (Fig. 3 l.21-22); both are legal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .events import ParsedEvent, TruncatedTraceError, parse_events

__all__ = ["ProtocolViolation", "CommRecord", "check_protocol",
           "recovery_episodes", "format_violations", "TruncatedTraceError"]

#: ULFM fault-tolerant operations, legal on damaged/revoked communicators
SURVIVOR_OPS = frozenset({"shrink", "agree"})


@dataclass
class ProtocolViolation:
    rule: str
    time: float
    comm: Optional[str]
    message: str
    events: tuple = ()

    def __str__(self) -> str:
        where = f" [{self.comm}]" if self.comm else ""
        return f"t={self.time:.6f} {self.rule}{where}: {self.message}"


@dataclass
class CommRecord:
    """Running per-communicator knowledge accumulated during the replay."""
    name: str
    members: Set[str] = field(default_factory=set)
    revoke_called_at: Optional[float] = None
    revoke_done_at: Optional[float] = None
    ops: List[str] = field(default_factory=list)

    def derived_from_shrink(self) -> bool:
        return ".shrunk" in self.name


class _Replay:
    def __init__(self):
        self.comms: Dict[str, CommRecord] = {}
        self.dead: Set[str] = set()
        #: spawn job name -> spawn event (bridge comms are ``<job>.bridge``)
        self.spawns: Dict[str, ParsedEvent] = {}
        self.any_spawn_seen = False
        #: comm name -> first merge event on it
        self.merges: Dict[str, ParsedEvent] = {}
        self.violations: List[ProtocolViolation] = []

    def comm(self, name: str) -> CommRecord:
        rec = self.comms.get(name)
        if rec is None:
            rec = self.comms[name] = CommRecord(name)
        return rec

    def flag(self, rule: str, ev: ParsedEvent, message: str,
             comm: Optional[str] = None) -> None:
        self.violations.append(ProtocolViolation(
            rule, ev.time, comm if comm is not None else ev.comm,
            message, (ev,)))

    # ------------------------------------------------------------------
    def dead_members(self, rec: CommRecord) -> Set[str]:
        return rec.members & self.dead

    def feed(self, ev: ParsedEvent) -> None:
        handler = getattr(self, f"_on_{ev.kind}", None)
        if handler is not None:
            handler(ev)

    # -- event handlers -------------------------------------------------
    def _on_kill(self, ev: ParsedEvent) -> None:
        self.dead.add(ev.actor)

    def _on_revoke(self, ev: ParsedEvent) -> None:
        if ev.comm is None:
            return
        rec = self.comm(ev.comm)
        rec.members.add(ev.actor)
        if rec.revoke_called_at is None:
            rec.revoke_called_at = ev.time

    def _on_revoked(self, ev: ParsedEvent) -> None:
        if ev.comm is not None:
            self.comm(ev.comm).revoke_done_at = ev.time

    def _on_spawn(self, ev: ParsedEvent) -> None:
        self.any_spawn_seen = True
        self.spawns.setdefault(ev.actor, ev)
        parent = ev.spawn_parent
        if parent is None:
            return
        rec = self.comm(parent)
        dead = self.dead_members(rec)
        if dead and not rec.derived_from_shrink():
            self.flag("PROTO-SPAWN-BEFORE-SHRINK", ev,
                      f"spawn_multiple is collective over {parent} which "
                      f"has dead member(s) {sorted(dead)}; replacements "
                      "must be spawned on the shrunk communicator",
                      comm=parent)

    def _on_send(self, ev: ParsedEvent) -> None:
        self._use(ev, f"send {ev.src}->{ev.dst}")

    def _on_recv(self, ev: ParsedEvent) -> None:
        self._use(ev, f"recv {ev.src}->{ev.dst}")

    def _use(self, ev: ParsedEvent, what: str) -> None:
        if ev.comm is None:
            return
        rec = self.comm(ev.comm)
        rec.members.add(ev.actor)
        self._check_use_after_revoke(rec, ev, what)

    def _check_use_after_revoke(self, rec: CommRecord, ev: ParsedEvent,
                                what: str) -> None:
        if rec.revoke_done_at is not None and ev.time > rec.revoke_done_at:
            self.flag("PROTO-USE-AFTER-REVOKE", ev,
                      f"{what} on {rec.name} after revocation propagated "
                      f"at t={rec.revoke_done_at:.6f}; only agree/shrink "
                      "are legal on a revoked communicator")

    def _on_coll(self, ev: ParsedEvent) -> None:
        if ev.comm is None or ev.op is None:
            return
        rec = self.comm(ev.comm)
        rec.members.add(ev.actor)
        rec.ops.append(ev.op)
        op = ev.op
        if op not in SURVIVOR_OPS:
            self._check_use_after_revoke(rec, ev, f"collective {op}")
        if op == "shrink":
            dead = self.dead_members(rec)
            if dead and rec.revoke_called_at is None:
                self.flag("PROTO-SHRINK-BEFORE-REVOKE", ev,
                          f"shrink on {rec.name} (dead member(s) "
                          f"{sorted(dead)}) without a prior revoke; "
                          "survivors blocked in pending operations on "
                          "this communicator will never be released")
        elif op == "merge":
            self.merges.setdefault(ev.comm, ev)
            if ev.comm.endswith(".bridge"):
                job = ev.comm[:-len(".bridge")]
                if job not in self.spawns:
                    self.flag("PROTO-MERGE-BEFORE-SPAWN", ev,
                              f"merge on bridge {ev.comm} before spawn "
                              f"job {job} launched its processes")
            elif not self.any_spawn_seen:
                self.flag("PROTO-MERGE-BEFORE-SPAWN", ev,
                          f"merge on {ev.comm} before any spawn: there is "
                          "no intercommunicator to merge yet")
        elif op == "split":
            if ev.comm.endswith(".merged"):
                base = ev.comm[:-len(".merged")]
                if base not in self.merges:
                    self.flag("PROTO-SPLIT-BEFORE-MERGE", ev,
                              f"rank-restoring split on {ev.comm} before "
                              f"the merge that creates it from {base}")


def check_protocol(trace, *, allow_truncated: bool = False
                   ) -> List[ProtocolViolation]:
    """Replay a trace and return every protocol violation found.

    ``trace`` is a :class:`~repro.mpi.tracing.Tracer` (or any object with
    ``events``/``dropped``).  Raises :class:`TruncatedTraceError` when the
    recorder overflowed, unless ``allow_truncated`` is set.
    """
    replay = _Replay()
    for ev in parse_events(trace, allow_truncated=allow_truncated):
        replay.feed(ev)
    return replay.violations


# ----------------------------------------------------------------------
# recovery-episode summary (the positive report for the CLI)
# ----------------------------------------------------------------------
@dataclass
class RecoveryEpisode:
    """One revoke-initiated repair: phase timestamps as observed."""
    comm: str
    revoke_at: float
    shrink_at: Optional[float] = None
    spawn_at: Optional[float] = None
    merge_at: Optional[float] = None
    split_at: Optional[float] = None

    def describe(self) -> str:
        def phase(name, t):
            return f"{name}@{t:.6f}" if t is not None else f"{name}@-"
        return (f"{self.comm}: revoke@{self.revoke_at:.6f} -> "
                + " -> ".join(phase(n, t) for n, t in (
                    ("shrink", self.shrink_at), ("spawn", self.spawn_at),
                    ("merge", self.merge_at), ("split", self.split_at))))


def recovery_episodes(trace, *, allow_truncated: bool = False
                      ) -> List[RecoveryEpisode]:
    """Group trace events into revoke-initiated recovery episodes."""
    episodes: List[RecoveryEpisode] = []
    current: Optional[RecoveryEpisode] = None
    for ev in parse_events(trace, allow_truncated=allow_truncated):
        if ev.kind == "revoke" and ev.comm is not None:
            if current is None or current.comm != ev.comm:
                current = RecoveryEpisode(ev.comm, ev.time)
                episodes.append(current)
        elif ev.kind == "coll" and current is not None:
            if ev.op == "shrink" and ev.comm == current.comm \
                    and current.shrink_at is None:
                current.shrink_at = ev.time
            elif ev.op == "merge" and current.merge_at is None:
                current.merge_at = ev.time
            elif ev.op == "split" and current.merge_at is not None \
                    and current.split_at is None:
                current.split_at = ev.time
        elif ev.kind == "spawn" and current is not None \
                and current.spawn_at is None:
            current.spawn_at = ev.time
    return episodes


def format_violations(violations: List[ProtocolViolation]) -> str:
    if not violations:
        return "protocol check: clean"
    lines = [f"protocol check: {len(violations)} violation(s)"]
    lines += [f"  {v}" for v in violations]
    return "\n".join(lines)
