"""Pytest plugin: automatic leak/race audit for mpi-layer tests.

Registered in ``pytest.ini`` (``-p repro.analysis.pytest_plugin``).  For
every test under ``tests/mpi/`` it records the universes the test creates
and, after the test body finishes, runs:

* :func:`repro.analysis.runtime.check_runtime_leaks` — leak *errors* fail
  the test;
* :func:`repro.analysis.races.find_message_races` on the universe's tracer
  (when tracing was on) — detected message races fail the test unless it
  is marked ``@pytest.mark.allow_races`` (for tests that exercise races
  deliberately).

The audit is intentionally scoped to ``tests/mpi``: higher-layer tests
drive whole applications where post-run communicator state is part of the
scenario under test.
"""

from __future__ import annotations

import pytest

_AUDIT_PATH = "tests/mpi/"


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "allow_races: suppress the automatic message-race audit for tests "
        "that create races on purpose")


@pytest.fixture(autouse=True)
def mpi_runtime_audit(request):
    """Collect every Universe the test creates; audit them afterwards."""
    nodeid = request.node.nodeid.replace("\\", "/")
    if _AUDIT_PATH not in nodeid:
        yield
        return

    from repro.mpi.universe import Universe

    created = []
    orig_init = Universe.__init__

    def recording_init(self, *args, **kwargs):
        orig_init(self, *args, **kwargs)
        created.append(self)

    Universe.__init__ = recording_init
    try:
        yield
    finally:
        Universe.__init__ = orig_init

    from .races import find_message_races
    from .runtime import check_runtime_leaks

    problems = []
    for universe in created:
        report = check_runtime_leaks(universe)
        problems.extend(report.errors)
        tracer = universe.tracer
        if tracer is not None and \
                request.node.get_closest_marker("allow_races") is None:
            for race in find_message_races(tracer, allow_truncated=True):
                problems.append(str(race))
    if problems:
        pytest.fail("mpi runtime audit failed:\n  "
                    + "\n  ".join(problems), pytrace=False)
