"""Pytest plugin: automatic leak/race audit for mpi-layer tests.

Registered in ``pytest.ini`` (``-p repro.analysis.pytest_plugin``).  For
every test under ``tests/mpi/`` it records the universes the test creates
and, after the test body finishes, runs:

* :func:`repro.analysis.runtime.check_runtime_leaks` — leak *errors* fail
  the test;
* :func:`repro.analysis.races.find_message_races` on the universe's tracer
  (when tracing was on) — detected message races fail the test unless it
  is marked ``@pytest.mark.allow_races`` (for tests that exercise races
  deliberately).

The audit is intentionally scoped to ``tests/mpi``: higher-layer tests
drive whole applications where post-run communicator state is part of the
scenario under test.

Tests under ``tests/ft/`` get a second, cheaper guard: before the first
such test runs, the protocol-model verifier
(:func:`repro.analysis.model.verify_modes`) model-checks the CR/RC/AC
recovery skeletons at the default rank bound with single-failure
injection.  If any mode has a reachable deadlock or a ULF016-ULF020
protocol violation, every ft test fails immediately with the
counterexample summary — an edit that breaks the recovery protocol is
reported at the protocol level, not as a confusing hang or wrong-answer
assertion three layers up.  The check runs once per session (it is pure
in the source) and is smoke-level by design: ``repro verify-protocol``
prints the full per-rank timelines.
"""

from __future__ import annotations

import pytest

_AUDIT_PATH = "tests/mpi/"
_FT_PATH = "tests/ft/"

#: session cache for the one-shot protocol conformance check:
#: None = not yet run, [] = clean, else the failure messages.
_protocol_problems = None


def _ft_protocol_problems():
    global _protocol_problems
    if _protocol_problems is None:
        from repro.analysis.model import (ExtractError, ModelError,
                                          verify_modes)
        problems = []
        try:
            for rep in verify_modes():
                if not rep.ok:
                    lines = [f"[{rep.mode}] {v.rule}: {v.message}"
                             for v in rep.result.violations]
                    problems.append(
                        f"{rep.mode} recovery protocol broken "
                        f"({rep.source.name}):\n    " + "\n    ".join(lines))
        except (ExtractError, ModelError) as exc:
            problems.append(f"protocol model extraction failed: {exc}")
        _protocol_problems = problems
    return _protocol_problems


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "allow_races: suppress the automatic message-race audit for tests "
        "that create races on purpose")
    config.addinivalue_line(
        "markers",
        "allow_protocol_break: suppress the ft-layer recovery-protocol "
        "conformance gate for tests that break the protocol on purpose")


@pytest.fixture(autouse=True)
def ft_protocol_conformance(request):
    """Fail ft-layer tests up front when the shipped recovery protocol
    no longer model-checks clean (deadlock or ULF016-ULF020)."""
    nodeid = request.node.nodeid.replace("\\", "/")
    if _FT_PATH in nodeid and \
            request.node.get_closest_marker("allow_protocol_break") is None:
        problems = _ft_protocol_problems()
        if problems:
            pytest.fail("recovery-protocol conformance failed (run "
                        "'repro verify-protocol' for timelines):\n  "
                        + "\n  ".join(problems), pytrace=False)
    yield


@pytest.fixture(autouse=True)
def mpi_runtime_audit(request):
    """Collect every Universe the test creates; audit them afterwards."""
    nodeid = request.node.nodeid.replace("\\", "/")
    if _AUDIT_PATH not in nodeid:
        yield
        return

    from repro.mpi.universe import Universe

    created = []
    orig_init = Universe.__init__

    def recording_init(self, *args, **kwargs):
        orig_init(self, *args, **kwargs)
        created.append(self)

    Universe.__init__ = recording_init
    try:
        yield
    finally:
        Universe.__init__ = orig_init

    from .races import find_message_races
    from .runtime import check_runtime_leaks

    problems = []
    for universe in created:
        report = check_runtime_leaks(universe)
        problems.extend(report.errors)
        tracer = universe.tracer
        if tracer is not None and \
                request.node.get_closest_marker("allow_races") is None:
            for race in find_message_races(tracer, allow_truncated=True):
                problems.append(str(race))
    if problems:
        pytest.fail("mpi runtime audit failed:\n  "
                    + "\n  ".join(problems), pytrace=False)
