"""Happens-before analysis: message races and deadlock explanation.

Two independent tools live here:

* :func:`find_message_races` — a vector-clock happens-before checker over a
  recorded trace.  For every wildcard (``ANY_SOURCE``) receive it finds
  *other* sends that could equally have matched but are causally concurrent
  with the send that did: a message race.  The simulator itself resolves
  such races deterministically (earliest arrival wins), but on a real MPI
  the outcome is timing-dependent — exactly the class of bug that only
  shows up at scale.

* :func:`format_wait_for_graph` — given the blocked tasks of a
  :class:`~repro.simkernel.errors.DeadlockError`, reconstructs who waits on
  whom (via the ``waits_for`` annotations the MPI layer leaves on its
  futures) and renders the wait-for graph including any cycle.  The engine
  attaches this to the deadlock message.

Happens-before edges used by the vector clocks:

1. program order within each actor;
2. send -> matching receive (matched FIFO per (comm, src, dst, tag),
   mirroring the simulator's eager matching);
3. collective completion: every participant's next event happens after all
   arrivals of that rendezvous (the k-th collective call of each member of
   a communicator joins one rendezvous, per channel, like the engine).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .events import ParsedEvent, parse_events

__all__ = ["MessageRace", "find_message_races", "format_races",
           "build_wait_for_graph", "format_wait_for_graph"]


# ----------------------------------------------------------------------
# vector clocks
# ----------------------------------------------------------------------
class _VC(dict):
    """Vector clock: actor -> counter, missing entries are 0."""

    def join(self, other: "_VC") -> None:
        for k, v in other.items():
            if v > self.get(k, 0):
                self[k] = v

    def happens_before(self, other: "_VC") -> bool:
        """True iff self < other (strictly, component-wise <=, one <)."""
        at_most = all(v <= other.get(k, 0) for k, v in self.items())
        return at_most and self != other

    def concurrent(self, other: "_VC") -> bool:
        return not self.happens_before(other) \
            and not other.happens_before(self)


class _CollGroup:
    """Accumulates arrival clocks of one rendezvous; the join is applied
    to each participant's *next* event (by then all arrivals are in)."""

    __slots__ = ("acc",)

    def __init__(self):
        self.acc = _VC()


def _channel_of(op: str) -> str:
    # agree/shrink rendezvous on their own channels, like the simulator
    return op if op in ("agree", "shrink") else "coll"


def compute_vector_clocks(parsed: List[ParsedEvent]) -> Dict[int, _VC]:
    """Vector clock of each event (keyed by event index)."""
    clocks: Dict[str, _VC] = defaultdict(_VC)
    pending_join: Dict[str, List[_CollGroup]] = defaultdict(list)
    groups: Dict[tuple, _CollGroup] = {}
    occurrence: Dict[tuple, int] = defaultdict(int)
    send_vc_queue: Dict[tuple, List[Tuple[int, _VC]]] = defaultdict(list)
    out: Dict[int, _VC] = {}

    for ev in parsed:
        actor = ev.actor
        vc = clocks[actor]
        for group in pending_join.pop(actor, ()):
            vc.join(group.acc)
        vc[actor] = vc.get(actor, 0) + 1

        if ev.kind == "send" and ev.comm is not None and not ev.inter:
            send_vc_queue[(ev.comm, ev.src, ev.dst, ev.tag)].append(
                (ev.index, _VC(vc)))
        elif ev.kind == "recv" and ev.comm is not None and not ev.inter:
            queue = send_vc_queue.get((ev.comm, ev.src, ev.dst, ev.tag))
            if queue:
                _idx, send_vc = queue.pop(0)
                vc.join(send_vc)
        elif ev.kind == "coll" and ev.comm is not None and ev.op is not None:
            # bridge-local agrees (parent vs child side) are distinct
            # rendezvous we cannot tell apart from the trace: treat them
            # as local events rather than inventing cross-side ordering.
            if not (ev.op == "agree" and ev.comm.endswith(".bridge")):
                chan = _channel_of(ev.op)
                okey = (actor, ev.comm, chan)
                k = occurrence[okey]
                occurrence[okey] = k + 1
                gkey = (ev.comm, chan, ev.op, k)
                group = groups.get(gkey)
                if group is None:
                    group = groups[gkey] = _CollGroup()
                group.acc.join(vc)
                pending_join[actor].append(group)

        out[ev.index] = _VC(vc)
    return out


# ----------------------------------------------------------------------
# message races
# ----------------------------------------------------------------------
@dataclass
class MessageRace:
    """Two causally concurrent sends competed for one wildcard receive."""
    comm: str
    recv: ParsedEvent           #: the ANY_SOURCE receive
    matched_send: ParsedEvent   #: the send that won
    racing_send: ParsedEvent    #: a concurrent send that could have won

    def __str__(self) -> str:
        return (f"message race on {self.comm}: wildcard recv by "
                f"{self.recv.actor} (t={self.recv.time:.6f}) matched send "
                f"{self.matched_send.src}->{self.matched_send.dst} "
                f"tag={self.matched_send.tag} "
                f"(t={self.matched_send.time:.6f}) but send "
                f"{self.racing_send.src}->{self.racing_send.dst} "
                f"tag={self.racing_send.tag} "
                f"(t={self.racing_send.time:.6f}) is concurrent and could "
                "equally have matched")


def find_message_races(trace, *, allow_truncated: bool = False
                       ) -> List[MessageRace]:
    """Detect message races on wildcard receives in a recorded trace."""
    parsed = parse_events(trace, allow_truncated=allow_truncated)
    vcs = compute_vector_clocks(parsed)
    sends = [e for e in parsed
             if e.kind == "send" and e.comm is not None and not e.inter]
    races: List[MessageRace] = []
    matched: Dict[tuple, int] = defaultdict(int)  # FIFO cursor per channel

    for ev in parsed:
        if ev.kind != "recv" or not ev.anysrc or ev.comm is None or ev.inter:
            continue
        # identify the matched send (FIFO per (comm, src, dst, tag))
        ckey = (ev.comm, ev.src, ev.dst, ev.tag)
        candidates = [s for s in sends
                      if (s.comm, s.src, s.dst, s.tag) == ckey]
        cursor = matched[ckey]
        matched[ckey] += 1
        if cursor >= len(candidates):
            continue  # unmatched (shouldn't happen on complete traces)
        winner = candidates[cursor]
        wvc = vcs[winner.index]
        for s in sends:
            if s.comm != ev.comm or s.dst != ev.dst or s.src == winner.src:
                continue
            if not ev.anytag and s.tag != ev.tag:
                continue
            if s.index > ev.index:
                continue  # posted after the receive completed
            if wvc.concurrent(vcs[s.index]):
                races.append(MessageRace(ev.comm, ev, winner, s))
    return races


def format_races(races: List[MessageRace]) -> str:
    if not races:
        return "race check: clean"
    lines = [f"race check: {len(races)} message race(s)"]
    lines += [f"  {r}" for r in races]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# wait-for graph (deadlock explanation)
# ----------------------------------------------------------------------
def _task_of(proc) -> Optional[object]:
    return getattr(proc, "task", None)


def _blockers(task, info) -> List[Tuple[object, str]]:
    """(blocking task, reason) pairs for one blocked task's dependency."""
    state = info["state"]
    kind = info["kind"]
    proc = task.meta.get("proc")
    out: List[Tuple[object, str]] = []
    if kind == "recv":
        source, tag = info["source"], info["tag"]
        if info.get("inter"):
            _local, remote = state.local_remote(proc)
            pool = list(remote)
        else:
            pool = list(state.procs)
        wildcard = source < 0
        reason = (f"recv(src={'ANY' if wildcard else source}, "
                  f"tag={'ANY' if tag < 0 else tag}) on {state.name}")
        if wildcard:
            for p in pool:
                if p is not proc and not p.dead and _task_of(p) is not None:
                    out.append((_task_of(p), reason))
        elif 0 <= source < len(pool):
            p = pool[source]
            if _task_of(p) is not None:
                out.append((_task_of(p), reason))
    elif kind == "coll":
        rv = info["rv"]
        reason = f"{info['op']} on {state.name}"
        for m in rv.members:
            if m.uid not in rv.arrivals and not m.dead \
                    and _task_of(m) is not None:
                out.append((_task_of(m), reason))
    elif kind == "batchcoll":
        rnd = info["rnd"]
        reason = f"{info['op']} on {state.name}"
        arrived = set(rnd.arrived)
        for r, p in enumerate(state.procs):
            if r not in arrived and not p.dead and _task_of(p) is not None:
                out.append((_task_of(p), reason))
    return out


def _reconstruct_waits_for(task, fut) -> Optional[dict]:
    """Rebuild the wait info for an unannotated future.

    With ``Universe(diagnostics=False)`` the MPI layer skips the per-call
    ``waits_for`` bookkeeping, so at deadlock time we search the runtime
    registries instead: a future blocked in a receive is referenced by
    exactly one :class:`~repro.mpi.matching.PendingRecv` on some
    communicator's message board, and a future blocked in a collective is
    referenced by exactly one open rendezvous arrival.  Both searches walk
    only this process's communicators — cold-path work paid once per
    deadlock, never per message.
    """
    proc = task.meta.get("proc")
    if proc is None:
        return None
    for state in getattr(proc, "comm_states", ()):
        board = getattr(state, "board", None)
        if board is not None:
            for buckets in getattr(board, "_waiting", {}).values():
                for q in buckets.values():
                    for r in q:
                        if r.future is fut:
                            info = {"kind": "recv", "state": state,
                                    "source": r.source, "tag": r.tag}
                            if hasattr(state, "group_a"):  # intercomm
                                info["inter"] = True
                            return info
        rtable = getattr(state, "rtable", None)
        if rtable is not None:
            for rv in getattr(rtable, "open", {}).values():
                entry = rv.arrivals.get(proc.uid)
                if entry is not None and entry[3] is fut:
                    return {"kind": "coll", "op": rv.op_name,
                            "state": state, "rv": rv}
        batch = getattr(state, "batch", None)
        if batch is not None:
            # batch fast path: every parked rank of an open round waits on
            # the round's single shared future
            for op, rnd in getattr(batch, "open", {}).items():
                if rnd.fut is fut:
                    return {"kind": "batchcoll", "op": op,
                            "state": state, "rnd": rnd}
    return None


def build_wait_for_graph(blocked_tasks) -> Dict[object, List[Tuple[object, str]]]:
    """Map each blocked task to the tasks it is waiting on (with reasons).

    Dependencies come from the ``waits_for`` annotations the MPI layer
    sets on its futures when ``Universe(diagnostics=True)``; without
    annotations they are reconstructed from the message boards and open
    rendezvous.  Tasks whose dependency cannot be determined either way
    appear with an empty dependency list.
    """
    graph: Dict[object, List[Tuple[object, str]]] = {}
    for task in blocked_tasks:
        fut = task.waiting_on
        info = getattr(fut, "waits_for", None)
        try:
            if info is None:
                info = _reconstruct_waits_for(task, fut)
            if info is None:
                graph[task] = []
                continue
            graph[task] = _blockers(task, info)
        except Exception:  # noqa: ULF001 - must never mask the deadlock
            graph[task] = []
    return graph


def _find_cycle(graph) -> List[object]:
    """One cycle (as a task list), or [] when the graph is acyclic."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {t: WHITE for t in graph}
    stack: List[object] = []

    def dfs(node) -> Optional[List[object]]:
        color[node] = GREY
        stack.append(node)
        for succ, _reason in graph.get(node, ()):
            if succ not in graph:
                continue
            if color.get(succ) == GREY:
                return stack[stack.index(succ):] + [succ]
            if color.get(succ) == WHITE:
                found = dfs(succ)
                if found:
                    return found
        stack.pop()
        color[node] = BLACK
        return None

    for t in list(graph):
        if color[t] == WHITE:
            found = dfs(t)
            if found:
                return found
    return []


def format_wait_for_graph(blocked_tasks) -> str:
    """Human-readable wait-for graph for a set of blocked tasks."""
    graph = build_wait_for_graph(blocked_tasks)
    if not graph:
        return ""
    lines = ["wait-for graph:"]
    for task, deps in graph.items():
        if not deps:
            what = getattr(task.waiting_on, "label", None) or \
                repr(task.waiting_on)
            lines.append(f"  {task.name} waits on {what} "
                         "(no dependency info)")
            continue
        reason = deps[0][1]
        names = ", ".join(sorted({d[0].name for d in deps}))
        lines.append(f"  {task.name} waits for {reason} <- blocked on: "
                     f"{names}")
    cycle = _find_cycle(graph)
    if cycle:
        lines.append("  cycle: " + " -> ".join(t.name for t in cycle))
    return "\n".join(lines)
