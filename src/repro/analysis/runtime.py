"""Post-run leak audit of a simulated MPI universe.

After a simulation finishes, every resource a rank allocated should be
either consumed or torn down by the failure machinery.  This module walks
the live object graph of a :class:`~repro.mpi.universe.Universe` and
reports what was left behind:

*errors* (a rank finished cleanly while still owning the resource):

* a pending receive (``irecv`` posted, never awaited or cancelled) whose
  owning task is DONE;
* an open rendezvous holding the arrival of a task that is DONE — the
  rank joined a collective and then returned without its completion.

*warnings* (suspicious but sometimes intentional):

* messages posted but never received (e.g. sends raced with a failure);
* communicators whose every member is dead yet still holding state.

The pytest plugin (:mod:`repro.analysis.pytest_plugin`) fails mpi-layer
tests on errors; warnings are attached to the report only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from ..simkernel.task import TaskState

__all__ = ["LeakReport", "check_runtime_leaks"]

_FINISHED_CLEAN = (TaskState.DONE,)


@dataclass
class LeakReport:
    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.errors and not self.warnings

    def __str__(self) -> str:
        if self.clean:
            return "leak check: clean"
        lines = [f"leak check: {len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s)"]
        lines += [f"  error: {e}" for e in self.errors]
        lines += [f"  warning: {w}" for w in self.warnings]
        return "\n".join(lines)


def _comm_states(universe) -> list:
    seen: Set[int] = set()
    states = []
    for proc in universe.all_procs.values():
        for state in proc.comm_states:
            if id(state) not in seen:
                seen.add(id(state))
                states.append(state)
    return states


def _owner_of(universe, state, dst):
    """Proc owning a board slot: rank-indexed on intracommunicators,
    uid-keyed on intercommunicators."""
    procs = getattr(state, "procs", None)
    if procs is not None:
        return procs[dst] if 0 <= dst < len(procs) else None
    return universe.all_procs.get(dst)


def check_runtime_leaks(universe) -> LeakReport:
    """Audit a finished (or stopped) universe for leaked MPI resources."""
    report = LeakReport()
    for state in _comm_states(universe):
        name = state.name
        # pending receives whose owner already returned
        for dst, queue in getattr(state.board, "waiting", {}).items():
            for recv in queue:
                proc = _owner_of(universe, state, dst)
                task = getattr(proc, "task", None)
                if task is not None and task.state in _FINISHED_CLEAN:
                    report.errors.append(
                        f"{name}: {proc.name} finished with a pending "
                        f"receive (source={recv.source}, tag={recv.tag}) "
                        "still registered — irecv never awaited or "
                        "cancelled")
        # open rendezvous held by finished tasks
        for key, rv in getattr(state.rtable, "open", {}).items():
            if rv.completed or rv.doomed is not None:
                continue
            for uid, (proc, _v, _t, _f) in rv.arrivals.items():
                task = getattr(proc, "task", None)
                if task is not None and task.state in _FINISHED_CLEAN:
                    report.errors.append(
                        f"{name}: {proc.name} finished inside open "
                        f"collective '{rv.op_name}' — the rendezvous can "
                        "never complete for the remaining members")
        # undelivered messages
        n_posted = sum(len(q) for q in
                       getattr(state.board, "posted", {}).values())
        if n_posted:
            report.warnings.append(
                f"{name}: {n_posted} message(s) posted but never received")
        # zombie communicator state
        members = getattr(state, "procs", None) or state.all_procs
        if members and all(p.dead for p in members):
            report.warnings.append(
                f"{name}: every member is dead but the communicator still "
                "holds state (missing free())")
    return report
