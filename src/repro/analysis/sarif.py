"""SARIF 2.1.0 emission for lint results (``lint --format sarif``).

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard CI systems ingest to turn linter findings into inline
annotations — GitHub code scanning, VS Code's SARIF viewer, etc.  The
document shape used here is the minimal conforming subset:

* one ``run`` with a ``tool.driver`` carrying the full ULF rule catalog
  (id, short description, default severity level), so consumers can
  render rule metadata even for rules with no findings;
* one ``result`` per violation with ``ruleId``, ``level``
  (``error``/``warning``, mapped from the linter's severity),
  ``message.text``, and a ``physicalLocation`` with an artifact URI and
  a 1-based start line/column;
* ``# noqa``-suppressed findings (when the linter is run with
  ``keep_suppressed=True``) are emitted as results carrying a
  ``suppressions: [{"kind": "inSource"}]`` object rather than dropped,
  so CI dashboards show the suppression audit trail.

:func:`validate_sarif` asserts that shape structurally — it is what the
schema tests and the CI gate call; keeping the validator next to the
emitter means the contract cannot drift silently.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .linter import LintViolation, RULES, SEVERITY

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA", "to_sarif", "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

_TOOL_NAME = "repro-lint"


def _rule_entries() -> List[dict]:
    return [{
        "id": rule,
        "shortDescription": {"text": summary},
        "defaultConfiguration": {
            "level": SEVERITY.get(rule, "error"),
        },
    } for rule, summary in sorted(RULES.items())]


def to_sarif(violations: Iterable[LintViolation],
             n_files: Optional[int] = None) -> dict:
    """Render violations as a SARIF 2.1.0 document (a plain dict)."""
    results = []
    for v in violations:
        res = {
            "ruleId": v.rule,
            "level": v.severity,
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": str(v.path)},
                    "region": {"startLine": v.line, "startColumn": v.col},
                },
            }],
        }
        if v.suppressed:
            res["suppressions"] = [{"kind": "inSource"}]
        results.append(res)
    run = {
        "tool": {
            "driver": {
                "name": _TOOL_NAME,
                "rules": _rule_entries(),
            },
        },
        "results": results,
    }
    if n_files is not None:
        run["properties"] = {"filesAnalyzed": n_files}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def validate_sarif(doc: dict) -> None:
    """Structurally validate a SARIF 2.1.0 document; raises
    ``ValueError`` naming the first offending element."""
    def need(cond: bool, what: str) -> None:
        if not cond:
            raise ValueError(f"invalid SARIF: {what}")

    need(isinstance(doc, dict), "document is not an object")
    need(doc.get("version") == SARIF_VERSION,
         f"version must be {SARIF_VERSION!r}")
    need(isinstance(doc.get("$schema"), str) and
         "sarif-2.1.0" in doc["$schema"], "$schema must point at 2.1.0")
    runs = doc.get("runs")
    need(isinstance(runs, list) and runs, "runs must be a non-empty list")
    for run in runs:
        need(isinstance(run, dict), "run is not an object")
        driver = run.get("tool", {}).get("driver")
        need(isinstance(driver, dict), "run.tool.driver missing")
        need(isinstance(driver.get("name"), str) and driver["name"],
             "tool.driver.name missing")
        rules = driver.get("rules", [])
        need(isinstance(rules, list), "tool.driver.rules must be a list")
        ids = set()
        for rule in rules:
            need(isinstance(rule.get("id"), str) and rule["id"],
                 "rule without id")
            need(rule["id"] not in ids, f"duplicate rule id {rule['id']}")
            ids.add(rule["id"])
            need(isinstance(rule.get("shortDescription", {}).get("text"),
                            str), f"rule {rule['id']} lacks "
                 "shortDescription.text")
        results = run.get("results")
        need(isinstance(results, list), "run.results must be a list")
        for res in results:
            need(isinstance(res.get("ruleId"), str) and res["ruleId"],
                 "result without ruleId")
            need(res.get("level") in ("error", "warning", "note", "none"),
                 f"result {res.get('ruleId')}: bad level "
                 f"{res.get('level')!r}")
            need(isinstance(res.get("message", {}).get("text"), str),
                 f"result {res.get('ruleId')}: message.text missing")
            if "suppressions" in res:
                sups = res["suppressions"]
                need(isinstance(sups, list) and sups,
                     f"result {res.get('ruleId')}: suppressions must be "
                     "a non-empty list when present")
                for sup in sups:
                    need(isinstance(sup, dict) and
                         sup.get("kind") in ("inSource", "external"),
                         f"result {res.get('ruleId')}: suppression kind "
                         f"must be inSource/external, got "
                         f"{sup.get('kind')!r}")
            for loc in res.get("locations", []):
                phys = loc.get("physicalLocation", {})
                art = phys.get("artifactLocation", {})
                need(isinstance(art.get("uri"), str),
                     "physicalLocation without artifactLocation.uri")
                region = phys.get("region", {})
                need(isinstance(region.get("startLine"), int)
                     and region["startLine"] >= 1,
                     "region.startLine must be a positive integer")
