"""Command-line interface.

::

    python -m repro run --technique AC --n 8 --steps 64 --failures 2
    python -m repro run --technique CR --recovery-mode shrink --failures 1
    python -m repro experiment fig10 --quick [--json FILE] [--workers N]
                                     [--cache DIR]
    python -m repro experiment modes --quick --json obs/modes.json
    python -m repro serve --port 8642 --cache /var/cache/repro
    python -m repro cache stats|verify|gc --cache /var/cache/repro
    python -m repro describe --technique RC --n 8
    python -m repro lint [paths ...] [--format json] [--select ULF006]
    python -m repro verify-protocol [--modes CR,RC] [--ranks 4]
    python -m repro analyze-trace trace.jsonl
    python -m repro timeline trace.jsonl -o timeline.json

``run`` executes one application run (optionally with real failures) and
prints the metrics; ``experiment`` regenerates one paper table/figure
(``--json`` writes the machine-readable document with per-phase timing
breakdowns); ``serve`` exposes the results service HTTP API over a
shared ``--cache`` store (cold experiments answer 202 and compute in the
background; see :mod:`repro.service.server`); ``cache`` inspects and
maintains such a store (``stats``/``verify``/``gc``, exit codes on the
lint contract); ``describe`` prints the combination scheme and process
layout; ``lint`` runs the ULF001-ULF020 static + dataflow + protocol
model checks; ``verify-protocol`` extracts the recovery skeletons
(CR/RC/AC data recovery plus the SHRINK and NC repair modes) and
model-checks them over every failure placement, printing
per-rank counterexample timelines on failure; ``analyze-trace`` replays
a recorded event trace through the protocol and race analyzers;
``timeline`` converts a trace to the Chrome trace_event format (load in
Perfetto / chrome://tracing).  Record traces with ``run --trace FILE``.

``lint``, ``verify-protocol`` and ``analyze-trace`` exit codes are a
stable contract for CI: 0 = clean, 1 = violations/findings, 2 = usage
error (missing path, unknown rule code or mode, unreadable trace).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .core import (AppConfig, baseline_solve_time, plan_failures, run_app)
from .machine.presets import PRESETS


def _machine(name: str):
    try:
        return PRESETS[name]
    except KeyError:
        raise SystemExit(
            f"unknown machine {name!r}; choose from {sorted(PRESETS)}")


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--n", type=int, default=7, help="full grid level (2^n)")
    p.add_argument("--level", type=int, default=4, help="combination level")
    p.add_argument("--technique", default="AC", choices=["CR", "RC", "AC"],
                   help="data recovery technique")
    p.add_argument("--steps", type=int, default=32, help="timesteps")
    p.add_argument("--diag-procs", type=int, default=4,
                   help="processes per diagonal grid")
    p.add_argument("--machine", default="OPL",
                   help=f"cluster preset {sorted(PRESETS)}")
    p.add_argument("--decomposition", default="1d", choices=["1d", "2d"])
    p.add_argument("--recovery-mode", default="respawn",
                   choices=["respawn", "shrink", "nc"],
                   help="how the world is repaired after a failure: the "
                        "paper's global respawn, shrink-in-place, or "
                        "non-collective per-grid repair")


def cmd_run(args) -> int:
    machine = _machine(args.machine)

    def make_cfg():
        return AppConfig(
            n=args.n, level=args.level, technique_code=args.technique,
            recovery_mode=args.recovery_mode,
            steps=args.steps, diag_procs=args.diag_procs,
            checkpoint_count=args.checkpoints,
            decomposition=args.decomposition,
            compute_scale=args.compute_scale,
            simulated_lost_gids=tuple(args.lose or ()))

    kills = ()
    if args.failures:
        t_solve = baseline_solve_time(make_cfg(), machine)
        kills = plan_failures(make_cfg(), args.failures,
                              at=max(t_solve * args.failure_fraction, 1e-9),
                              seed=args.seed)
    tracer = None
    if args.trace:
        from .mpi.tracing import Tracer
        tracer = Tracer(max_events=args.trace_max_events)
    metrics = run_app(make_cfg(), machine, kills=kills, tracer=tracer)
    if tracer is not None:
        tracer.save(args.trace)
        print(f"trace: {len(tracer.events)} event(s) "
              f"({tracer.dropped} dropped) -> {args.trace}", file=sys.stderr)
    if args.json:
        print(json.dumps(metrics.to_dict(), default=str, indent=2))
    else:
        m = metrics
        print(f"technique          : {m.technique} on {m.machine}")
        print(f"recovery mode      : {m.recovery_mode}")
        print(f"world size         : {m.world_size}")
        print(f"failures           : {m.n_failures} "
              f"(ranks {m.failed_ranks}, grids {m.lost_gids})")
        print(f"l1 error           : {m.error_l1:.6e}")
        print(f"total time         : {m.t_total:.4f} s")
        print(f"  solve            : {m.t_solve:.4f} s")
        print(f"  reconstruction   : {m.t_reconstruct:.4f} s "
              f"(shrink {m.t_shrink:.3f}, spawn {m.t_spawn:.3f}, "
              f"agree {m.t_agree:.3f}, merge {m.t_merge:.3f})")
        print(f"  data recovery    : {m.t_recovery:.6f} s")
        print(f"  combination      : {m.t_combine:.6f} s")
        if m.checkpoint_writes:
            print(f"  checkpoints      : {m.checkpoint_writes} writes "
                  f"({m.checkpoint_write_time:.3f} s), "
                  f"recompute {m.recompute_steps} steps")
        if m.phase_breakdown:
            from .obs.spans import PHASES
            order = {p: i for i, p in enumerate(PHASES)}
            print("phase breakdown (critical path):")
            for phase in sorted(m.phase_breakdown,
                                key=lambda p: order.get(p, len(order))):
                print(f"  {phase:16s} : {m.phase_breakdown[phase]:.6f} s")
    return 0


def cmd_experiment(args) -> int:
    import time

    from .experiments.registry import format_experiment, run_experiment
    from .sweep import RunCache, SweepRunner

    runner = SweepRunner(workers=args.workers,
                         cache=RunCache(directory=args.cache))
    name = args.name
    t0 = time.perf_counter()  # noqa: ULF002 — host-side sweep timing, not simulated time
    points = run_experiment(name, bool(args.quick), runner)
    wall = time.perf_counter() - t0  # noqa: ULF002 — host-side sweep timing
    if args.json:
        from .experiments.report import write_experiment_json
        # wall_s and workers vary run to run; cache stats are functions of
        # the batch alone (strip the former when diffing documents)
        stats = runner.cache.stats()
        write_experiment_json(args.json, name, points,
                              params={"quick": bool(args.quick),
                                      "workers": runner.workers,
                                      "wall_s": wall,
                                      "cache_hits": stats["hits"],
                                      "cache_misses": stats["misses"]})
        if args.json != "-":
            print(f"wrote {args.json}", file=sys.stderr)
    else:
        print(format_experiment(name, points))
        stats = runner.cache.stats()
        print(f"[sweep] workers={runner.workers} wall={wall:.2f}s "
              f"cache: {stats['hits']} hit(s), {stats['misses']} miss(es)",
              file=sys.stderr)
    return 0


def cmd_serve(args) -> int:
    from .service.server import serve
    return serve(host=args.host, port=args.port, cache_dir=args.cache,
                 queue_workers=args.queue_workers,
                 max_pending=args.max_pending,
                 sweep_workers=args.workers, quiet=args.quiet)


def cmd_cache(args) -> int:
    # exit codes follow the lint contract: 0 clean, 1 findings, 2 usage
    import os

    from .service.store import SharedStore

    if not os.path.isdir(args.cache):
        print(f"error: no such cache directory: {args.cache}",
              file=sys.stderr)
        return 2
    store = SharedStore(args.cache)
    if args.action == "stats":
        stats = store.stats().to_dict()
        if args.json:
            print(json.dumps(stats, indent=2))
        else:
            for k, v in stats.items():
                print(f"{k:>16}: {v}")
        return 0
    if args.action == "verify":
        report = store.verify(quarantine=args.quarantine)
        out = {"ok": len(report["ok"]), "corrupt": report["corrupt"],
               "quarantined": bool(args.quarantine and report["corrupt"])}
        if args.json:
            print(json.dumps(out, indent=2))
        else:
            print(f"verified {out['ok']} entr(ies) ok, "
                  f"{len(report['corrupt'])} corrupt"
                  + (" (quarantined)" if out["quarantined"] else ""))
            for key in report["corrupt"]:
                print(f"  corrupt: {key}")
        return 1 if report["corrupt"] else 0
    if args.action == "gc":
        report = store.gc()
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(f"gc: removed {report['tmp_removed']} tmp file(s) and "
                  f"{report['corrupt_removed']} quarantined blob(s), "
                  f"migrated {report['migrated']} flat entr(ies) into "
                  f"shards")
        return 0
    raise SystemExit(f"unknown cache action {args.action}")  # pragma: no cover


def cmd_timeline(args) -> int:
    from .obs.schema import SchemaError, validate_chrome_trace
    from .obs.timeline import export_timeline
    try:
        doc = export_timeline(args.file, args.output)
    except FileNotFoundError:
        raise SystemExit(f"error: no such trace file: {args.file}")
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"error: {args.file} is not a trace file: {exc}")
    try:
        validate_chrome_trace(doc)
    except SchemaError as exc:
        print(f"warning: {exc} (timeline written anyway; the trace may "
              f"lack span events — re-record with a run that exercises "
              f"recovery)", file=sys.stderr)
    n = len(doc.get("traceEvents", ()))
    print(f"{args.output}: {n} trace event(s) "
          f"(open in Perfetto or chrome://tracing)", file=sys.stderr)
    return 0


def cmd_describe(args) -> int:
    cfg = AppConfig(n=args.n, level=args.level,
                    technique_code=args.technique,
                    diag_procs=args.diag_procs,
                    decomposition=args.decomposition)
    scheme = cfg.scheme()
    layout = cfg.layout()
    print(scheme.describe())
    print()
    print(layout.describe())
    if cfg.technique_code.upper() == "RC":
        print(f"\nRC replica-pair constraints: {scheme.rc_conflict_pairs()}")
    return 0


def cmd_lint(args) -> int:
    from .analysis import (SEVERITY, default_lint_paths, format_report,
                           lint_paths, RULES)
    if args.rules:
        for rule, summary in sorted(RULES.items()):
            print(f"{rule}  [{SEVERITY.get(rule, 'error'):7s}] {summary}")
        return 0

    import re
    known = set(RULES) | {"ULF000"}
    range_re = re.compile(r"^([A-Z]+)(\d+)-(?:([A-Z]+))?(\d+)$")

    def _expand_range(code: str) -> Optional[set]:
        """``ULF011-ULF015`` (or ``ULF011-015``) -> the known rules in
        that inclusive numeric span; None when not a range."""
        m = range_re.match(code)
        if m is None:
            return None
        prefix, lo, prefix2, hi = m.groups()
        if prefix2 is not None and prefix2 != prefix:
            return None
        lo_n, hi_n = int(lo), int(hi)
        if lo_n > hi_n:
            return None
        span = {f"{prefix}{n:0{len(lo)}d}" for n in range(lo_n, hi_n + 1)}
        endpoints = {f"{prefix}{lo}", f"{prefix}{hi}"}
        if not endpoints <= known:
            return None  # reported as unknown by the caller
        return span & known

    def _codes(raw: Optional[List[str]], flag_name: str) -> Optional[set]:
        """Normalise repeated/comma-separated rule codes and ranges
        (``ULF011-ULF015``); exit 2 on junk."""
        if not raw:
            return None
        codes: set = set()
        unknown: set = set()
        for item in raw:
            for c in item.split(","):
                c = c.strip().upper()
                if not c:
                    continue
                span = _expand_range(c)
                if span is not None:
                    codes |= span
                elif c in known:
                    codes.add(c)
                else:
                    unknown.add(c)
        if unknown:
            print(f"error: {flag_name}: unknown rule(s) "
                  f"{', '.join(sorted(unknown))}; see --rules",
                  file=sys.stderr)
            raise SystemExit(2)
        return codes

    selected = _codes(args.select, "--select")
    ignored = _codes(args.ignore, "--ignore")

    paths = args.paths or default_lint_paths()
    import os
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        for p in missing:
            print(f"error: no such file or directory: {p}", file=sys.stderr)
        return 2
    # SARIF keeps noqa-suppressed findings (emitted with a `suppressions`
    # object — the audit trail); text/json and the exit code see only the
    # active ones.
    violations = lint_paths(paths, keep_suppressed=(args.format == "sarif"))
    # ULF000 (syntax error) always surfaces: a file the linter cannot
    # parse was not checked against whatever the user selected
    if selected is not None:
        violations = [v for v in violations
                      if v.rule in selected or v.rule == "ULF000"]
    if ignored is not None:
        violations = [v for v in violations if v.rule not in ignored]
    active = [v for v in violations if not v.suppressed]
    from .analysis.linter import _iter_py_files
    n_files = len(_iter_py_files(paths))
    if args.format == "json":
        print(json.dumps({
            "files": n_files,
            "violations": [v.to_dict() for v in violations],
            "counts": {
                "total": len(violations),
                "error": sum(v.severity == "error" for v in violations),
                "warning": sum(v.severity == "warning" for v in violations),
            },
        }, indent=2))
    elif args.format == "sarif":
        from .analysis.sarif import to_sarif, validate_sarif
        doc = to_sarif(violations, n_files=n_files)
        validate_sarif(doc)  # the emitter must never ship a bad document
        print(json.dumps(doc, indent=2))
    else:
        print(format_report(violations, n_files=n_files))
    return 1 if active else 0


def cmd_analyze_trace(args) -> int:
    # exit codes follow the lint contract: 0 clean, 1 findings, 2 usage
    from .analysis import (TruncatedTraceError, check_protocol,
                           find_message_races, format_races,
                           format_violations, recovery_episodes)
    from .mpi.tracing import Tracer
    try:
        trace = Tracer.load(args.file)
    except FileNotFoundError:
        print(f"error: no such trace file: {args.file}", file=sys.stderr)
        return 2
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        print(f"error: {args.file} is not a trace file: {exc}",
              file=sys.stderr)
        return 2
    print(f"{args.file}: {len(trace.events)} event(s)"
          + (f", {trace.dropped} dropped" if trace.dropped else ""))
    try:
        episodes = recovery_episodes(trace,
                                     allow_truncated=args.allow_truncated)
        violations = check_protocol(trace,
                                    allow_truncated=args.allow_truncated)
        races = find_message_races(trace,
                                   allow_truncated=args.allow_truncated)
    except TruncatedTraceError as exc:
        print(f"error: {exc} (or pass --allow-truncated)", file=sys.stderr)
        return 2
    if episodes:
        print(f"recovery episodes ({len(episodes)}):")
        for ep in episodes:
            print(f"  {ep.describe()}")
    print(format_violations(violations))
    print(format_races(races))
    return 1 if (violations or races) else 0


def cmd_verify_protocol(args) -> int:
    # exit codes follow the lint contract: 0 clean, 1 findings, 2 usage
    from .analysis.linter import LintViolation
    from .analysis.model import ExtractError, ModelError, verify_modes

    modes = None
    if args.modes:
        modes = [m.strip() for item in args.modes
                 for m in item.split(",") if m.strip()]
    try:
        reports = verify_modes(modes, ranks=args.ranks,
                               failures=args.failures)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ExtractError, ModelError) as exc:
        print(f"error: protocol verification could not complete: {exc}",
              file=sys.stderr)
        return 2

    violations = [
        LintViolation(v.rule, rep.source.path, v.lineno or rep.source.lineno,
                      1, f"[{rep.mode}] {v.message}")
        for rep in reports for v in rep.result.violations]
    if args.format == "json":
        print(json.dumps({
            "modes": [{
                "mode": rep.mode,
                "model": rep.source.name,
                "ranks": rep.source.model.ranks,
                "failures": rep.source.model.failures,
                "states": rep.result.states,
                "ok": rep.ok,
                "violations": [{
                    "rule": v.rule, "line": v.lineno,
                    "message": v.message, "timeline": v.timeline,
                } for v in rep.result.violations],
            } for rep in reports],
            "ok": not violations,
        }, indent=2))
    elif args.format == "sarif":
        from .analysis.sarif import to_sarif, validate_sarif
        doc = to_sarif(violations, n_files=len(reports))
        validate_sarif(doc)  # the emitter must never ship a bad document
        print(json.dumps(doc, indent=2))
    else:
        for rep in reports:
            print(f"{rep.mode}: {rep.result.summary()}")
            for v in rep.result.violations:
                print(f"  {v.rule} {rep.source.path}:{v.lineno}: "
                      f"{v.message}")
                if v.timeline:
                    print(v.timeline)
        clean = sum(rep.ok for rep in reports)
        if violations:
            print(f"verify-protocol: {len(violations)} violation(s) in "
                  f"{len(reports) - clean} of {len(reports)} mode(s)")
        else:
            print(f"verify-protocol: {clean} mode(s) deadlock-free")
    return 1 if violations else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerant sparse-grid PDE solver (IPDPSW 2014 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute one application run")
    _add_common(p_run)
    p_run.add_argument("--failures", type=int, default=0,
                       help="number of real process kills to inject")
    p_run.add_argument("--failure-fraction", type=float, default=0.5,
                       help="when to kill, as a fraction of solve time")
    p_run.add_argument("--lose", type=int, nargs="*",
                       help="grid ids to declare lost (simulated failures)")
    p_run.add_argument("--checkpoints", type=int, default=4,
                       help="CR checkpoint count (-1 = machine optimal)")
    p_run.add_argument("--compute-scale", type=float, default=1.0)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--json", action="store_true",
                       help="print metrics as JSON")
    p_run.add_argument("--trace", metavar="FILE",
                       help="record the MPI event stream to FILE (JSONL), "
                            "for 'analyze-trace'")
    p_run.add_argument("--trace-max-events", type=int, default=100_000,
                       help="trace ring-buffer bound")
    p_run.set_defaults(fn=cmd_run)

    p_exp = sub.add_parser("experiment", help="regenerate a paper figure")
    p_exp.add_argument("name",
                       choices=["table1", "fig8", "fig9", "fig10", "fig11",
                                "modes"])
    p_exp.add_argument("--quick", action="store_true",
                       help="small fast variant")
    p_exp.add_argument("--json", metavar="FILE",
                       help="write the machine-readable experiment document "
                            "with per-phase breakdowns ('-' = stdout)")
    p_exp.add_argument("--workers", type=int, default=None,
                       help="parallel sweep workers (default: REPRO_WORKERS "
                            "env var, else 1 = serial)")
    p_exp.add_argument("--cache", metavar="DIR", default=None,
                       help="persist the memoised run cache to DIR "
                            "(reruns with the same configs become hits)")
    p_exp.set_defaults(fn=cmd_experiment)

    p_srv = sub.add_parser(
        "serve",
        help="serve experiment/run JSON over HTTP from the shared cache")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8642,
                       help="listen port (0 = ephemeral; default 8642)")
    p_srv.add_argument("--cache", metavar="DIR", default=None,
                       help="shared on-disk store (sharded, multi-process "
                            "safe); omit for a per-server in-memory cache")
    p_srv.add_argument("--queue-workers", type=int, default=2,
                       help="background job workers (default 2)")
    p_srv.add_argument("--max-pending", type=int, default=32,
                       help="pending-job bound before 503 backpressure "
                            "(default 32)")
    p_srv.add_argument("--workers", type=int, default=1,
                       help="sweep workers per job (default 1; the cache "
                            "already deduplicates across jobs)")
    p_srv.add_argument("--quiet", action="store_true",
                       help="suppress per-request access logging")
    p_srv.set_defaults(fn=cmd_serve)

    p_cache = sub.add_parser(
        "cache", help="inspect or maintain a shared --cache directory")
    p_cache.add_argument("action", choices=["stats", "verify", "gc"],
                         help="stats: entry/byte/shard counts; verify: "
                              "load every blob and report corruption; "
                              "gc: drop tmp/quarantined files and migrate "
                              "pre-sharding flat entries")
    p_cache.add_argument("--cache", metavar="DIR", required=True,
                         help="the cache directory to operate on")
    p_cache.add_argument("--json", action="store_true",
                         help="machine-readable output")
    p_cache.add_argument("--quarantine", action="store_true",
                         help="with verify: move corrupt blobs aside")
    p_cache.set_defaults(fn=cmd_cache)

    p_desc = sub.add_parser("describe",
                            help="print scheme and process layout")
    _add_common(p_desc)
    p_desc.set_defaults(fn=cmd_describe)

    p_lint = sub.add_parser("lint",
                            help="static ULFM/simulation idiom checks")
    p_lint.add_argument("paths", nargs="*",
                        help="files/directories (default: the repro "
                             "package and examples/)")
    p_lint.add_argument("--rules", action="store_true",
                        help="list the rule catalog and exit")
    p_lint.add_argument("--format", default="text",
                        choices=["text", "json", "sarif"],
                        help="report format (json is machine-readable; "
                             "sarif emits SARIF 2.1.0 for CI code "
                             "scanning)")
    p_lint.add_argument("--select", action="append", metavar="RULE",
                        help="only report these rules (repeatable, "
                             "comma-separable, ranges like "
                             "ULF011-ULF015); syntax errors always "
                             "surface")
    p_lint.add_argument("--ignore", action="append", metavar="RULE",
                        help="drop these rules from the report "
                             "(repeatable, comma-separable, ranges "
                             "like ULF011-ULF015)")
    p_lint.set_defaults(fn=cmd_lint)

    p_vp = sub.add_parser(
        "verify-protocol",
        help="model-check the recovery protocol over all failure "
             "placements")
    p_vp.add_argument("--modes", action="append", metavar="MODE",
                      help="recovery modes to verify (CR, RC, AC, SHRINK, "
                           "NC; repeatable or comma-separated; default all)")
    p_vp.add_argument("--ranks", type=int, default=None,
                      help="override the annotated rank count")
    p_vp.add_argument("--failures", type=int, default=None,
                      help="override the annotated failure budget")
    p_vp.add_argument("--format", default="text",
                      choices=["text", "json", "sarif"],
                      help="report format (sarif emits SARIF 2.1.0)")
    p_vp.set_defaults(fn=cmd_verify_protocol)

    p_an = sub.add_parser("analyze-trace",
                          help="protocol + race analysis of a recorded "
                               "trace")
    p_an.add_argument("file", help="JSONL trace from 'run --trace'")
    p_an.add_argument("--allow-truncated", action="store_true",
                      help="analyze even if the recorder dropped events "
                           "(results may be unsound)")
    p_an.set_defaults(fn=cmd_analyze_trace)

    p_tl = sub.add_parser("timeline",
                          help="convert a trace to Chrome trace_event "
                               "JSON (Perfetto / chrome://tracing)")
    p_tl.add_argument("file", help="JSONL trace from 'run --trace'")
    p_tl.add_argument("-o", "--output", default="timeline.json",
                      help="output path (default: timeline.json)")
    p_tl.set_defaults(fn=cmd_timeline)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "checkpoints", None) == -1:
        args.checkpoints = None
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
