"""The paper's application: layout, fault-tolerant solver app, run harness."""

from .app import (AC_COEFF_FLOPS, RECOVERY_TAG, AppConfig, CombinationApp,
                  app_main, restrict_periodic)
from .layout import GridAssignment, Layout, layout_for
from .metrics import RunMetrics
from .runner import (baseline_solve_time, choose_lost_grids,
                     choose_lost_grids_for_scheme, make_universe,
                     plan_failures, run_app)

__all__ = [
    "AppConfig", "CombinationApp", "app_main", "restrict_periodic",
    "RECOVERY_TAG", "AC_COEFF_FLOPS",
    "Layout", "GridAssignment", "layout_for",
    "RunMetrics",
    "run_app", "plan_failures", "baseline_solve_time", "choose_lost_grids",
    "choose_lost_grids_for_scheme", "make_universe",
]
