"""The fault-tolerant sparse-grid-combination advection application.

This is the paper's application, end to end:

* every world rank belongs to one sub-grid's process group (the layout),
  solves its share of that grid with the domain-decomposed Lax–Wendroff
  stepper, and participates in the gather–scatter combination;
* process failures (injected kills) surface as MPI errors during stepping
  or at the dedicated detection points; the application then runs the
  Fig. 3/5 reconstruction protocol — re-spawned replacements execute this
  very same entry point, take the child branch of the protocol, regain
  their predecessor's rank, and continue the run;
* lost sub-grid data is recovered by the configured technique:
  Checkpoint/Restart (restore + recompute), Resampling-and-Copying
  (replica copy / fine-grid resample) or Alternate Combination (new
  combination coefficients + post-combination sample).

Both *real* failures (actual kills, Figs. 8/11, Table I) and *simulated*
losses (grids declared lost at the end, Figs. 9/10 — the paper does the
same) are supported.

*How* the world is repaired is pluggable (``cfg.recovery_mode``, see
:mod:`repro.ft.strategy`): the paper's global respawn pipeline, the
shrink-in-place mode (no spawn — the world contracts and survivors
re-decompose), or the non-collective mode (only the failed sub-grid's
communicator is rebuilt; replacements are re-admitted into the world by a
local membership update and unaffected grids never stop solving).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ft.checkpoint import (CheckpointStats, Disk, checkpoint_interval_steps,
                             restore_checkpoint, restore_checkpoint_remapped,
                             write_checkpoint)
from ..ft.detection import failed_procs_list
from ..ft.reconstruct import (PLACE_SAME_HOST, ReconstructTimers,
                              communicator_reconstruct, repair_comm)
from ..ft.recovery import (AlternateCombination, RecoveryTechnique,
                           technique_by_code)
from ..mpi.comm import MAX
from ..mpi.errors import MPIError
from ..pde.advection import AdvectionProblem
from ..pde.lax_wendroff import periodic_from_nodal
from ..pde.norms import l1, l2, linf
from ..pde.parallel_solver import DistributedAdvectionSolver
from ..sparsegrid.interpolation import axis_points
from ..sparsegrid.parallel_combine import combine_on_root, scatter_samples
from .layout import Layout, SurvivorView, layout_for
from .metrics import RunMetrics

#: base tag for recovery data motion (offset by destination gid)
RECOVERY_TAG = 7000

#: virtual flops charged for computing one set of alternate coefficients
#: (a Möbius sum over the scheme's small index lattice)
AC_COEFF_FLOPS = 2.0e4


@dataclass
class AppConfig:
    """One run's configuration.  Passed (by reference) as the argv of every
    launched *and re-spawned* process, exactly like the paper re-launches
    ``./ApplicationName argv``."""

    n: int = 7
    level: int = 4
    technique_code: str = "CR"
    #: how the world is repaired after a failure: "respawn" (the paper's
    #: Figs. 3/5 pipeline), "shrink" (shrink-in-place) or "nc"
    #: (non-collective per-grid repair) — see :mod:`repro.ft.strategy`
    recovery_mode: str = "respawn"
    steps: int = 32
    diag_procs: int = 4
    layout_mode: str = "paper"          #: "paper" (Fig. 9) or "sweep" (Table I)
    cfl: float = 0.4
    problem: AdvectionProblem = field(default_factory=AdvectionProblem)
    #: checkpoints over the run (CR); None = machine-optimal (Young)
    checkpoint_count: Optional[int] = 4
    placement: str = PLACE_SAME_HOST
    simulated_lost_gids: Tuple[int, ...] = ()
    combine_target: Optional[Tuple[int, int]] = None
    disk: Optional[Disk] = None
    collect_arrays: bool = False
    extra_layers: int = 2               #: AC redundancy depth
    #: virtual-compute multiplier per step (timing-shape experiments model
    #: the paper's full problem scale without paying its numerics)
    compute_scale: float = 1.0
    #: "1d" slab decomposition or "2d" Cartesian blocks per sub-grid
    decomposition: str = "1d"

    def estimated_solve_time(self, machine) -> float:
        """Analytic estimate of the failure-free solve time on ``machine``
        (used to pick checkpoint counts before the run; deterministic and
        identical on every rank)."""
        from ..pde.lax_wendroff import FLOPS_PER_POINT
        layout = self.layout()
        per_proc = max(
            ((1 << a.index[0]) * (1 << a.index[1])) / a.n_procs
            for a in layout.assignments)
        flops = FLOPS_PER_POINT * per_proc * self.steps * self.compute_scale
        return machine.compute_cost(flops)

    def strategy(self):
        from ..ft.strategy import strategy_by_mode
        return strategy_by_mode(self.recovery_mode)

    def technique(self) -> RecoveryTechnique:
        t = technique_by_code(self.technique_code)
        if isinstance(t, AlternateCombination) and \
                t.extra_layers != self.extra_layers:
            t = AlternateCombination(self.extra_layers)
        return t

    def scheme(self):
        return self.technique().make_scheme(self.n, self.level)

    def layout(self) -> Layout:
        # scheme() returns shared cached instances, so the identity-keyed
        # layout cache collapses repeated builds across a sweep
        return layout_for(self.scheme(), self.layout_mode, self.diag_procs)

    @property
    def target(self) -> Tuple[int, int]:
        return self.combine_target or (self.n, self.n)


async def app_main(ctx):
    """Entry point for every rank — initial launch and re-spawn alike."""
    cfg: AppConfig = ctx.argv[0]
    return await CombinationApp(ctx, cfg).run()


def restrict_periodic(arr: np.ndarray, src_ix: Tuple[int, int],
                      dst_ix: Tuple[int, int]) -> np.ndarray:
    """Exact restriction of a periodic (no duplicated boundary) array."""
    dx, dy = src_ix[0] - dst_ix[0], src_ix[1] - dst_ix[1]
    if dx < 0 or dy < 0:
        raise ValueError(f"cannot restrict {src_ix} onto finer {dst_ix}")
    return np.ascontiguousarray(arr[::1 << dx, ::1 << dy])


class CombinationApp:
    """Per-rank application object."""

    def __init__(self, ctx, cfg: AppConfig):
        self.ctx = ctx
        self.cfg = cfg
        self.technique = cfg.technique()
        self.strategy = cfg.strategy()
        self.strategy.validate_config(cfg)
        self.scheme = self.technique.make_scheme(cfg.n, cfg.level)
        self.layout = cfg.layout()
        #: the launch-time layout; ``self.layout`` becomes a
        #: :class:`SurvivorView` after a shrink-in-place repair
        self.base_layout = self.layout
        #: original world rank of each current world rank (shrink mode
        #: contracts this list; the other modes never change it)
        self._members: List[int] = list(range(self.layout.total_procs))
        self.timers = ReconstructTimers()
        self.metrics = RunMetrics(
            technique=self.technique.code, recovery_mode=self.strategy.mode,
            machine=ctx.machine.name,
            n=cfg.n, level=cfg.level, steps=cfg.steps,
            world_size=self.layout.total_procs)
        self.cr_stats = CheckpointStats()
        self.world = None
        self.grid_comm = None
        self.solver: Optional[DistributedAdvectionSolver] = None
        self.gid = -1
        self.lost: List[int] = []
        self.dt = cfg.problem.stable_dt(cfg.n, cfg.cfl)
        self.metrics.dt = self.dt
        if cfg.checkpoint_count is None:
            from ..ft.checkpoint import optimal_checkpoint_count
            est = cfg.estimated_solve_time(ctx.machine)
            self.checkpoint_count = optimal_checkpoint_count(
                est, ctx.machine.t_io)
        else:
            self.checkpoint_count = cfg.checkpoint_count

    # ------------------------------------------------------------------
    async def run(self):
        ctx, cfg = self.ctx, self.cfg
        respawned = ctx.get_parent() is not None
        if respawned and self.strategy.mode == "nc":
            # Non-collective replacement: rejoin only the failed sub-grid's
            # communicator (the parents re-admit us into the world).
            if await self._nc_child_join() is None:
                return None  # orphan of an aborted repair attempt
        elif respawned:
            # Re-spawned replacement: rejoin through the child branch of the
            # reconstruction protocol, regaining the predecessor's rank.
            self.world = await communicator_reconstruct(
                ctx, ctx.comm, entry=app_main, argv=(cfg,),
                placement=cfg.placement, timers=self.timers)
            if self.world is None:
                return None  # orphan of an aborted repair attempt
            self.gid = self.layout.gid_of(self.world.rank)
            if self.technique.needs_checkpoints:
                # resync happens inside the failure branch of the segment
                # the survivors are currently executing
                await self._cr_segments(resume=True)
            else:
                # RC/AC children: resync now; data recovery happens in the
                # shared recovery/combination phases
                await self._post_failure_resync(make_solver=True)
        else:
            self.world = ctx.comm
            if self.world.size != self.layout.total_procs:
                raise ValueError(
                    f"launched {self.world.size} ranks but layout needs "
                    f"{self.layout.total_procs}")
            self.gid = self.layout.gid_of(self.world.rank)
            self.grid_comm = await self.world.split(self.gid, self.world.rank)
            self._make_solver()
            t0 = ctx.wtime()
            if self.technique.needs_checkpoints:
                await self._cr_segments(resume=False)
            else:
                await self._plain_stepping()
            self.metrics.t_solve = ctx.wtime() - t0

        if self.strategy.mode == "nc":
            # grids repaired independently; agree on the global loss set
            # before entering the world-collective phases
            await self._nc_world_resync()
        if cfg.simulated_lost_gids and not self.lost:
            self.lost = sorted(set(cfg.simulated_lost_gids))
        await self._recovery_phase()
        combined = await self._combination_phase()
        return self._finish(combined)

    # ------------------------------------------------------------------
    def _make_solver(self):
        sub = self.scheme[self.gid]
        if self.cfg.decomposition == "2d":
            from ..mpi.cart import CartHandle
            from ..pde.parallel_solver2d import (Distributed2DAdvectionSolver,
                                                 choose_dims)
            # wrap the grid communicator directly (non-collective) so a
            # re-spawned member stays in step with surviving members
            dims = choose_dims(self.grid_comm.size, sub.level_x, sub.level_y)
            cart = CartHandle(self.grid_comm.state, self.ctx.proc, dims,
                              (True, True))
            self.solver = Distributed2DAdvectionSolver(
                self.ctx, cart, self.cfg.problem,
                sub.level_x, sub.level_y, self.dt,
                compute_scale=self.cfg.compute_scale)
        elif self.cfg.decomposition == "1d":
            self.solver = DistributedAdvectionSolver(
                self.ctx, self.grid_comm, self.cfg.problem,
                sub.level_x, sub.level_y, self.dt,
                compute_scale=self.cfg.compute_scale)
        else:
            raise ValueError(
                f"unknown decomposition {self.cfg.decomposition!r}")

    async def _post_failure_resync(self, make_solver: bool) -> None:
        """Shared resync after a reconstruction: learn the loss set, rebuild
        grid communicators (and, for new processes, the solver shell).

        The loss set is the union of every rank's locally-observed failed
        ranks, never a single rank's view: a re-spawned replacement —
        including a replacement rank 0 — joins with an empty failure
        record, so a rank-0 broadcast would announce an empty loss set and
        no grid would ever restore."""
        world = self.world
        views = await world.allgather(tuple(self.timers.failed_ranks))
        union = sorted({r for view in views for r in view})
        # fold the agreed set back into the local record so replacements
        # report the same failure history as survivors
        for r in union:
            if r not in self.timers.failed_ranks:
                self.timers.failed_ranks.append(r)
        self.timers.failed_ranks.sort()
        self.timers.total_failed = len(self.timers.failed_ranks)
        lost_gids = self.layout.grids_of_ranks(union)
        for g in lost_gids:
            if g not in self.lost:
                self.lost.append(g)
        self.lost.sort()
        self.grid_comm = await world.split(self.gid, world.rank)
        if make_solver or self.solver is None:
            self._make_solver()
        else:
            self.solver.rebind(self.grid_comm)

    # ------------------------------------------------------------------
    # RC/AC: step everything, detect at the end
    # ------------------------------------------------------------------
    async def _step_guarded(self, n: int) -> None:
        """Step the solver, converting a peer failure into a group-wide
        unblock: the rank that observes the error revokes the grid
        communicator so members blocked on halos from *other* ranks also
        escape (the standard ULFM revoke idiom — without it, only the dead
        rank's neighbours notice and the rest of the group hangs)."""
        if n <= 0:
            return
        try:
            await self.solver.step(n)
        except MPIError:
            self.grid_comm.revoke()

    async def _plain_stepping(self) -> None:
        cfg = self.cfg
        with self.ctx.span("solve", technique=self.technique.code,
                           gid=self.gid):
            await self._step_guarded(cfg.steps - self.solver.step_count)
        if await self.strategy.detect_and_repair(self):
            await self.strategy.post_repair(self)

    # ------------------------------------------------------------------
    # respawn mode (the paper's protocol)
    # ------------------------------------------------------------------
    async def _respawn_detect_repair(self) -> bool:
        """Detection point of the paper's protocol: the Fig. 3 loop (agree +
        probe barrier; full global repair on error).  Returns True when the
        world was repaired."""
        cfg = self.cfg
        world2 = await communicator_reconstruct(
            self.ctx, self.world, entry=app_main, argv=(cfg,),
            placement=cfg.placement, timers=self.timers)
        changed = world2.state is not self.world.state
        if changed:
            self.world = world2
        return changed

    # ------------------------------------------------------------------
    # CR: segment loop with detection + checkpoint at each boundary
    # ------------------------------------------------------------------
    def _segment_targets(self) -> List[int]:
        cfg = self.cfg
        interval = checkpoint_interval_steps(cfg.steps, self.checkpoint_count)
        targets = list(range(interval, cfg.steps + 1, interval))
        if not targets or targets[-1] != cfg.steps:
            targets.append(cfg.steps)
        return targets

    async def _cr_segments(self, resume: bool) -> None:
        """The Checkpoint/Restart protocol.

        Per segment: step to the boundary; test for failures (the paper
        checks "prior to initiating the checkpoint write"); on failure
        reconstruct, restore the affected grids from their checkpoints and
        recompute; otherwise write a checkpoint.  ``resume=True`` is the
        re-spawned-child path: it joins at the current boundary (its state
        is restored by the failure branch of the segment in progress).
        """
        targets = self._segment_targets()
        if resume:
            # restore immediately: the survivors are inside the failure
            # branch of some segment and will match these collectives; the
            # broadcast horizon equals the failing segment's boundary, so
            # the remaining segments are exactly those past it.  The global
            # horizon — NOT the local step count — must drive the filter:
            # if this very recompute is interrupted by another failure, the
            # step count stalls but the segment schedule (and its one
            # detection collective per boundary) marches on for everyone.
            horizon = await self._cr_failure_branch(first_join=True)
            targets = [t for t in targets if t > horizon]
        await self._cr_segment_loop(targets)

    async def _cr_segment_loop(self, targets: List[int]) -> None:
        ctx, cfg = self.ctx, self.cfg
        for target in targets:
            with self.ctx.span("solve", technique=self.technique.code,
                               gid=self.gid):
                await self._step_guarded(target - self.solver.step_count)
            # the paper tests for failures "prior to initiating the
            # checkpoint write" — the strategy's detection point is that
            # test (and the repair, when it fails)
            failed = await self.strategy.detect_and_repair(self)
            if failed:
                await self._cr_post_failure(target)
            elif target < cfg.steps and self.checkpoint_count > 0:
                await write_checkpoint(ctx, self._disk(), self.gid,
                                       self.grid_comm.rank, self.solver,
                                       self.cr_stats)

    async def _cr_post_failure(self, target: int) -> None:
        """Mode-specific CR failure branch at a segment boundary."""
        mode = self.strategy.mode
        if mode == "respawn":
            await self._cr_failure_branch(first_join=False, target=target)
        elif mode == "shrink":
            await self._shrink_failure_branch(target)
        else:  # nc
            await self._nc_cr_branch(target)

    async def _cr_failure_branch(self, first_join: bool,
                                 target: Optional[int] = None) -> int:
        """Post-reconstruction work inside the CR segment loop: resync,
        restore affected grids from checkpoints, recompute lost steps.

        Returns the agreed global segment horizon (the boundary of the
        segment in which the failure was detected).
        """
        ctx = self.ctx
        await self._post_failure_resync(make_solver=first_join)
        # Every rank must agree on the recompute horizon.  MAX-allreduce,
        # not a rank-0 broadcast: a replacement for a dead rank 0 joins
        # with ``target=None`` and would broadcast horizon 0, silently
        # cancelling the recompute on every survivor.
        horizon = await self.world.allreduce(
            target if target is not None else 0, op=MAX)
        if self.gid in self.lost:
            await self._restore_grid()
            recompute = max(0, horizon - self.solver.step_count)
            with ctx.span("recompute", technique="CR", gid=self.gid):
                await self._step_guarded(recompute)
            self.cr_stats.recompute_steps += recompute
        try:
            await self.world.barrier()
        except MPIError:
            pass  # another failure landed; the next detection point repairs
        return horizon

    async def _restore_grid(self) -> None:
        """Restore this grid from its checkpoints, remapping when the group
        size changed (shrink mode re-decomposed the grid over survivors).

        ``old_n_parts`` is always the *launch-time* group size: checkpoints
        written after an earlier shrink live under a different decomposition
        and are rejected by the remapped restore's shape validation, which
        then falls back to the latest pre-shrink step (or the initial
        condition) — older data, never wrong data."""
        base_n = len(self.base_layout.group_ranks(self.gid))
        if self.grid_comm.size != base_n:
            await restore_checkpoint_remapped(
                self.ctx, self._disk(), self.gid, self.grid_comm,
                self.solver, old_n_parts=base_n, stats=self.cr_stats)
        else:
            await restore_checkpoint(
                self.ctx, self._disk(), self.gid, self.grid_comm,
                self.solver, self.cr_stats)

    def _disk(self) -> Disk:
        if self.cfg.disk is None:
            self.cfg.disk = Disk()
        return self.cfg.disk

    # ------------------------------------------------------------------
    # shrink-in-place mode
    # ------------------------------------------------------------------
    async def _shrink_detect_repair(self) -> bool:
        """Detection point of the shrink-in-place mode: agree + probe
        barrier on the world; on error revoke + shrink — no spawn, no
        merge.  Loops so failures landing *during* the shrink are caught by
        the re-probe.  Returns True when the world contracted."""
        ctx = self.ctx
        wtime = ctx.wtime
        changed = False
        while True:
            t0 = wtime()
            with ctx.span("agree", technique=self.technique.code):
                await self.world.agree(1)
            self.timers.charge("agree", wtime() - t0)
            try:
                await self.world.barrier()
                return changed
            except MPIError:
                pass
            changed = True
            t0 = wtime()
            with ctx.span("detect"):
                self.world.revoke()
                t1 = wtime()
                with ctx.span("shrink"):
                    shrunk = await self.world.shrink()
                shrink_time = wtime() - t1
                self.timers.charge("shrink", shrink_time)
                t1 = wtime()
                failed, _ = failed_procs_list(self.world, shrunk)
                self.timers.charge("failed_list",
                                   (wtime() - t1) + shrink_time)
            # record the dead in *original* world numbering, then contract
            # the membership map — the group difference is in current ranks
            for i in failed:
                w = self._members[i]
                if w not in self.timers.failed_ranks:
                    self.timers.failed_ranks.append(w)
            self.timers.failed_ranks.sort()
            self.timers.total_failed = len(self.timers.failed_ranks)
            dead = set(failed)
            self._members = [m for i, m in enumerate(self._members)
                             if i not in dead]
            self.world = shrunk
            self.timers.iterations += 1
            self.timers.charge("reconstruct", wtime() - t0)

    async def _shrink_resync(self) -> None:
        """Post-shrink membership/data resync: re-express the layout in
        survivor numbering, re-split grid communicators, and re-decompose
        any grid whose group contracted."""
        ctx = self.ctx
        with ctx.span("redistribute", technique=self.technique.code,
                      gid=self.gid):
            for g in self.base_layout.grids_of_ranks(self.timers.failed_ranks):
                if g not in self.lost:
                    self.lost.append(g)
            # orphan adoption: CR restores the adopted grid from its
            # checkpoints and RC from its replica/resample source, so a
            # fully-lost grid migrates onto a donor; AC drops lost grids
            # from the combination instead, so donating would only destroy
            # a healthy grid's data
            self.layout = SurvivorView(self.base_layout, self._members,
                                       adopt_orphans=self.technique.code
                                       != "AC")
            for donor_gid in self.layout.adoptions.values():
                # the donor's old group contracted without failing; it
                # needs restoration like any damaged grid
                if donor_gid not in self.lost:
                    self.lost.append(donor_gid)
            self.lost.sort()
            new_gid = self.layout.gid_of(self.world.rank)
            adopted = new_gid != self.gid
            self.gid = new_gid
            old_size = self.grid_comm.size
            self.grid_comm = await self.world.split(self.gid, self.world.rank)
            if not adopted and self.grid_comm.size == old_size:
                # untouched grid: the split preserved relative order, so
                # every member keeps its grid rank — and its slab, bit for
                # bit
                self.solver.rebind(self.grid_comm)
            else:
                # contracted or adopted grid: fresh solver over the
                # re-balanced decomposition; data comes back via the
                # recovery technique
                self._make_solver()

    async def _shrink_failure_branch(self, target: Optional[int]) -> int:
        """CR failure branch of the shrink mode: resync, then the affected
        (now smaller) grids restore via the remapped migration plan and
        recompute to the agreed horizon."""
        ctx = self.ctx
        await self._shrink_resync()
        horizon = await self.world.allreduce(
            target if target is not None else 0, op=MAX)
        if self.gid in self.lost:
            await self._restore_grid()
            recompute = max(0, horizon - self.solver.step_count)
            with ctx.span("recompute", technique="CR", gid=self.gid):
                await self._step_guarded(recompute)
            self.cr_stats.recompute_steps += recompute
        try:
            await self.world.barrier()
        except MPIError:
            pass  # another failure landed; the next detection point repairs
        return horizon

    # ------------------------------------------------------------------
    # non-collective mode
    # ------------------------------------------------------------------
    async def _nc_detect_repair(self) -> bool:
        """Detection point of the non-collective mode: agree + probe barrier
        on *this grid's* communicator only.  On error, Fig. 5 runs against
        the sub-grid communicator and the replacements are re-admitted into
        the world by a local membership update — other grids never notice.

        The loop-head agree+barrier doubles as the join point with the
        re-spawned child (the tail of its reconstruction loop): readmits
        happen before the parents enter it, so once it completes the child
        is a world member everywhere."""
        ctx, cfg = self.ctx, self.cfg
        changed = False
        while True:
            t0 = ctx.wtime()
            with ctx.span("agree", technique=self.technique.code,
                          gid=self.gid):
                await self.grid_comm.agree(1)
            self.timers.charge("agree", ctx.wtime() - t0)
            try:
                await self.grid_comm.barrier()
                return changed
            except MPIError:
                pass
            changed = True
            t0 = ctx.wtime()
            with ctx.span("rebuild", technique=self.technique.code,
                          gid=self.gid):
                rank_map = list(self.layout.group_ranks(self.gid))
                old_state = self.grid_comm.state
                grid2 = await repair_comm(
                    ctx, self.grid_comm, entry=app_main,
                    argv=(cfg, self.world.state, self.gid),
                    placement=cfg.placement, timers=self.timers,
                    rank_map=rank_map)
                for i in range(grid2.size):
                    p = grid2.state.procs[i]
                    if p is not old_state.procs[i]:
                        await self.world.readmit(rank_map[i], p)
                self.grid_comm = grid2
                self.solver.rebind(grid2)
            self.timers.iterations += 1
            self.timers.charge("reconstruct", ctx.wtime() - t0)

    async def _nc_child_join(self):
        """Child branch of the non-collective mode: rejoin the *sub-grid*
        communicator through the reconstruction protocol, then adopt the
        world communicator the parents re-admitted us into (shipped in the
        spawn argv, membership already patched by the time the join barrier
        completes)."""
        ctx, cfg = self.ctx, self.cfg
        grid = await communicator_reconstruct(
            ctx, ctx.comm, entry=app_main, argv=ctx.argv,
            placement=cfg.placement, timers=self.timers)
        if grid is None:
            return None  # orphan of an aborted repair attempt
        self.gid = int(ctx.argv[2])
        self.grid_comm = grid
        self.world = ctx.argv[1].handle(ctx.proc)
        self._make_solver()
        if self.technique.needs_checkpoints:
            # the survivors are inside the CR failure branch of some
            # segment; join it, then run the remaining segments with them
            horizon = await self._nc_cr_branch(None)
            await self._cr_segment_loop(
                [t for t in self._segment_targets() if t > horizon])
        elif self.gid not in self.lost:
            # RC/AC: this grid's data comes back in the recovery phase
            self.lost.append(self.gid)
        return grid

    async def _nc_cr_branch(self, target: Optional[int]) -> int:
        """CR failure branch of the non-collective mode: grid-local — the
        affected grid agrees on its horizon, restores and recomputes while
        every other grid keeps stepping its own segments."""
        ctx = self.ctx
        if self.gid not in self.lost:
            self.lost.append(self.gid)
            self.lost.sort()
        horizon = await self.grid_comm.allreduce(
            target if target is not None else 0, op=MAX)
        await self._restore_grid()
        recompute = max(0, horizon - self.solver.step_count)
        with ctx.span("recompute", technique="CR", gid=self.gid):
            await self._step_guarded(recompute)
        self.cr_stats.recompute_steps += recompute
        return horizon

    async def _nc_world_resync(self) -> None:
        """Rejoin the world after grid-local repairs: one agreement plus an
        allgather unions every grid's locally-observed loss set — the first
        (and only) world-collective step the non-collective mode takes."""
        ctx = self.ctx
        world = self.world
        t0 = ctx.wtime()
        with ctx.span("agree", technique=self.technique.code):
            await world.agree(1)
        self.timers.charge("agree", ctx.wtime() - t0)
        t = self.timers
        payload = (tuple(t.failed_ranks), t.reconstruct, t.shrink, t.spawn,
                   t.merge, t.failed_list, t.iterations)
        try:
            views = await world.allgather(payload)
        except MPIError:
            raise RuntimeError(
                "non-collective repair cannot recover a grid that lost "
                "every member (no survivor is left to rebuild it); use "
                "shrink or respawn mode for full-grid losses") from None
        union = sorted({r for view in views for r in view[0]})
        # repairs ran grid-locally: adopt the slowest grid's repair costs
        # everywhere (the wall-clock convention rank 0's metrics report)
        t.reconstruct = max(v[1] for v in views)
        t.shrink = max(v[2] for v in views)
        t.spawn = max(v[3] for v in views)
        t.merge = max(v[4] for v in views)
        t.failed_list = max(v[5] for v in views)
        t.iterations = max(v[6] for v in views)
        for r in union:
            if r not in self.timers.failed_ranks:
                self.timers.failed_ranks.append(r)
        self.timers.failed_ranks.sort()
        self.timers.total_failed = len(self.timers.failed_ranks)
        for g in self.layout.grids_of_ranks(union):
            if g not in self.lost:
                self.lost.append(g)
        self.lost.sort()

    # ------------------------------------------------------------------
    # recovery phase (lost-set already agreed by every rank)
    # ------------------------------------------------------------------
    async def _recovery_phase(self) -> None:
        ctx, cfg = self.ctx, self.cfg
        world = self.world
        await world.barrier()
        t0 = ctx.wtime()
        if self.lost:
            code = self.technique.code
            with ctx.span("recovery", technique=code, gid=self.gid,
                          n_lost=len(self.lost)):
                if code == "CR":
                    await self._cr_recover_simulated()
                elif code == "RC":
                    await self._rc_recover()
                elif code == "AC":
                    # "only the time needed for creating the combination
                    # coefficients ... is used as recovery overhead"
                    await ctx.compute(
                        flops=AC_COEFF_FLOPS * max(1, len(self.lost)))
        await world.barrier()
        self.metrics.t_recovery = ctx.wtime() - t0

    async def _cr_recover_simulated(self) -> None:
        """CR recovery for losses declared at the end of the run (the
        simulated-failure mode of Figs. 9/10): affected grids restore their
        latest checkpoint and recompute up to the final step."""
        if self.gid not in self.lost:
            return
        ctx, cfg = self.ctx, self.cfg
        if self.solver.step_count >= cfg.steps and self.cr_stats.recompute_steps:
            return  # already recovered in the segment loop (real failure)
        await self._restore_grid()
        recompute = max(0, cfg.steps - self.solver.step_count)
        if recompute:
            with ctx.span("recompute", technique="CR", gid=self.gid):
                await self.solver.step(recompute)
        self.cr_stats.recompute_steps += recompute

    async def _rc_recover(self) -> None:
        """RC recovery: copy a lost grid from its replica, or resample a
        lost lower grid from the finer diagonal grid above it."""
        ctx, cfg = self.ctx, self.cfg
        world = self.world
        plan = self.technique.recovery_plan(self.scheme, self.lost)
        for dst_gid, src_gid in plan:
            if not self.layout.group_ranks(dst_gid) or \
                    not self.layout.group_ranks(src_gid):
                # shrink mode: a grid that lost every process cannot send
                # or receive — the combination proceeds without it
                continue
            src_ix = self.scheme[src_gid].index
            dst_ix = self.scheme[dst_gid].index
            if self.gid == src_gid:
                full = await self.solver.gather_full(0)
                if self.grid_comm.rank == 0:
                    await world.send(full, dest=self.layout.root_rank(dst_gid),
                                     tag=RECOVERY_TAG + dst_gid)
            if self.gid == dst_gid:
                if self.grid_comm.rank == 0:
                    full = await world.recv(
                        source=self.layout.root_rank(src_gid),
                        tag=RECOVERY_TAG + dst_gid)
                    data = restrict_periodic(full, src_ix, dst_ix)
                else:
                    data = None
                await self.solver.scatter_full(data, 0,
                                               step_count=cfg.steps)

    # ------------------------------------------------------------------
    # combination phase
    # ------------------------------------------------------------------
    def _coefficients(self) -> Dict[Tuple[int, int], float]:
        return self.technique.combination_coefficients(self.scheme, self.lost)

    def _contributes(self, coeffs) -> bool:
        """Does this rank's grid supply data to the combination?

        Group roots of grids whose index carries a non-zero coefficient
        contribute — except AC-lost grids, whose data is gone (they receive
        a sample of the combined solution instead).  When an index appears
        twice (diagonal + duplicate), the primary contributes unless lost.
        """
        sub = self.scheme[self.gid]
        if self.grid_comm.rank != 0:
            return False
        if coeffs.get(sub.index, 0.0) == 0.0:
            return False
        if self.technique.code == "AC" and self.gid in self.lost:
            return False
        if sub.role == "duplicate":
            # only step in when the primary copy is lost
            return sub.partner in self.lost
        if self.technique.code == "RC" and self.gid in self.lost:
            # recovered by now, but prefer the replica's pristine copy for
            # diagonal grids; lower grids have no replica so they (being
            # freshly resampled) still contribute
            partner = self.scheme.resample_source(self.gid)
            if partner is not None and self.scheme[partner].role == "duplicate":
                return False
        return True

    async def _combination_phase(self):
        ctx, cfg = self.ctx, self.cfg
        world = self.world
        await world.barrier()
        t0 = ctx.wtime()
        with ctx.span("combine", technique=self.technique.code, gid=self.gid):
            coeffs = self._coefficients()
            self.metrics.coefficients = dict(coeffs)
            nodal = await self.solver.gather_nodal(0)
            parts = {}
            if self._contributes(coeffs) and nodal is not None:
                parts[self.scheme[self.gid].index] = nodal
            combined = await combine_on_root(world, parts, coeffs, cfg.target,
                                             root=0)
            # AC: lost grids receive a sample of the combined solution
            if self.technique.code == "AC" and self.lost:
                wanted = {self.layout.root_rank(g): self.scheme[g].index
                          for g in self.lost
                          if self.layout.group_ranks(g)}
                sample = await scatter_samples(world, combined, cfg.target,
                                               wanted, root=0)
                if self.gid in self.lost:
                    data = periodic_from_nodal(sample) \
                        if self.grid_comm.rank == 0 and sample is not None \
                        else None
                    await self.solver.scatter_full(data, 0,
                                                   step_count=cfg.steps)
        await world.barrier()
        self.metrics.t_combine = ctx.wtime() - t0
        # aggregate per-rank checkpoint accounting on rank 0: wall-clock
        # overheads are the slowest rank's (writes/restores run in parallel)
        stats = await world.gather(
            (self.cr_stats.writes, self.cr_stats.write_time,
             self.cr_stats.read_time, self.cr_stats.recompute_steps), root=0)
        if stats is not None:
            self.cr_stats.writes = max(s[0] for s in stats)
            self.cr_stats.write_time = max(s[1] for s in stats)
            self.cr_stats.read_time = max(s[2] for s in stats)
            self.cr_stats.recompute_steps = max(s[3] for s in stats)
        return combined

    # ------------------------------------------------------------------
    def _finish(self, combined):
        ctx, cfg = self.ctx, self.cfg
        m = self.metrics
        m.absorb_timers(self.timers)
        m.lost_gids = list(self.lost)
        m.real_failures = bool(self.timers.failed_ranks)
        m.checkpoint_writes = self.cr_stats.writes
        m.checkpoint_write_time = self.cr_stats.write_time
        m.checkpoint_read_time = self.cr_stats.read_time
        m.recompute_steps = self.cr_stats.recompute_steps
        m.t_total = ctx.wtime()
        if self.world.rank != 0:
            return None
        t_end = cfg.steps * self.dt
        tx, ty = cfg.target
        xs = axis_points(tx)
        ys = axis_points(ty)
        exact = cfg.problem.exact(xs, ys, t_end)
        m.error_l1 = l1(combined, exact)
        m.error_l2 = l2(combined, exact)
        m.error_linf = linf(combined, exact)
        if cfg.collect_arrays:
            m.combined = combined
        return m
