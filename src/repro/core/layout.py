"""Process layout: mapping scheme grids to process groups and world ranks.

The paper's load-balancing rule: lower-diagonal grids hold half the
unknowns of diagonal grids, so they get half the processes; each extra
layer halves again.  Fig. 9's configuration is 8/4/2/1 processes per
diagonal (incl. duplicate) / lower / upper-extra / lower-extra grid.

Two layout builders exist:

* :meth:`Layout.paper` — the halving rule above (Figs. 9-11);
* :meth:`Layout.sweep` — diagonal ``p``, lower ``p/4``: for the plain CR
  scheme (4 diagonal + 3 lower grids) this yields exactly the Table I /
  Fig. 8 core counts 19, 38, 76, 152, 304 for p = 4, 8, 16, 32, 64.

Ranks are assigned to grids contiguously in gid order, so world rank 0 (the
controller, which must never fail) is the root of grid 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

from ..sparsegrid.index import CombinationScheme


@dataclass(frozen=True)
class GridAssignment:
    """One grid's slice of the world communicator."""

    gid: int
    index: Tuple[int, int]
    role: str
    ranks: Tuple[int, ...]

    @property
    def root(self) -> int:
        return self.ranks[0]

    @property
    def n_procs(self) -> int:
        return len(self.ranks)


class Layout:
    """Immutable grid -> process-group map over a contiguous rank range."""

    def __init__(self, scheme: CombinationScheme, counts: Dict[int, int]):
        self.scheme = scheme
        self.counts = dict(counts)
        assignments: List[GridAssignment] = []
        next_rank = 0
        for g in scheme.grids:
            n = counts[g.gid]
            if n < 1:
                raise ValueError(f"grid {g.gid} needs at least one process")
            max_axis = 1 << max(g.index)
            if n > max_axis:
                raise ValueError(
                    f"grid {g.gid} {g.index} cannot host {n} slabs "
                    f"(longest axis has {max_axis} points)")
            ranks = tuple(range(next_rank, next_rank + n))
            assignments.append(GridAssignment(g.gid, g.index, g.role, ranks))
            next_rank += n
        self.assignments: Tuple[GridAssignment, ...] = tuple(assignments)
        self.total_procs = next_rank
        self._rank_to_gid = [0] * next_rank
        for a in assignments:
            for r in a.ranks:
                self._rank_to_gid[r] = a.gid

    # ------------------------------------------------------------------
    @classmethod
    def paper(cls, scheme: CombinationScheme, diag_procs: int = 8) -> "Layout":
        """Halving rule: layer k gets ``diag_procs >> k`` processes (min 1);
        duplicates get the diagonal count."""
        counts = {}
        for g in scheme.grids:
            counts[g.gid] = max(1, diag_procs >> g.layer)
        return cls(scheme, counts)

    @classmethod
    def sweep(cls, scheme: CombinationScheme, diag_procs: int = 4) -> "Layout":
        """Scaling-sweep rule: diagonal ``p``, deeper layers ``p/4^k`` —
        reproduces the 19/38/76/152/304 totals of Table I on the CR scheme."""
        counts = {}
        for g in scheme.grids:
            counts[g.gid] = max(1, diag_procs >> (2 * g.layer))
        return cls(scheme, counts)

    # ------------------------------------------------------------------
    def gid_of(self, rank: int) -> int:
        return self._rank_to_gid[rank]

    def assignment(self, gid: int) -> GridAssignment:
        return self.assignments[gid]

    def root_rank(self, gid: int) -> int:
        return self.assignments[gid].root

    def group_ranks(self, gid: int) -> Tuple[int, ...]:
        return self.assignments[gid].ranks

    def grids_of_ranks(self, ranks) -> List[int]:
        """Distinct grid ids touched by the given world ranks (sorted)."""
        return sorted({self.gid_of(r) for r in ranks})

    def conflict_pairs_ranks(self) -> List[Tuple[int, int]]:
        """RC conflict pairs expressed at grid level (passed to the
        failure generator together with :meth:`gid_of`)."""
        return self.scheme.rc_conflict_pairs()

    def describe(self) -> str:
        lines = [f"Layout: {self.total_procs} processes over "
                 f"{len(self.assignments)} grids"]
        for a in self.assignments:
            lines.append(f"  grid {a.gid:2d} {a.role:9s} {a.index} -> ranks "
                         f"{a.ranks[0]}..{a.ranks[-1]} ({a.n_procs})")
        return "\n".join(lines)


class SurvivorView:
    """A layout re-expressed in *survivor* world numbering after a shrink.

    The shrink-in-place recovery mode never replaces dead processes: the
    world contracts and every surviving rank gets a new, smaller world rank
    (original relative order preserved).  This view wraps the base
    :class:`Layout` plus the list of original world ranks that survived
    (indexed by current world rank) and answers the same queries in the new
    numbering: a grid that lost members shrinks, a grid that lost everyone
    becomes empty (``n_procs == 0``).

    With ``adopt_orphans=True``, a grid that lost every member is instead
    *adopted*: a donor rank is taken from a surviving group (preferring
    groups with no losses, then the largest, then the lowest gid; never a
    group's sole member, and — soft preference — never a group whose RC
    replica/resample partner is already damaged) and reassigned to the
    orphan grid, so the lost grid's work migrates onto a survivor that can
    restore it through the recovery technique.  The choice is a pure
    function of ``(base, members)``, so every rank computes the same
    adoption.  ``adoptions`` maps orphan gid -> the donor's original gid
    (the donor's old group contracted and needs restoration too).
    """

    def __init__(self, base, members, adopt_orphans: bool = False):
        self.base = base
        self.scheme = base.scheme
        self.members: Tuple[int, ...] = tuple(members)
        self.total_procs = len(self.members)
        groups: Dict[int, List[int]] = {a.gid: [] for a in base.assignments}
        for r, m in enumerate(self.members):
            groups[base.gid_of(m)].append(r)
        self.adoptions: Dict[int, int] = {}
        if adopt_orphans:
            self._adopt_orphans(base, groups)
        self._rank_to_gid = [0] * self.total_procs
        for g, ranks in groups.items():
            for r in ranks:
                self._rank_to_gid[r] = g
        self.assignments = tuple(
            GridAssignment(a.gid, a.index, a.role, tuple(sorted(groups[a.gid])))
            for a in base.assignments)

    def _adopt_orphans(self, base, groups: Dict[int, List[int]]) -> None:
        base_sizes = {a.gid: len(base.group_ranks(a.gid))
                      for a in base.assignments}
        conflict: Dict[int, set] = {}
        for x, y in self.scheme.rc_conflict_pairs():
            conflict.setdefault(x, set()).add(y)
            conflict.setdefault(y, set()).add(x)
        for a in base.assignments:  # gid order: deterministic everywhere
            if groups[a.gid]:
                continue
            damaged = {g for g, rs in groups.items()
                       if len(rs) < base_sizes[g]}
            cands = [g for g, rs in groups.items() if len(rs) >= 2]
            safe = [g for g in cands if not (conflict.get(g, set()) & damaged)]
            pool = safe or cands  # conflicting donor beats no donor: the
            # technique's own loss validation reports the real constraint
            if not pool:
                raise RuntimeError(
                    f"shrink-in-place cannot re-balance: grid {a.gid} lost "
                    f"every member and no surviving grid can spare a donor "
                    f"process (all groups are down to one member)")
            pool.sort(key=lambda g: (len(groups[g]) < base_sizes[g],
                                     -len(groups[g]), g))
            donor_gid = pool[0]
            groups[a.gid].append(groups[donor_gid].pop())
            self.adoptions[a.gid] = donor_gid

    # same query surface as Layout ------------------------------------
    def gid_of(self, rank: int) -> int:
        return self._rank_to_gid[rank]

    def assignment(self, gid: int) -> GridAssignment:
        return self.assignments[gid]

    def root_rank(self, gid: int) -> int:
        a = self.assignments[gid]
        if not a.ranks:
            raise ValueError(
                f"grid {gid} has no surviving processes after shrink")
        return a.ranks[0]

    def group_ranks(self, gid: int) -> Tuple[int, ...]:
        return self.assignments[gid].ranks

    def grids_of_ranks(self, ranks) -> List[int]:
        return sorted({self.gid_of(r) for r in ranks})

    def conflict_pairs_ranks(self) -> List[Tuple[int, int]]:
        return self.scheme.rc_conflict_pairs()

    def describe(self) -> str:
        lines = [f"SurvivorView: {self.total_procs} survivors over "
                 f"{len(self.assignments)} grids"]
        for a in self.assignments:
            span = (f"ranks {a.ranks[0]}..{a.ranks[-1]}" if a.ranks
                    else "no survivors")
            lines.append(f"  grid {a.gid:2d} {a.role:9s} {a.index} -> "
                         f"{span} ({a.n_procs})")
        return "\n".join(lines)


@lru_cache(maxsize=None)
def layout_for(scheme: CombinationScheme, mode: str,
               diag_procs: int) -> Layout:
    """Shared layout instances, keyed on scheme *identity* (schemes come
    from :func:`repro.sparsegrid.index.cached_scheme`, so equal
    configurations share one object).  Layouts are immutable, and a sweep
    asks for the same handful of them thousands of times."""
    if mode == "paper":
        return Layout.paper(scheme, diag_procs)
    if mode == "sweep":
        return Layout.sweep(scheme, diag_procs)
    raise ValueError(f"unknown layout mode {mode!r}")
