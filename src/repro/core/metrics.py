"""Structured results of one application run."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ft.reconstruct import ReconstructTimers


@dataclass
class RunMetrics:
    """Everything the experiment harnesses need from one run.

    All times are virtual seconds measured on world rank 0.
    """

    technique: str = ""
    recovery_mode: str = "respawn"
    machine: str = ""
    n: int = 0
    level: int = 0
    steps: int = 0
    dt: float = 0.0
    world_size: int = 0
    real_failures: bool = False
    n_failures: int = 0
    failed_ranks: List[int] = field(default_factory=list)
    lost_gids: List[int] = field(default_factory=list)

    # phase timings
    t_total: float = 0.0
    t_solve: float = 0.0
    t_detect: float = 0.0        #: failed-list creation (Fig. 8a)
    t_reconstruct: float = 0.0   #: communicator repair (Fig. 8b)
    t_recovery: float = 0.0      #: data recovery window (Fig. 9a)
    t_combine: float = 0.0

    # per-op ULFM timings (Table I)
    t_shrink: float = 0.0
    t_spawn: float = 0.0
    t_merge: float = 0.0
    t_agree: float = 0.0
    reconstruct_iterations: int = 0

    # checkpointing (CR)
    checkpoint_writes: int = 0
    checkpoint_write_time: float = 0.0
    checkpoint_read_time: float = 0.0
    recompute_steps: int = 0

    # observability: per-phase virtual seconds (critical path = max over
    # ranks per phase) and the same broken down per grid id, filled in by
    # :func:`repro.core.runner.run_app` from the universe's span recorder
    phase_breakdown: Dict[str, float] = field(default_factory=dict)
    phase_by_grid: Dict[str, Dict[str, float]] = field(default_factory=dict)

    # accuracy
    error_l1: float = float("nan")
    error_l2: float = float("nan")
    error_linf: float = float("nan")

    # combination
    coefficients: Dict[Tuple[int, int], float] = field(default_factory=dict)
    combined: Optional[object] = None  # ndarray when cfg.collect_arrays

    def absorb_timers(self, t: ReconstructTimers) -> None:
        self.t_detect = t.failed_list
        self.t_reconstruct = t.reconstruct
        self.t_shrink = t.shrink
        self.t_spawn = t.spawn
        self.t_merge = t.merge
        self.t_agree = t.agree
        self.reconstruct_iterations = t.iterations
        self.failed_ranks = list(t.failed_ranks)
        self.n_failures = t.total_failed

    @property
    def t_app_excl_reconstruct(self) -> float:
        """Application time excluding communicator reconstruction — the
        paper's ``T_app`` in the Fig. 9b normalisation."""
        return self.t_total - self.t_reconstruct

    def to_dict(self) -> dict:
        d = asdict(self)
        d.pop("combined", None)
        d["coefficients"] = {str(k): v for k, v in self.coefficients.items()}
        return d
