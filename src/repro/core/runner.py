"""Run orchestration: build a universe, launch the app, inject failures.

This is the harness layer the experiments and benchmarks drive.  A run is
fully deterministic given (config, machine, kill plan/seed).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..ft.checkpoint import Disk
from ..ft.failure_injection import FailureGenerator, Kill
from ..machine import Hostfile, MachineSpec
from ..machine.presets import OPL
from ..mpi.universe import Universe
from .app import AppConfig, app_main
from .metrics import RunMetrics


def make_universe(cfg: AppConfig, machine: MachineSpec = OPL,
                  n_spares: int = 0,
                  batch: Optional[bool] = None) -> Tuple[Universe, int]:
    """A universe sized for the config's layout (plus optional spare nodes).

    ``batch`` overrides the batch-vectorised fast path (None: the universe
    default — on, unless ``REPRO_BATCH=0``)."""
    total = cfg.layout().total_procs
    hostfile = Hostfile.for_ranks(total, slots=machine.cores_per_node,
                                  n_spares=n_spares)
    return Universe(machine, hostfile=hostfile, batch=batch), total


def run_app(cfg: AppConfig, machine: MachineSpec = OPL, *,
            kills: Sequence[Kill] = (), n_spares: int = 0,
            tracer=None, batch: Optional[bool] = None) -> RunMetrics:
    """Execute one application run and return rank 0's metrics.

    ``tracer`` (a :class:`~repro.mpi.tracing.Tracer`) records the MPI
    event stream for offline analysis (``python -m repro analyze-trace``).
    ``batch`` selects the substrate path explicitly (the property tests
    pin batch-vs-event bit-identity through this switch).
    """
    if cfg.technique_code.upper() == "CR" and cfg.disk is None:
        cfg.disk = Disk()
    universe, total = make_universe(cfg, machine, n_spares, batch=batch)
    universe.tracer = tracer
    job = universe.launch(total, app_main, argv=(cfg,))
    if kills:
        gen = FailureGenerator()  # only used for injection here
        gen.inject(universe, job, kills)
    universe.run()
    metrics = job.results()[0]
    if metrics is None:
        # Rank 0 itself was killed: its re-spawned replacement took over
        # world rank 0 (Fig. 7 rank restoration) and returned the metrics
        # from a later spawn job.
        candidates = [r for j in universe.jobs for r in j.results()
                      if isinstance(r, RunMetrics)]
        metrics = candidates[-1] if candidates else None
    if metrics is None:
        raise RuntimeError("rank 0 produced no metrics (killed?)")
    # attach the recovery-phase observability: critical-path seconds per
    # phase (max over ranks — phases run concurrently) and per grid
    metrics.phase_breakdown = universe.obs.phase_totals()
    metrics.phase_by_grid = universe.obs.spans.by_label("gid")
    return metrics


def plan_failures(cfg: AppConfig, n_failures: int, at: float,
                  seed: int = 0) -> List[Kill]:
    """Constraint-respecting random kill plan for this config.

    Applies the paper's rules: rank 0 immortal; under RC no replica pair
    may be lost together.
    """
    layout = cfg.layout()
    pairs = layout.conflict_pairs_ranks() \
        if cfg.technique_code.upper() == "RC" else ()
    gen = FailureGenerator(seed, protect={0}, conflict_pairs=pairs,
                           rank_to_grid=layout.gid_of)
    return gen.plan(layout.total_procs, n_failures, at)


def baseline_solve_time(cfg: AppConfig, machine: MachineSpec = OPL) -> float:
    """Virtual solve time of a failure-free run (used to place kills
    mid-computation, as the paper's injector fires "at some point before
    the combination")."""
    from dataclasses import replace
    quiet = replace(cfg, simulated_lost_gids=(), disk=None)
    metrics = run_app(quiet, machine)
    return metrics.t_solve


def choose_lost_grids_for_scheme(scheme, technique_code: str, n_lost: int,
                                 seed: int = 0) -> Tuple[int, ...]:
    """Random set of grids to declare lost in simulated-failure runs,
    honouring the RC replica-pair constraint.

    Takes the scheme directly so sweep drivers can derive it once per
    technique instead of building a probe config per seed."""
    import random
    rng = random.Random(seed)
    eligible = [g.gid for g in scheme.grids]
    conflicts = scheme.rc_conflict_pairs() \
        if technique_code.upper() == "RC" else []
    for _ in range(10_000):
        chosen = sorted(rng.sample(eligible, n_lost))
        bad = any(a in chosen and b in chosen for a, b in conflicts)
        if not bad:
            return tuple(chosen)
    raise RuntimeError("no valid lost-grid set found")


def choose_lost_grids(cfg: AppConfig, n_lost: int, seed: int = 0) -> Tuple[int, ...]:
    """Config-flavoured wrapper around :func:`choose_lost_grids_for_scheme`."""
    return choose_lost_grids_for_scheme(cfg.scheme(), cfg.technique_code,
                                        n_lost, seed)
