"""Serial reference pipeline: the same solve -> lose -> recover -> combine
experiment with no simulated MPI at all.

Used to cross-validate the distributed application (their results must
agree to rounding) and for fast accuracy studies.  The recovery semantics
mirror :mod:`repro.core.app`:

* CR — lost grids are recomputed exactly (deterministic solver: identical
  data), so the result equals the failure-free combination;
* RC — a lost diagonal/duplicate is copied from its replica (identical
  data), a lost lower grid is *resampled* from the finer diagonal above;
* AC — new combination coefficients over the survivors; lost grids receive
  a sample of the combined solution afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..ft.recovery import technique_by_code
from ..pde.advection import AdvectionProblem
from ..pde.lax_wendroff import SerialAdvectionSolver
from ..pde.norms import l1, l2, linf
from ..sparsegrid.combine import combine_nodal
from ..sparsegrid.interpolation import axis_points, resample

GridIx = Tuple[int, int]


@dataclass
class SerialResult:
    technique: str
    n: int
    level: int
    steps: int
    dt: float
    lost_gids: Tuple[int, ...]
    error_l1: float
    error_l2: float
    error_linf: float
    coefficients: Dict[GridIx, float]
    combined: Optional[np.ndarray] = None


def solve_scheme_grids(scheme, problem: AdvectionProblem, steps: int,
                       dt: float) -> Dict[int, np.ndarray]:
    """Solve every scheme grid serially; returns gid -> nodal values.

    Duplicates share the index of their original but are solved once and
    shared (they are exact replicas by construction).
    """
    by_index: Dict[GridIx, np.ndarray] = {}
    out: Dict[int, np.ndarray] = {}
    for g in scheme.grids:
        if g.index not in by_index:
            solver = SerialAdvectionSolver(problem, g.level_x, g.level_y, dt)
            solver.step(steps)
            by_index[g.index] = solver.nodal()
        out[g.gid] = by_index[g.index]
    return out


def run_serial(*, n: int = 7, level: int = 4, technique_code: str = "AC",
               steps: int = 32, lost_gids: Iterable[int] = (),
               problem: Optional[AdvectionProblem] = None, cfl: float = 0.4,
               extra_layers: int = 2,
               target: Optional[GridIx] = None,
               collect_arrays: bool = False) -> SerialResult:
    """One full serial experiment; mirrors :func:`repro.core.run_app`."""
    problem = problem or AdvectionProblem()
    technique = technique_by_code(technique_code)
    from ..ft.recovery import AlternateCombination
    if isinstance(technique, AlternateCombination) and \
            technique.extra_layers != extra_layers:
        technique = AlternateCombination(extra_layers)
    scheme = technique.make_scheme(n, level)
    lost = sorted(set(lost_gids))
    dt = problem.stable_dt(n, cfl)
    target = target or (n, n)

    data = solve_scheme_grids(scheme, problem, steps, dt)

    # --- recovery ---------------------------------------------------------
    if technique.code == "CR":
        pass  # recompute reproduces the lost data exactly
    elif technique.code == "RC":
        plan = technique.recovery_plan(scheme, lost)
        for dst_gid, src_gid in plan:
            src = scheme[src_gid]
            dst = scheme[dst_gid]
            data[dst_gid] = resample(data[src_gid], src.index, dst.index)
    # AC: nothing to restore before combination

    # --- combination -------------------------------------------------------
    coeffs = technique.combination_coefficients(scheme, lost)
    holders: Dict[GridIx, int] = {}
    for g in scheme.grids:
        if coeffs.get(g.index, 0.0) == 0.0:
            continue
        if technique.code == "AC" and g.gid in lost:
            continue  # data gone; a surviving copy must supply the index
        current = holders.get(g.index)
        if current is None or (current in lost and g.gid not in lost):
            holders[g.index] = g.gid  # prefer a pristine (non-lost) copy
    parts = {ix: data[gid] for ix, gid in holders.items()}
    combined = combine_nodal(parts, coeffs, target)

    # --- error --------------------------------------------------------------
    xs = axis_points(target[0])
    ys = axis_points(target[1])
    exact = problem.exact(xs, ys, steps * dt)
    return SerialResult(
        technique=technique.code, n=n, level=level, steps=steps, dt=dt,
        lost_gids=tuple(lost),
        error_l1=l1(combined, exact), error_l2=l2(combined, exact),
        error_linf=linf(combined, exact), coefficients=dict(coeffs),
        combined=combined if collect_arrays else None)
