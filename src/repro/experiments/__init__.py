"""Experiment harnesses: one module per table/figure of the paper.

* :mod:`repro.experiments.fig8`   — failure identification / reconstruction times
* :mod:`repro.experiments.table1` — ULFM per-operation wall times
* :mod:`repro.experiments.fig9`   — data-recovery overheads (OPL + Raijin)
* :mod:`repro.experiments.fig10`  — combined-solution approximation error
* :mod:`repro.experiments.fig11`  — overall time and parallel efficiency
* :mod:`repro.experiments.modes`  — recovery-mode comparison (respawn vs
  shrink-in-place vs non-collective repair)

Each exposes ``run_*`` (returns structured points) and ``format_*``
(paper-style text table); ``python -m repro.experiments.<name>`` runs one.
"""

from . import fig8, fig9, fig10, fig11, modes, report, table1

__all__ = ["fig8", "fig9", "fig10", "fig11", "modes", "table1", "report"]
