"""Fig. 10: average approximation error of the combined solution.

Real numerics: the 2D advection problem is integrated on every sub-grid,
1..5 grids are declared lost (simulated failures, as in the paper), each
technique recovers, and the l1 error of the final combined solution against
the analytic solution is averaged over seeds (the paper averages 20
experiments).

Expected shape: CR flat (exact recovery); RC and AC grow with losses; AC
*more accurate* than RC (the paper's surprising headline); both within
about a factor of 10 of the baseline up to 5 lost grids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..core import AppConfig, choose_lost_grids_for_scheme
from ..machine.presets import IDEAL
from ..sweep import SweepPoint, make_runner
from .report import format_table, merge_phases, scale_phases

TECH_CODES = ("CR", "RC", "AC")


@dataclass
class Fig10Point:
    technique: str
    n_lost: int
    error_l1: float
    baseline_l1: float
    #: per-phase critical-path seconds, seed-averaged
    phases: Dict[str, float] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        return self.error_l1 / self.baseline_l1 if self.baseline_l1 else 0.0


def run_fig10(*, n: int = 7, level: int = 4, steps: int = 32,  # repro: cacheable
              diag_procs: int = 2, lost_counts: Sequence[int] = (0, 1, 2, 3, 4, 5),
              seeds: Sequence[int] = tuple(range(5)), machine=IDEAL,
              checkpoint_count: int = 4,
              workers=None, cache=None, runner=None) -> List[Fig10Point]:
    sweep = make_runner(runner, workers, cache)

    def _cfg(code, lost):
        return AppConfig(n=n, level=level, technique_code=code,
                         steps=steps, diag_procs=diag_procs,
                         checkpoint_count=checkpoint_count,
                         simulated_lost_gids=lost)

    tasks: List[SweepPoint] = []
    for code in TECH_CODES:
        scheme = _cfg(code, ()).scheme()   # once per technique
        for n_lost in lost_counts:
            for seed in seeds:
                lost = choose_lost_grids_for_scheme(
                    scheme, code, n_lost, seed=seed) if n_lost else ()
                tasks.append(SweepPoint(_cfg(code, lost), machine))
                if n_lost == 0:
                    break  # deterministic without losses
    metrics = iter(sweep.run(tasks))

    points = []
    for code in TECH_CODES:
        baseline = None
        for n_lost in lost_counts:
            errs = []
            phases: Dict[str, float] = {}
            for seed in seeds:
                m = next(metrics)
                errs.append(m.error_l1)
                merge_phases(phases, m.phase_breakdown)
                if n_lost == 0:
                    break
            avg = sum(errs) / len(errs)
            if baseline is None:
                baseline = avg
            points.append(Fig10Point(code, n_lost, avg, baseline,
                                     scale_phases(phases, len(errs))))
    return points


def format_fig10(points: List[Fig10Point]) -> str:
    rows = [[p.technique, p.n_lost, p.error_l1, p.ratio] for p in points]
    return format_table(
        ["tech", "lost", "l1 error", "vs baseline"], rows,
        title="Fig. 10: average l1 approximation error of the combined "
              "solution", floatfmt="12.4e")


def main(argv=None):  # pragma: no cover - CLI
    import argparse
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small fast variant")
    ap.add_argument("--json", metavar="FILE",
                    help="write the experiment document ('-' = stdout)")
    ap.add_argument("--workers", type=int, default=None,
                    help="parallel sweep workers (default: REPRO_WORKERS or 1)")
    args = ap.parse_args(argv)
    pts = run_fig10(seeds=tuple(range(3)), workers=args.workers) \
        if args.quick else run_fig10(workers=args.workers)
    if args.json:
        from .report import write_experiment_json
        write_experiment_json(args.json, "fig10", pts)
    else:
        print(format_fig10(pts))


if __name__ == "__main__":  # pragma: no cover
    main()
