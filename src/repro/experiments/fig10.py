"""Fig. 10: average approximation error of the combined solution.

Real numerics: the 2D advection problem is integrated on every sub-grid,
1..5 grids are declared lost (simulated failures, as in the paper), each
technique recovers, and the l1 error of the final combined solution against
the analytic solution is averaged over seeds (the paper averages 20
experiments).

Expected shape: CR flat (exact recovery); RC and AC grow with losses; AC
*more accurate* than RC (the paper's surprising headline); both within
about a factor of 10 of the baseline up to 5 lost grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core import AppConfig, choose_lost_grids, run_app
from ..machine.presets import IDEAL
from .report import format_table

TECH_CODES = ("CR", "RC", "AC")


@dataclass
class Fig10Point:
    technique: str
    n_lost: int
    error_l1: float
    baseline_l1: float

    @property
    def ratio(self) -> float:
        return self.error_l1 / self.baseline_l1 if self.baseline_l1 else 0.0


def run_fig10(*, n: int = 7, level: int = 4, steps: int = 32,
              diag_procs: int = 2, lost_counts: Sequence[int] = (0, 1, 2, 3, 4, 5),
              seeds: Sequence[int] = tuple(range(5)), machine=IDEAL,
              checkpoint_count: int = 4) -> List[Fig10Point]:
    points = []
    for code in TECH_CODES:
        baseline = None
        for n_lost in lost_counts:
            errs = []
            for seed in seeds:
                probe = AppConfig(n=n, level=level, technique_code=code,
                                  steps=steps, diag_procs=diag_procs,
                                  checkpoint_count=checkpoint_count)
                lost = choose_lost_grids(probe, n_lost, seed=seed) \
                    if n_lost else ()
                cfg = AppConfig(n=n, level=level, technique_code=code,
                                steps=steps, diag_procs=diag_procs,
                                checkpoint_count=checkpoint_count,
                                simulated_lost_gids=lost)
                m = run_app(cfg, machine)
                errs.append(m.error_l1)
                if n_lost == 0:
                    break  # deterministic without losses
            avg = sum(errs) / len(errs)
            if baseline is None:
                baseline = avg
            points.append(Fig10Point(code, n_lost, avg, baseline))
    return points


def format_fig10(points: List[Fig10Point]) -> str:
    rows = [[p.technique, p.n_lost, p.error_l1, p.ratio] for p in points]
    return format_table(
        ["tech", "lost", "l1 error", "vs baseline"], rows,
        title="Fig. 10: average l1 approximation error of the combined "
              "solution", floatfmt="12.4e")


def main():  # pragma: no cover - CLI
    print(format_fig10(run_fig10()))


if __name__ == "__main__":  # pragma: no cover
    main()
