"""Fig. 11: overall execution time (a) and parallel efficiency (b).

Each technique is run with 0, 1 and 2 real failures across a range of
process counts (the paper layout scaled by the diagonal process count).

Expected shape: CR most costly and least scalable at every scale (it pays
C checkpoints plus per-checkpoint failure detection), AC cheapest, RC in
between; the 2-failure series pay the large beta-ULFM reconstruction cost
(Fig. 8 / Table I) on top.

Efficiency is strong-scaling efficiency within each series:
``E(P) = T(P0) * P0 / (T(P) * P)`` with P0 the series' smallest run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..core import AppConfig, plan_failures
from ..machine.presets import OPL
from ..sweep import SweepPoint, make_runner
from .report import format_table, merge_phases, scale_phases

TECH_CODES = ("CR", "RC", "AC")


@dataclass
class Fig11Point:
    technique: str
    n_failures: int
    cores: int
    t_total: float
    efficiency: float = 1.0
    #: per-phase critical-path seconds, seed-averaged
    phases: Dict[str, float] = field(default_factory=dict)


def run_fig11(*, n: int = 7, level: int = 4, steps: int = 16,  # repro: cacheable
              diag_procs: Sequence[int] = (2, 4, 8, 16),
              failure_counts: Sequence[int] = (0, 1, 2),
              seeds: Sequence[int] = (0,), machine=OPL,
              checkpoint_count=4, compute_scale: float = 1.0,
              workers=None, cache=None, runner=None) -> List[Fig11Point]:
    sweep = make_runner(runner, workers, cache)

    def _cfg(code, p):
        return AppConfig(n=n, level=level, technique_code=code,
                         steps=steps, diag_procs=p,
                         checkpoint_count=checkpoint_count,
                         compute_scale=compute_scale)

    # stage 1: failure-free baselines, once per (technique, scale) — the
    # zero-failure runs below hit these cache entries instead of re-running
    base_points = [SweepPoint(_cfg(code, p), machine)
                   for code in TECH_CODES for p in diag_procs]
    t_solves = {(bp.cfg.technique_code, bp.cfg.diag_procs): m.t_solve
                for bp, m in zip(base_points, sweep.run(base_points))}

    # stage 2: the full (technique, failures, scale, seed) grid
    tasks: List[SweepPoint] = []
    for code in TECH_CODES:
        for nf in failure_counts:
            for p in diag_procs:
                for seed in seeds:
                    cfg = _cfg(code, p)
                    kills = plan_failures(
                        cfg, nf, max(t_solves[code, p] * 0.5, 1e-9),
                        seed=seed) if nf else ()
                    tasks.append(SweepPoint(cfg, machine,
                                            kills=tuple(kills)))
    metrics = iter(sweep.run(tasks))

    points: List[Fig11Point] = []
    for code in TECH_CODES:
        for nf in failure_counts:
            series: List[Fig11Point] = []
            for p in diag_procs:
                totals = []
                phases: Dict[str, float] = {}
                for seed in seeds:
                    m = next(metrics)
                    totals.append(m.t_total)
                    cores = m.world_size
                    merge_phases(phases, m.phase_breakdown)
                series.append(Fig11Point(
                    code, nf, cores, sum(totals) / len(totals),
                    phases=scale_phases(phases, len(seeds))))
            t0, p0 = series[0].t_total, series[0].cores
            for pt in series:
                pt.efficiency = (t0 * p0) / (pt.t_total * pt.cores) \
                    if pt.t_total else 0.0
            points.extend(series)
    return points


def run_fig11_paper_scale(seeds: Sequence[int] = (0,), workers=None,  # repro: cacheable
                          cache=None, runner=None) -> List[Fig11Point]:
    """Fig. 11 at a compute-dominated problem size.

    Parallel efficiency is only meaningful when solve time dominates fixed
    overheads; this preset raises the per-step virtual cost to the paper's
    regime so AC/RC sit above ~80% efficiency at zero failures, with CR
    dragged down by its per-checkpoint detection + write costs."""
    return run_fig11(n=9, level=4, steps=64, diag_procs=(2, 4, 8, 16),
                     seeds=seeds, checkpoint_count=4, compute_scale=2400.0,
                     workers=workers, cache=cache, runner=runner)


def format_fig11(points: List[Fig11Point]) -> str:
    rows = [[p.technique, p.n_failures, p.cores, p.t_total, p.efficiency]
            for p in points]
    return format_table(
        ["tech", "failures", "cores", "total(s)", "efficiency"], rows,
        title="Fig. 11: overall execution time (a) and parallel "
              "efficiency (b)")


def main(argv=None):  # pragma: no cover - CLI
    import argparse
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small fast variant")
    ap.add_argument("--json", metavar="FILE",
                    help="write the experiment document ('-' = stdout)")
    ap.add_argument("--workers", type=int, default=None,
                    help="parallel sweep workers (default: REPRO_WORKERS or 1)")
    args = ap.parse_args(argv)
    pts = run_fig11(diag_procs=(2, 4, 8), workers=args.workers) \
        if args.quick else run_fig11(workers=args.workers)
    if args.json:
        from .report import write_experiment_json
        write_experiment_json(args.json, "fig11", pts)
    else:
        print(format_fig11(pts))


if __name__ == "__main__":  # pragma: no cover
    main()
