"""Fig. 8: failure identification and communicator reconstruction times.

Two panels, both vs core count (19..304) with one and two real process
failures:

* (a) creating the list of failed processes — shrink + group algebra;
* (b) reconstructing the faulty communicator — the whole Fig. 3/5 repair.

Expected shape (paper Sec. III-A): both grow with core count, and the
two-failure case is dramatically more expensive than one failure (the
"unsatisfactory" beta behaviour driven by shrink and agree).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..core import AppConfig, plan_failures
from ..machine.presets import OPL
from ..sweep import SweepPoint, make_runner
from .report import format_table, merge_phases, scale_phases
from .table1 import SWEEP_DIAG_PROCS


@dataclass
class Fig8Point:
    cores: int
    n_failures: int
    t_failed_list: float     #: Fig. 8a
    t_reconstruct: float     #: Fig. 8b
    #: per-phase critical-path seconds, seed-averaged
    phases: Dict[str, float] = field(default_factory=dict)


def run_fig8(*, n: int = 7, level: int = 4, steps: int = 8,  # repro: cacheable
             diag_procs: Sequence[int] = SWEEP_DIAG_PROCS,
             failure_counts: Sequence[int] = (1, 2),
             seeds: Sequence[int] = (0,), machine=OPL,
             workers=None, cache=None, runner=None) -> List[Fig8Point]:
    sweep = make_runner(runner, workers, cache)

    def _cfg(p):
        return AppConfig(n=n, level=level, technique_code="CR", steps=steps,
                         diag_procs=p, layout_mode="sweep",
                         checkpoint_count=2)

    # stage 1: failure-free baselines (shared with run_table1 when the two
    # experiments run on one cache)
    base_points = [SweepPoint(_cfg(p), machine) for p in diag_procs]
    t_solves = {bp.cfg.diag_procs: m.t_solve
                for bp, m in zip(base_points, sweep.run(base_points))}

    # stage 2: the killed runs
    tasks: List[SweepPoint] = []
    for p in diag_procs:
        for nf in failure_counts:
            for seed in seeds:
                cfg = _cfg(p)
                kills = plan_failures(cfg, nf,
                                      max(t_solves[p] * 0.5, 1e-9),
                                      seed=seed)
                tasks.append(SweepPoint(cfg, machine, kills=tuple(kills)))
    metrics = iter(sweep.run(tasks))

    points = []
    for p in diag_procs:
        for nf in failure_counts:
            t_list, t_rec, cores = 0.0, 0.0, 0
            phases: Dict[str, float] = {}
            for seed in seeds:
                m = next(metrics)
                t_list += m.t_detect
                t_rec += m.t_reconstruct
                cores = m.world_size
                merge_phases(phases, m.phase_breakdown)
            points.append(Fig8Point(cores, nf, t_list / len(seeds),
                                    t_rec / len(seeds),
                                    scale_phases(phases, len(seeds))))
    return points


def format_fig8(points: List[Fig8Point]) -> str:
    rows = [[pt.cores, pt.n_failures, pt.t_failed_list, pt.t_reconstruct]
            for pt in points]
    return format_table(
        ["cores", "failures", "failed-list(s)", "reconstruct(s)"], rows,
        title="Fig. 8: failure identification (a) and communicator "
              "reconstruction (b) wall times")


def main(argv=None):  # pragma: no cover - CLI
    import argparse
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small fast variant")
    ap.add_argument("--json", metavar="FILE",
                    help="write the experiment document ('-' = stdout)")
    ap.add_argument("--workers", type=int, default=None,
                    help="parallel sweep workers (default: REPRO_WORKERS or 1)")
    args = ap.parse_args(argv)
    pts = run_fig8(seeds=(0,), workers=args.workers) if args.quick \
        else run_fig8(seeds=(0, 1, 2), workers=args.workers)
    if args.json:
        from .report import write_experiment_json
        write_experiment_json(args.json, "fig8", pts)
    else:
        print(format_fig8(pts))


if __name__ == "__main__":  # pragma: no cover
    main()
