"""Fig. 8: failure identification and communicator reconstruction times.

Two panels, both vs core count (19..304) with one and two real process
failures:

* (a) creating the list of failed processes — shrink + group algebra;
* (b) reconstructing the faulty communicator — the whole Fig. 3/5 repair.

Expected shape (paper Sec. III-A): both grow with core count, and the
two-failure case is dramatically more expensive than one failure (the
"unsatisfactory" beta behaviour driven by shrink and agree).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..core import AppConfig, baseline_solve_time, plan_failures, run_app
from ..machine.presets import OPL
from .report import format_table, merge_phases, scale_phases
from .table1 import SWEEP_DIAG_PROCS


@dataclass
class Fig8Point:
    cores: int
    n_failures: int
    t_failed_list: float     #: Fig. 8a
    t_reconstruct: float     #: Fig. 8b
    #: per-phase critical-path seconds, seed-averaged
    phases: Dict[str, float] = field(default_factory=dict)


def run_fig8(*, n: int = 7, level: int = 4, steps: int = 8,
             diag_procs: Sequence[int] = SWEEP_DIAG_PROCS,
             failure_counts: Sequence[int] = (1, 2),
             seeds: Sequence[int] = (0,), machine=OPL) -> List[Fig8Point]:
    points = []
    for p in diag_procs:
        base = AppConfig(n=n, level=level, technique_code="CR", steps=steps,
                         diag_procs=p, layout_mode="sweep",
                         checkpoint_count=2)
        t_solve = baseline_solve_time(base, machine)
        for nf in failure_counts:
            t_list, t_rec, cores = 0.0, 0.0, 0
            phases: Dict[str, float] = {}
            for seed in seeds:
                cfg = AppConfig(n=n, level=level, technique_code="CR",
                                steps=steps, diag_procs=p,
                                layout_mode="sweep", checkpoint_count=2)
                kills = plan_failures(cfg, nf, max(t_solve * 0.5, 1e-9),
                                      seed=seed)
                m = run_app(cfg, machine, kills=kills)
                t_list += m.t_detect
                t_rec += m.t_reconstruct
                cores = m.world_size
                merge_phases(phases, m.phase_breakdown)
            points.append(Fig8Point(cores, nf, t_list / len(seeds),
                                    t_rec / len(seeds),
                                    scale_phases(phases, len(seeds))))
    return points


def format_fig8(points: List[Fig8Point]) -> str:
    rows = [[pt.cores, pt.n_failures, pt.t_failed_list, pt.t_reconstruct]
            for pt in points]
    return format_table(
        ["cores", "failures", "failed-list(s)", "reconstruct(s)"], rows,
        title="Fig. 8: failure identification (a) and communicator "
              "reconstruction (b) wall times")


def main(argv=None):  # pragma: no cover - CLI
    import argparse
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small fast variant")
    ap.add_argument("--json", metavar="FILE",
                    help="write the experiment document ('-' = stdout)")
    args = ap.parse_args(argv)
    pts = run_fig8(seeds=(0,)) if args.quick else run_fig8(seeds=(0, 1, 2))
    if args.json:
        from .report import write_experiment_json
        write_experiment_json(args.json, "fig8", pts)
    else:
        print(format_fig8(pts))


if __name__ == "__main__":  # pragma: no cover
    main()
