"""Fig. 9: failed-grid data-recovery overhead (a) and process-time
data-recovery overhead (b).

Setup mirrors the paper: level 4, the Fig. 9 process layout (8 per
diagonal/duplicate grid, 4 per lower, 2/1 per extra layer), *simulated*
(non-real) failures of 1..5 grids — "the results do not include faulty
communicator reconstruction time" — on both OPL (T_I/O = 3.52 s) and
Raijin (T_I/O = 0.03 s).

Overheads per technique (Sec. III-B):

* CR — all checkpoint writes + reading the recent checkpoint + recomputation;
* RC — copying and/or resampling grid data from the redundant grids;
* AC — only creating the new combination coefficients.

Panel (b) applies the paper's process-time normalisation:

    T'rec,c = C*T_IO + Trec,c                       (per process, P_c procs)
    T'rec,r = (Trec,r*P_r + Tapp,r*(P_r - P_c)) / P_c
    T'rec,a = (Trec,a*P_a + Tapp,a*(P_a - P_c)) / P_c

charging RC and AC for their extra processes relative to CR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core import AppConfig, choose_lost_grids_for_scheme
from ..machine.presets import OPL, RAIJIN
from ..sweep import SweepPoint, make_runner
from .report import format_table, merge_phases, scale_phases

TECH_CODES = ("CR", "RC", "AC")


@dataclass
class Fig9Point:
    machine: str
    technique: str
    n_lost: int
    recovery_overhead: float       #: Fig. 9a
    process_time_overhead: float   #: Fig. 9b
    world_size: int
    t_app: float
    #: per-phase critical-path seconds, seed-averaged
    phases: Dict[str, float] = field(default_factory=dict)


def _config(code: str, n: int, level: int, steps: int, diag_procs: int,
            lost: Tuple[int, ...], checkpoint_count,
            compute_scale: float = 1.0) -> AppConfig:
    return AppConfig(n=n, level=level, technique_code=code, steps=steps,
                     diag_procs=diag_procs, layout_mode="paper",
                     checkpoint_count=checkpoint_count,
                     simulated_lost_gids=lost, compute_scale=compute_scale)


def recovery_overhead(m) -> float:
    """Fig. 9a overhead from one run's metrics."""
    if m.technique == "CR":
        return m.checkpoint_write_time + m.t_recovery
    return m.t_recovery


def run_fig9(*, n: int = 7, level: int = 4, steps: int = 16,  # repro: cacheable
             diag_procs: int = 8, lost_counts: Sequence[int] = (1, 2, 3, 4, 5),
             seeds: Sequence[int] = (0, 1, 2),
             machines=(OPL, RAIJIN), checkpoint_count=4,
             compute_scale: float = 1.0,
             workers=None, cache=None, runner=None) -> List[Fig9Point]:
    sweep = make_runner(runner, workers, cache)
    # lost-grid sets depend only on the scheme (derived once per
    # technique), not on the machine or per-seed probe configs
    lost_sets: Dict[Tuple[str, int, int], Tuple[int, ...]] = {}
    for code in TECH_CODES:
        scheme = _config(code, n, level, steps, diag_procs, (),
                         checkpoint_count).scheme()
        for n_lost in lost_counts:
            for seed in seeds:
                lost_sets[code, n_lost, seed] = choose_lost_grids_for_scheme(
                    scheme, code, n_lost, seed=seed)

    tasks: List[SweepPoint] = []
    for machine in machines:
        for code in TECH_CODES:
            for n_lost in lost_counts:
                for seed in seeds:
                    cfg = _config(code, n, level, steps, diag_procs,
                                  lost_sets[code, n_lost, seed],
                                  checkpoint_count, compute_scale)
                    tasks.append(SweepPoint(cfg, machine))
    metrics = iter(sweep.run(tasks))

    points = []
    for machine in machines:
        # the CR process count P_c anchors the normalisation
        p_c = _config("CR", n, level, steps, diag_procs, (),
                      checkpoint_count).layout().total_procs
        for code in TECH_CODES:
            for n_lost in lost_counts:
                oh, pt, world, tapp = 0.0, 0.0, 0, 0.0
                phases: Dict[str, float] = {}
                for seed in seeds:
                    m = next(metrics)
                    rec = recovery_overhead(m)
                    t_app = m.t_app_excl_reconstruct
                    p_x = m.world_size
                    if code == "CR":
                        norm = rec
                    else:
                        norm = (rec * p_x + t_app * (p_x - p_c)) / p_c
                    oh += rec
                    pt += norm
                    world = p_x
                    tapp += t_app
                    merge_phases(phases, m.phase_breakdown)
                k = len(seeds)
                points.append(Fig9Point(machine.name, code, n_lost, oh / k,
                                        pt / k, world, tapp / k,
                                        scale_phases(phases, k)))
    return points


def format_fig9(points: List[Fig9Point]) -> str:
    rows = [[p.machine, p.technique, p.n_lost, p.recovery_overhead,
             p.process_time_overhead, p.world_size] for p in points]
    return format_table(
        ["machine", "tech", "lost", "recovery(s)", "proc-time(s)", "procs"],
        rows,
        title="Fig. 9: data recovery overhead (a) and process-time "
              "overhead (b)", floatfmt="12.5f")


def run_fig9_paper_scale(seeds: Sequence[int] = (0, 1, 2),  # repro: cacheable
                         workers=None, cache=None,
                         runner=None) -> List[Fig9Point]:
    """Fig. 9 with the paper-scale timing regime.

    The paper's Fig. 9b result set — CR worst / AC best on OPL, CR *best*
    on Raijin — emerges only when the application time is large enough to
    amortise checkpointing on a fast disk (the paper runs n=13 for 2^13
    steps).  ``compute_scale`` raises the virtual per-step cost to that
    regime (t_app ~ 10 s) without paying the full numerics, and checkpoint
    counts are machine-optimal (``checkpoint_count=None``) as a real
    deployment would choose them."""
    return run_fig9(n=9, level=4, steps=256, diag_procs=8, seeds=seeds,
                    checkpoint_count=None, compute_scale=600.0,
                    workers=workers, cache=cache, runner=runner)


def main(argv=None):  # pragma: no cover - CLI
    import argparse
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small fast variant")
    ap.add_argument("--json", metavar="FILE",
                    help="write the experiment document ('-' = stdout)")
    ap.add_argument("--workers", type=int, default=None,
                    help="parallel sweep workers (default: REPRO_WORKERS or 1)")
    args = ap.parse_args(argv)
    kw = dict(workers=args.workers)
    pts = run_fig9(steps=16, seeds=(0,), **kw) if args.quick \
        else run_fig9(**kw)
    if args.json:
        from .report import write_experiment_json
        write_experiment_json(args.json, "fig9", pts)
    else:
        print(format_fig9(pts))


if __name__ == "__main__":  # pragma: no cover
    main()
