"""Recovery-mode comparison: respawn vs shrink-in-place vs non-collective.

The paper repairs every failure with the global respawn pipeline
(Figs. 3/5).  This experiment puts the two alternative modes
(:mod:`repro.ft.strategy`) through the same kill sweep and compares,
per (recovery mode x data-recovery technique):

* total wall time against the mode's own failure-free baseline;
* the repair-time split (shrink / spawn / agree / merge — shrink mode
  never spawns or merges, the non-collective mode repairs sub-grid-sized
  communicators);
* the l1 error of the final combined solution (shrink mode trades
  accuracy for repair speed when a contracted grid drops out of the
  combination under RC/AC).

Kills are deterministic, not seeded: victim k is the last rank of the
k-th multi-member grid group, so the same plan is legal in every mode —
rank 0 survives (respawn convention), every grid keeps a survivor (the
non-collective mode cannot rebuild a fully-lost grid), and no RC
replica pair fails together.  Multi-failure plans kill simultaneously
in distinct grids, exercising concurrent per-grid repairs in the
non-collective mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..core import AppConfig
from ..ft.failure_injection import Kill
from ..machine.presets import OPL
from ..sweep import SweepPoint, make_runner
from .report import format_table, merge_phases

RECOVERY_MODES = ("respawn", "shrink", "nc")
TECH_CODES = ("CR", "RC", "AC")


@dataclass
class ModesPoint:
    mode: str
    technique: str
    n_failures: int
    world_size: int
    t_total: float
    t_reconstruct: float
    t_recovery: float
    error_l1: float
    #: failure-free t_total of the same (mode, technique) configuration
    baseline_total: float
    #: per-phase critical-path seconds
    phases: Dict[str, float] = field(default_factory=dict)

    @property
    def overhead(self) -> float:
        """Total-time multiplier over the failure-free baseline."""
        return self.t_total / self.baseline_total if self.baseline_total \
            else 0.0


def mode_kill_plan(cfg: AppConfig, n_failures: int, at: float) -> List[Kill]:
    """Deterministic kill plan legal under *every* recovery mode.

    One victim per grid, chosen as the highest rank of the next grid
    group with at least two members (so rank 0 — the first member of the
    first group — is never picked and every grid keeps a survivor).
    Under RC, grids whose resample partner already lost a member are
    skipped.  All kills fire at the same instant ``at``.
    """
    layout = cfg.layout()
    scheme = cfg.scheme()
    conflicts = scheme.rc_conflict_pairs() \
        if cfg.technique_code.upper() == "RC" else []
    partner = {}
    for a, b in conflicts:
        partner.setdefault(a, set()).add(b)
        partner.setdefault(b, set()).add(a)
    kills: List[Kill] = []
    hit: List[int] = []
    for g in (grid.gid for grid in scheme.grids):
        if len(kills) >= n_failures:
            break
        ranks = layout.group_ranks(g)
        if len(ranks) < 2:
            continue  # a sole member must survive for the nc mode
        if partner.get(g, set()) & set(hit):
            continue  # RC: never fail a replica pair together
        kills.append(Kill(rank=ranks[-1], at=at))
        hit.append(g)
    if len(kills) < n_failures:
        raise ValueError(
            f"layout has only {len(kills)} grid group(s) eligible for a "
            f"mode-portable kill; requested {n_failures} failures")
    return kills


def run_modes(*, n: int = 6, level: int = 4, steps: int = 16,  # repro: cacheable
              diag_procs: int = 2, checkpoint_count: int = 4,
              failure_counts: Sequence[int] = (1, 2),
              techniques: Sequence[str] = TECH_CODES,
              modes: Sequence[str] = RECOVERY_MODES,
              machine=OPL,
              workers=None, cache=None, runner=None) -> List[ModesPoint]:
    sweep = make_runner(runner, workers, cache)

    def _cfg(mode, code):
        return AppConfig(n=n, level=level, technique_code=code,
                         recovery_mode=mode, steps=steps,
                         diag_procs=diag_procs,
                         checkpoint_count=checkpoint_count)

    # stage 1: per-(mode, technique) failure-free baselines — the modes
    # differ even without failures (detection collectives, the nc world
    # resync), so each configuration is normalised against itself
    base_points = [SweepPoint(_cfg(mode, code), machine)
                   for mode in modes for code in techniques]
    baselines = {(bp.cfg.recovery_mode, bp.cfg.technique_code): m
                 for bp, m in zip(base_points, sweep.run(base_points))}

    # stage 2: the killed runs, each kill placed mid-solve of its own
    # baseline (checkpoint writes stretch CR's solve, so the kill time is
    # per-technique, never shared across columns)
    tasks: List[SweepPoint] = []
    for mode in modes:
        for code in techniques:
            base = baselines[(mode, code)]
            at = max(base.t_solve * 0.5, 1e-9)
            for nf in failure_counts:
                kills = mode_kill_plan(_cfg(mode, code), nf, at)
                tasks.append(SweepPoint(_cfg(mode, code), machine,
                                        kills=tuple(kills)))
    metrics = iter(sweep.run(tasks))

    points = []
    for mode in modes:
        for code in techniques:
            base = baselines[(mode, code)]
            points.append(ModesPoint(
                mode, code, 0, base.world_size, base.t_total,
                base.t_reconstruct, base.t_recovery, base.error_l1,
                base.t_total, dict(base.phase_breakdown)))
            for nf in failure_counts:
                m = next(metrics)
                phases: Dict[str, float] = {}
                merge_phases(phases, m.phase_breakdown)
                points.append(ModesPoint(
                    mode, code, nf, m.world_size, m.t_total,
                    m.t_reconstruct, m.t_recovery, m.error_l1,
                    base.t_total, phases))
    return points


def format_modes(points: List[ModesPoint]) -> str:
    rows = [[p.mode, p.technique, p.n_failures, p.world_size, p.t_total,
             p.overhead, p.t_reconstruct, p.t_recovery, p.error_l1]
            for p in points]
    return format_table(
        ["mode", "tech", "fails", "ranks", "total(s)", "vs base",
         "repair(s)", "recover(s)", "l1 error"], rows,
        title="Recovery-mode comparison: respawn vs shrink-in-place vs "
              "non-collective repair", floatfmt="10.4g")


def main(argv=None):  # pragma: no cover - CLI
    import argparse
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small fast variant")
    ap.add_argument("--json", metavar="FILE",
                    help="write the experiment document ('-' = stdout)")
    ap.add_argument("--workers", type=int, default=None,
                    help="parallel sweep workers (default: REPRO_WORKERS or 1)")
    args = ap.parse_args(argv)
    pts = run_modes(workers=args.workers) if args.quick \
        else run_modes(n=7, steps=32, diag_procs=4,
                       failure_counts=(1, 2, 3), workers=args.workers)
    if args.json:
        from .report import write_experiment_json
        write_experiment_json(args.json, "modes", pts)
    else:
        print(format_modes(pts))


if __name__ == "__main__":  # pragma: no cover
    main()
