"""One registry of the runnable experiments.

``python -m repro experiment`` and the HTTP service
(``/v1/experiment/<name>``) run the same drivers with the same quick /
full parameterisations; this module is the single place those are
spelled so the two front ends cannot drift.

Every driver takes the shared :class:`repro.sweep.SweepRunner`, so the
caller decides the worker count and cache (the service passes its
persistent shared cache; misses computed for one client are hits for
every later one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from . import fig8, fig9, fig10, fig11, modes, table1

__all__ = ["EXPERIMENTS", "ExperimentSpec", "experiment_names",
           "format_experiment", "run_experiment"]


@dataclass(frozen=True)
class ExperimentSpec:
    """How to produce and render one paper table/figure."""

    name: str
    #: ``run(quick, runner) -> points``
    run: Callable[[bool, object], Sequence]
    #: ``fmt(points) -> str`` (the human-readable table)
    fmt: Callable[[Sequence], str]


def _run_table1(quick: bool, runner) -> List:
    return table1.run_table1(steps=8, runner=runner)


def _run_fig8(quick: bool, runner) -> List:
    seeds = (0,) if quick else (0, 1, 2)
    return fig8.run_fig8(steps=8, seeds=seeds, runner=runner)


def _run_fig9(quick: bool, runner) -> List:
    if quick:
        return fig9.run_fig9(n=7, steps=16, seeds=(0,), runner=runner)
    return fig9.run_fig9_paper_scale(seeds=(0,), runner=runner)


def _run_fig10(quick: bool, runner) -> List:
    seeds = tuple(range(3 if quick else 10))
    n = 7 if quick else 9
    steps = 32 if quick else 128
    return fig10.run_fig10(n=n, steps=steps, seeds=seeds, runner=runner)


def _run_fig11(quick: bool, runner) -> List:
    if quick:
        return fig11.run_fig11(n=7, steps=16, diag_procs=(2, 4, 8),
                               compute_scale=200.0, runner=runner)
    return fig11.run_fig11_paper_scale(runner=runner)


def _run_modes(quick: bool, runner) -> List:
    if quick:
        return modes.run_modes(runner=runner)
    return modes.run_modes(n=7, steps=32, diag_procs=4,
                           failure_counts=(1, 2, 3), runner=runner)


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    "table1": ExperimentSpec("table1", _run_table1, table1.format_table1),
    "fig8": ExperimentSpec("fig8", _run_fig8, fig8.format_fig8),
    "fig9": ExperimentSpec("fig9", _run_fig9, fig9.format_fig9),
    "fig10": ExperimentSpec("fig10", _run_fig10, fig10.format_fig10),
    "fig11": ExperimentSpec("fig11", _run_fig11, fig11.format_fig11),
    "modes": ExperimentSpec("modes", _run_modes, modes.format_modes),
}


def experiment_names() -> Tuple[str, ...]:
    return tuple(EXPERIMENTS)


def run_experiment(name: str, quick: bool, runner) -> Sequence:
    """Run one experiment through ``runner``; raises ``KeyError`` for an
    unknown name (front ends validate first)."""
    return EXPERIMENTS[name].run(quick, runner)


def format_experiment(name: str, points: Sequence) -> str:
    return EXPERIMENTS[name].fmt(points)
