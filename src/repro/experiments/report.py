"""Formatting helpers: paper-vs-measured tables for every experiment."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "", floatfmt: str = "10.3f") -> str:
    """Plain-text aligned table (benchmarks print these)."""
    def fmt(v):
        if isinstance(v, float):
            return f"{v:{floatfmt}}"
        return str(v)

    srows = [[fmt(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in srows)) if srows else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in srows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def series_summary(name: str, xs: Sequence, ys: Sequence[float]) -> str:
    pts = ", ".join(f"{x}:{y:.3g}" for x, y in zip(xs, ys))
    return f"{name}: {pts}"


def check_monotone_increasing(ys: Sequence[float], slack: float = 0.0) -> bool:
    """Shape check: each value at least (1-slack) of the previous."""
    return all(b >= a * (1.0 - slack) for a, b in zip(ys, ys[1:]))


def geometric_mean(values: Sequence[float]) -> float:
    import math
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
