"""Formatting helpers: paper-vs-measured tables for every experiment,
plus the machine-readable (``--json``) experiment document."""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..obs.schema import EXPERIMENT_SCHEMA_VERSION


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "", floatfmt: str = "10.3f") -> str:
    """Plain-text aligned table (benchmarks print these)."""
    def fmt(v):
        if isinstance(v, float):
            return f"{v:{floatfmt}}"
        return str(v)

    srows = [[fmt(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in srows)) if srows else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in srows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def series_summary(name: str, xs: Sequence, ys: Sequence[float]) -> str:
    pts = ", ".join(f"{x}:{y:.3g}" for x, y in zip(xs, ys))
    return f"{name}: {pts}"


def check_monotone_increasing(ys: Sequence[float], slack: float = 0.0) -> bool:
    """Shape check: each value may dip below its predecessor by at most
    ``slack`` of the predecessor's magnitude.

    The tolerance is applied to ``abs(a)``: the old ``a * (1 - slack)``
    form *raised* the bar for negative predecessors (-10 with 10% slack
    demanded b >= -9), rejecting monotone series of negative values.
    """
    return all(b >= a - slack * abs(a) for a, b in zip(ys, ys[1:]))


def geometric_mean(values: Sequence[float], strict: bool = False) -> float:
    """Geometric mean of the positive entries.

    Non-positive entries carry no geometric information and are dropped —
    but never silently: dropping raises ``ValueError`` under ``strict``
    and warns otherwise, so a series polluted by zeros (e.g. a timer that
    never fired) cannot masquerade as a clean average.
    """
    import math
    vals = [v for v in values if v > 0]
    dropped = len(values) - len(vals)
    if dropped:
        msg = (f"geometric_mean: dropped {dropped} non-positive "
               f"value(s) of {len(values)}")
        if strict:
            raise ValueError(msg)
        import warnings
        warnings.warn(msg, RuntimeWarning, stacklevel=2)
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


# ----------------------------------------------------------------------
# machine-readable experiment documents (the --json output)
# ----------------------------------------------------------------------

def merge_phases(accum: Dict[str, float],
                 phases: Dict[str, float]) -> Dict[str, float]:
    """Accumulate one run's per-phase seconds into ``accum`` (in place)."""
    for phase, seconds in phases.items():
        accum[phase] = accum.get(phase, 0.0) + seconds
    return accum


def scale_phases(phases: Dict[str, float], k: float) -> Dict[str, float]:
    """Divide every phase total by ``k`` (seed averaging)."""
    return {phase: seconds / k for phase, seconds in phases.items()}


def experiment_json(name: str, points: Sequence,
                    params: Optional[dict] = None) -> dict:
    """The experiment document shared by every ``--json`` flag.

    ``points`` are the experiment's dataclass points (any extra ``phases``
    dict rides along verbatim); the document validates against
    :func:`repro.obs.schema.validate_experiment_doc`.
    """
    rows: List[dict] = []
    for p in points:
        rows.append(asdict(p) if is_dataclass(p) else dict(p))
    doc = {"experiment": name,
           "schema_version": EXPERIMENT_SCHEMA_VERSION,
           "points": rows}
    if params:
        doc["params"] = dict(params)
    return doc


def write_experiment_json(path: str, name: str, points: Sequence,
                          params: Optional[dict] = None) -> dict:
    """Validate and write the experiment document; '-' writes stdout."""
    from ..obs.schema import validate_experiment_doc
    doc = experiment_json(name, points, params)
    validate_experiment_doc(doc)
    text = json.dumps(doc, indent=2, default=str)
    if path == "-":
        print(text)
    else:
        with open(path, "w") as fh:
            fh.write(text + "\n")
    return doc
