"""Table I: beta Open MPI 3.1 ULFM operation wall times, two failed processes.

For each core count the application is run with two real mid-computation
kills; the reconstruction protocol's per-operation timers are read back
from rank 0's metrics.  The sweep layout reproduces the paper's exact core
counts 19/38/76/152/304 from diagonal process counts 4/8/16/32/64.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core import AppConfig, plan_failures
from ..machine.presets import OPL
from ..sweep import SweepPoint, make_runner
from .report import format_table

#: the paper's measurements (cores -> spawn, shrink, agree, merge seconds)
PAPER_TABLE1: Dict[int, Tuple[float, float, float, float]] = {
    19: (0.01, 0.01, 0.49, 0.01),
    38: (4.19, 2.46, 0.51, 0.01),
    76: (60.75, 43.35, 1.03, 0.02),
    152: (86.45, 50.80, 2.36, 0.02),
    304: (112.61, 55.57, 12.83, 0.03),
}

#: diagonal process counts whose sweep layouts hit the paper's core counts
SWEEP_DIAG_PROCS: Tuple[int, ...] = (4, 8, 16, 32, 64)


@dataclass
class Table1Row:
    cores: int
    spawn: float
    shrink: float
    agree: float
    merge: float
    #: per-phase critical-path seconds for the run
    phases: Dict[str, float] = field(default_factory=dict)


def run_table1(*, n: int = 7, level: int = 4, steps: int = 8,  # repro: cacheable
               diag_procs: Sequence[int] = SWEEP_DIAG_PROCS,
               n_failures: int = 2, seed: int = 0, machine=OPL,
               workers=None, cache=None, runner=None) -> List[Table1Row]:
    sweep = make_runner(runner, workers, cache)

    def _cfg(p):
        return AppConfig(n=n, level=level, technique_code="CR", steps=steps,
                         diag_procs=p, layout_mode="sweep",
                         checkpoint_count=2)

    # baselines first (identical to fig8's — a shared cache dedups them),
    # then the two-failure runs
    base_points = [SweepPoint(_cfg(p), machine) for p in diag_procs]
    t_solves = {bp.cfg.diag_procs: m.t_solve
                for bp, m in zip(base_points, sweep.run(base_points))}
    tasks = []
    for p in diag_procs:
        cfg = _cfg(p)
        kills = plan_failures(cfg, n_failures,
                              max(t_solves[p] * 0.5, 1e-9), seed=seed)
        tasks.append(SweepPoint(cfg, machine, kills=tuple(kills)))

    rows = []
    for m in sweep.run(tasks):
        rows.append(Table1Row(m.world_size, m.t_spawn, m.t_shrink,
                              m.t_agree, m.t_merge,
                              dict(m.phase_breakdown)))
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    out_rows = []
    for r in rows:
        paper = PAPER_TABLE1.get(r.cores)
        prow = [r.cores, r.spawn, r.shrink, r.agree, r.merge]
        if paper:
            prow += list(paper)
        else:
            prow += ["-"] * 4
        out_rows.append(prow)
    return format_table(
        ["cores", "spawn", "shrink", "agree", "merge",
         "p.spawn", "p.shrink", "p.agree", "p.merge"],
        out_rows,
        title="Table I: ULFM op wall times (s), 2 process failures "
              "[measured vs paper]")


def main(argv=None):  # pragma: no cover - CLI
    import argparse
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small fast variant")
    ap.add_argument("--json", metavar="FILE",
                    help="write the experiment document ('-' = stdout)")
    ap.add_argument("--workers", type=int, default=None,
                    help="parallel sweep workers (default: REPRO_WORKERS or 1)")
    args = ap.parse_args(argv)
    rows = run_table1(diag_procs=(4, 8), workers=args.workers) \
        if args.quick else run_table1(workers=args.workers)
    if args.json:
        from .report import write_experiment_json
        write_experiment_json(args.json, "table1", rows)
    else:
        print(format_table1(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
