"""Fault tolerance: detection, reconstruction, injection and recovery."""

from .checkpoint import (CheckpointStats, Disk, FileDisk,
                         checkpoint_interval_steps, optimal_checkpoint_count,
                         paper_eq2_checkpoint_count, restore_checkpoint,
                         restore_checkpoint_remapped, write_checkpoint)
from .detection import failed_procs_list, make_error_handler
from .failure_injection import FailureGenerator, Kill
from .reconstruct import (MERGE_TAG, PLACE_FIRST_FIT, PLACE_SAME_HOST,
                          PLACE_SPARE, PlacementError, ReconstructTimers,
                          communicator_reconstruct, repair_comm,
                          select_rank_key)
from .recovery import (TECHNIQUES, AlternateCombination, CheckpointRestart,
                       RecoveryTechnique, ResamplingCopying,
                       technique_by_code)
from .strategy import (STRATEGIES, NonCollectiveStrategy, RecoveryStrategy,
                       RespawnStrategy, ShrinkInPlaceStrategy,
                       strategy_by_mode)

__all__ = [
    "failed_procs_list", "make_error_handler",
    "communicator_reconstruct", "repair_comm", "select_rank_key",
    "ReconstructTimers", "MERGE_TAG", "PlacementError",
    "PLACE_SAME_HOST", "PLACE_SPARE", "PLACE_FIRST_FIT",
    "FailureGenerator", "Kill",
    "Disk", "FileDisk", "CheckpointStats", "write_checkpoint",
    "restore_checkpoint", "restore_checkpoint_remapped",
    "optimal_checkpoint_count", "paper_eq2_checkpoint_count",
    "checkpoint_interval_steps",
    "RecoveryTechnique", "CheckpointRestart", "ResamplingCopying",
    "AlternateCombination", "TECHNIQUES", "technique_by_code",
    "RecoveryStrategy", "RespawnStrategy", "ShrinkInPlaceStrategy",
    "NonCollectiveStrategy", "STRATEGIES", "strategy_by_mode",
]
