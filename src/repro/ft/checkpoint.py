"""Checkpoint/Restart — exact data recovery from periodic disk checkpoints.

Each process writes its local solver slab to (simulated) disk at a fixed
step interval; after a failure the affected sub-grid restores the most
recent checkpoint and recomputes the steps taken since.  The virtual-time
disk model charges the cluster's per-checkpoint write latency ``T_I/O``
(3.52 s on OPL, 0.03 s on Raijin) plus streaming time.

On the optimal checkpoint count: the paper's Eq. 2 prints ``C = T / T_IO``
(T = MTBF), but that makes the total checkpoint overhead ``C x T_IO = T``
*independent of the disk*, contradicting the paper's own observation that
Raijin's low write latency gives CR the least overhead (Fig. 9b).  We use
Young's optimal interval ``tau = sqrt(2 T_IO x MTBF)`` — which reproduces
the reported behaviour — and keep the literal formula available as
:func:`paper_eq2_checkpoint_count` for the ablation bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


def optimal_checkpoint_count(run_time: float, t_io: float,
                             mtbf: Optional[float] = None) -> int:
    """Number of checkpoints over ``run_time`` at Young's optimal interval.

    ``mtbf`` defaults to half the run time (the paper's setup).
    """
    if t_io <= 0:
        return 1
    mtbf = run_time / 2.0 if mtbf is None else mtbf
    interval = math.sqrt(2.0 * t_io * mtbf)
    return max(1, round(run_time / interval))


def paper_eq2_checkpoint_count(mtbf: float, t_io: float) -> int:
    """The literal Eq. 2: ``C = T / T_I/O``."""
    if t_io <= 0:
        return 1
    return max(1, int(mtbf / t_io))


def checkpoint_interval_steps(total_steps: int, n_checkpoints: int) -> int:
    """Steps between checkpoints for ``n_checkpoints`` over ``total_steps``."""
    return max(1, total_steps // max(1, n_checkpoints))


class Disk:
    """Simulated persistent storage: survives process failures.

    Checkpoints are keyed ``(grid id, rank-within-grid) -> {step: snapshot}``
    and versioned by step, because a failure can interrupt a checkpoint
    round: some group members complete the write, the dying one does not.
    Restart must then roll the whole group back to the latest *common* step
    (see :func:`restore_checkpoint`), so a bounded history is retained.
    """

    #: checkpoints retained per (grid, rank); 2 suffices for correctness,
    #: a little slack eases debugging
    KEEP = 3

    def __init__(self):
        self._store: Dict[Tuple[int, int], Dict[int, dict]] = {}
        self.writes = 0
        self.reads = 0
        self.bytes_written = 0

    def write(self, gid: int, grid_rank: int, snapshot: dict) -> None:
        # store an owned copy: the caller keeps (and may mutate) its array
        stored = dict(snapshot)
        stored["u"] = snapshot["u"].copy()
        slot = self._store.setdefault((gid, grid_rank), {})
        slot[snapshot["step_count"]] = stored
        while len(slot) > self.KEEP:
            del slot[min(slot)]
        self.writes += 1
        self.bytes_written += snapshot["u"].nbytes

    def read(self, gid: int, grid_rank: int, step: int) -> Optional[dict]:
        """Return an *owned* snapshot: ``u`` is deep-copied, never a view
        of the stored history.

        A shallow ``dict(snap)`` used to alias the stored array — a caller
        stepping in place after a restore (the ``*_into`` kernel path)
        would silently corrupt the checkpoint it had just read, so the
        next restore of the same step returned post-failure garbage.
        """
        self.reads += 1
        snap = self._store.get((gid, grid_rank), {}).get(step)
        if snap is None:
            return None
        out = dict(snap)
        out["u"] = snap["u"].copy()
        return out

    def available_steps(self, gid: int, grid_rank: int) -> Tuple[int, ...]:
        return tuple(sorted(self._store.get((gid, grid_rank), {})))

    def latest_step(self, gid: int, grid_rank: int = 0) -> Optional[int]:
        steps = self.available_steps(gid, grid_rank)
        return steps[-1] if steps else None


class FileDisk(Disk):
    """Disk backend that writes checkpoints to an actual directory.

    The paper checkpoints to the cluster filesystem; this backend does the
    same with ``numpy`` archives (one ``.npz`` per (grid, rank, step)),
    proving the serialisation path, while virtual-time costs are still
    charged by the machine model.  The in-memory index mirrors the base
    class so reads are format-checked round trips.
    """

    def __init__(self, directory):
        super().__init__()
        import pathlib
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, gid: int, grid_rank: int, step: int):
        return self.directory / f"ckpt_g{gid}_r{grid_rank}_s{step}.npz"

    def write(self, gid: int, grid_rank: int, snapshot: dict) -> None:
        import numpy as np
        step = snapshot["step_count"]
        older = self.available_steps(gid, grid_rank)
        np.savez(self._path(gid, grid_rank, step), u=snapshot["u"],
                 meta=np.array([step, snapshot["level_x"],
                                snapshot["level_y"]]))
        super().write(gid, grid_rank, snapshot)
        # prune files evicted from the bounded history — including the
        # step just written: re-writing a step older than the retained
        # window evicts itself, and leaving its file behind would let
        # ``read`` (which trusts the filesystem) resurrect dead history
        kept = set(self.available_steps(gid, grid_rank))
        for s in set(older) | {step}:
            if s not in kept:
                self._path(gid, grid_rank, s).unlink(missing_ok=True)

    def read(self, gid: int, grid_rank: int, step: int) -> Optional[dict]:
        import numpy as np
        path = self._path(gid, grid_rank, step)
        if not path.exists():
            self.reads += 1
            return None
        with np.load(path) as archive:
            u = archive["u"].copy()
            meta = archive["meta"]
        self.reads += 1
        return {"u": u, "step_count": int(meta[0]),
                "level_x": int(meta[1]), "level_y": int(meta[2])}


@dataclass
class CheckpointStats:
    """Per-rank accounting of checkpoint activity (feeds Fig. 9)."""

    writes: int = 0
    write_time: float = 0.0
    read_time: float = 0.0
    recompute_steps: int = 0


async def write_checkpoint(ctx, disk: Disk, gid: int, grid_rank: int,
                           solver, stats: Optional[CheckpointStats] = None) -> None:
    """Write this rank's slab; charges ``T_I/O`` + streaming."""
    with ctx.span("checkpoint_write", gid=gid):
        snap = solver.snapshot()
        cost = await ctx.disk_write(snap["u"].nbytes)
        disk.write(gid, grid_rank, snap)
    if stats is not None:
        stats.writes += 1
        stats.write_time += cost


async def restore_checkpoint(ctx, disk: Disk, gid: int, grid_comm, solver,
                             stats: Optional[CheckpointStats] = None) -> int:
    """Group-coordinated restore: roll the whole sub-grid back to the
    latest checkpoint step available to *every* group member.

    A failure can interrupt a checkpoint round (survivors completed the
    write, the victim did not), so members may differ in their newest
    snapshot; restoring each rank's own latest would silently desynchronise
    the group.  The group agrees on ``min(latest)`` — step 0 (the initial
    condition, always reconstructible) acts as the fallback checkpoint.

    Returns the restored step count.
    """
    from ..mpi.comm import MIN
    with ctx.span("checkpoint_read", gid=gid):
        my_latest = disk.latest_step(gid, grid_comm.rank)
        common = await grid_comm.allreduce(
            0 if my_latest is None else my_latest, op=MIN)
        if common <= 0:
            cost = await ctx.disk_read(solver.u.nbytes)
            from ..pde.lax_wendroff import periodic_from_initial
            full = periodic_from_initial(solver.problem, solver.level_x,
                                         solver.level_y)
            solver.u = solver._slab(full)
            solver.step_count = 0
            restored = 0
        else:
            snap = disk.read(gid, grid_comm.rank, common)
            if snap is None:  # pragma: no cover - history too short
                raise RuntimeError(
                    f"checkpoint step {common} missing for grid {gid} rank "
                    f"{grid_comm.rank}; increase Disk.KEEP")
            cost = await ctx.disk_read(snap["u"].nbytes)
            solver.restore(snap)
            restored = common
    if stats is not None:
        stats.read_time += cost
    return restored


async def restore_checkpoint_remapped(ctx, disk: Disk, gid: int, grid_comm,
                                      solver, old_n_parts: int,
                                      stats: Optional[CheckpointStats] = None
                                      ) -> int:
    """Restore a sub-grid whose process group *changed size* (shrink mode).

    Checkpoints on disk are keyed by the grid's **original** decomposition
    (``old_n_parts`` slabs); after a shrink-in-place repair the group has
    fewer members and a re-balanced decomposition.  Each surviving rank
    reads exactly the overlapping regions of the old ranks' checkpoints
    (per :func:`~repro.pde.decomposition.migration_plan`) and assembles its
    new slab locally — the migration is fully distributed, with no root
    gather.

    The restore step is the latest step every *old* rank checkpointed (the
    disk survives process death, so the victims' last complete checkpoints
    are still readable).  Step 0 (the initial condition) is the fallback
    when any old rank has no complete checkpoint.  Returns the restored
    step count.
    """
    import numpy as np

    from ..mpi.comm import BAND
    from ..pde.decomposition import migration_plan, rebalance

    old = rebalance(solver.decomp, old_n_parts)
    plan = migration_plan(old, solver.decomp)[grid_comm.rank]
    with ctx.span("checkpoint_read", gid=gid):
        # candidate steps: checkpointed by *every* old rank, newest first.
        # A grid that shrank before may carry later checkpoints written
        # under its resized decomposition; those steps are absent for the
        # higher old ranks, so the intersection naturally excludes them.
        step_sets = [set(disk.available_steps(gid, r))
                     for r in range(old_n_parts)]
        candidates = [s for s in sorted(set.intersection(*step_sets),
                                        reverse=True) if s > 0] \
            if step_sets and all(step_sets) else []
        cache: Dict[Tuple[int, int], Optional[dict]] = {}

        def _valid(step: int) -> bool:
            """My plan's pieces exist at ``step`` with old-slab extents
            (a step re-written under a different decomposition has the
            wrong shape and must be rejected)."""
            for q, _s, _e in plan:
                snap = cache.get((q, step))
                if snap is None:
                    snap = cache[(q, step)] = disk.read(gid, q, step)
                if snap is None:
                    return False
                if (snap["level_x"], snap["level_y"]) != (solver.level_x,
                                                          solver.level_y):
                    return False
                a, b = old.bounds(q)
                u = snap["u"]
                if (u.shape[0] if solver.axis == 0 else u.shape[1]) != b - a:
                    return False
            return True

        mask = 0
        for i, s in enumerate(candidates):
            if _valid(s):
                mask |= 1 << i
        # the chosen step must be readable and shape-consistent on every
        # rank: agree bitwise over the shared candidate list (identical
        # everywhere — the disk is shared state)
        common_mask = await grid_comm.allreduce(mask, op=BAND)
        common = 0
        for i, s in enumerate(candidates):
            if common_mask & (1 << i):
                common = s
                break
        if common <= 0:
            cost = await ctx.disk_read(solver.u.nbytes)
            from ..pde.lax_wendroff import periodic_from_initial
            full = periodic_from_initial(solver.problem, solver.level_x,
                                         solver.level_y)
            solver.u = solver._slab(full)
            solver.step_count = 0
            restored = 0
        else:
            cost = 0.0
            pieces = []
            for q, s, e in plan:
                u = cache[(q, common)]["u"]
                a, _b = old.bounds(q)
                piece = u[s - a:e - a, :] if solver.axis == 0 \
                    else u[:, s - a:e - a]
                cost += await ctx.disk_read(piece.nbytes)
                pieces.append(piece)
            solver.u = np.ascontiguousarray(
                np.concatenate(pieces, axis=solver.axis))
            solver.step_count = common
            restored = common
    if stats is not None:
        stats.read_time += cost
    return restored
