"""Failure detection and identification — the paper's Figs. 4 and 6.

Process failures surface as :class:`ProcFailedError` from MPI calls (the
ULFM return-code mechanism).  A globally consistent list of the failed
ranks is then derived from the group difference between the broken
communicator and its shrunk successor — Fig. 6 verbatim:
``MPI_Group_compare`` → ``MPI_Group_difference`` →
``MPI_Group_translate_ranks``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..mpi.group import IDENT


def failed_procs_list(broken_comm, shrunk_comm) -> Tuple[List[int], int]:
    """Fig. 6: ranks (in ``broken_comm``) of the processes that failed.

    Pure group algebra — no communication — so it is globally consistent
    as long as every survivor passes the same shrunk communicator.
    """
    old_group = broken_comm.group
    shrink_group = shrunk_comm.group
    if old_group.compare(shrink_group) == IDENT:
        return [], 0
    failed_group = old_group.difference(shrink_group)
    total_failed = failed_group.size
    temp_ranks = list(range(total_failed))
    failed_ranks = failed_group.translate_ranks(temp_ranks, old_group)
    return failed_ranks, total_failed


def make_error_handler(sink: Optional[Callable] = None):
    """Fig. 4: the communicator error handler.

    Acknowledges the locally-known failures and reads back the acked group
    (``OMPI_Comm_failure_ack`` / ``OMPI_Comm_failure_get_acked``).  The
    paper notes a ~10 ms delay is sometimes needed in the real beta; the
    simulator's failure knowledge is already consistent by the time an
    error is delivered, so no delay is modelled.

    ``sink(comm, failed_group, exc)`` is called with the acked group, for
    logging or assertions in tests.
    """

    def handler(comm, exc):
        comm.failure_ack()
        failed_group = comm.failure_get_acked()
        if sink is not None:
            sink(comm, failed_group, exc)

    return handler
