"""Failure generation — the paper's SIGKILL injector, with its constraints.

"Faults are injected into the application using a failure generator which
aborts single or multiple random MPI processes together ... at some point
before the combination of the sub-grid solutions."  Constraints (Sec. III):

* rank 0 never fails (it is used for controlling purposes);
* under Resampling-and-Copying, a replica pair must not fail
  simultaneously (e.g. sub-grids 0 and 7, 1 and 4, 1 and 8, ...).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Kill:
    """One scheduled process kill."""
    rank: int
    at: float


class FailureGenerator:
    """Chooses victims under the paper's constraints and schedules kills."""

    def __init__(self, seed: int = 0, *, protect: Iterable[int] = (0,),
                 conflict_pairs: Iterable[Tuple[int, int]] = (),
                 rank_to_grid=None):
        self.rng = random.Random(seed)
        self.protect: Set[int] = set(protect)
        self.conflict_pairs = [tuple(sorted(p)) for p in conflict_pairs]
        #: optional map world-rank -> grid id, for grid-level constraints
        self.rank_to_grid = rank_to_grid

    # ------------------------------------------------------------------
    def _grids_of(self, ranks: Iterable[int]) -> Set[int]:
        if self.rank_to_grid is None:
            return set()
        return {self.rank_to_grid(r) for r in ranks}

    def _violates(self, chosen: Sequence[int]) -> bool:
        if any(r in self.protect for r in chosen):
            return True
        grids = self._grids_of(chosen)
        for a, b in self.conflict_pairs:
            if a in grids and b in grids:
                return True
        return False

    def choose_victims(self, world_size: int, n_failures: int,
                       max_tries: int = 10_000) -> List[int]:
        """Random distinct victim ranks satisfying every constraint."""
        candidates = [r for r in range(world_size) if r not in self.protect]
        if n_failures > len(candidates):
            raise ValueError("more failures requested than killable ranks")
        for _ in range(max_tries):
            chosen = self.rng.sample(candidates, n_failures)
            if not self._violates(chosen):
                return sorted(chosen)
        raise RuntimeError(
            "could not find a constraint-satisfying victim set "
            f"({n_failures} failures, {len(self.conflict_pairs)} conflicts)")

    def plan(self, world_size: int, n_failures: int, at: float) -> List[Kill]:
        """A simultaneous multi-process failure at virtual time ``at``."""
        return [Kill(r, at) for r in
                self.choose_victims(world_size, n_failures)]

    def poisson_plan(self, world_size: int, mtbf: float, horizon: float,
                     max_failures: Optional[int] = None) -> List[Kill]:
        """Failures as a Poisson process: exponential inter-arrival times
        with the given system MTBF, truncated at ``horizon`` virtual
        seconds.  Victims are drawn without replacement under the usual
        constraints — this models the paper's premise that "the failure
        rate of a system is roughly proportional to the number of cores".

        The replica-pair constraint applies per *instant*, not across the
        whole horizon: RC only loses data when both copies die in the same
        failure event — a partner lost at a later time hits an
        already-recovered grid.  (An earlier version accumulated every past
        victim into the conflict check, so long horizons spuriously ran
        out of killable ranks.)
        """
        kills: List[Kill] = []
        used: Set[int] = set()
        t = 0.0
        candidates = [r for r in range(world_size) if r not in self.protect]
        while True:
            t += self.rng.expovariate(1.0 / mtbf)
            if t >= horizon:
                break
            if max_failures is not None and len(kills) >= max_failures:
                break
            remaining = [r for r in candidates if r not in used]
            if not remaining:
                break
            simultaneous = [k.rank for k in kills if k.at == t]
            for _ in range(1000):
                victim = self.rng.choice(remaining)
                if not self._violates(sorted(set(simultaneous) | {victim})):
                    used.add(victim)
                    kills.append(Kill(victim, t))
                    break
            else:
                break  # constraints exhausted
        return kills

    @staticmethod
    def sort_schedule(kills: Sequence[Kill]) -> List[Kill]:
        """Deterministic injection order: by time, ties by rank."""
        return sorted(kills, key=lambda k: (k.at, k.rank))

    # ------------------------------------------------------------------
    def inject(self, universe, job, kills: Sequence[Kill]) -> None:
        """Schedule the kills on the universe (SIGKILL at virtual time).

        The schedule is sorted (time, then rank) before scheduling so that
        callers passing an unordered plan get the same engine event order
        — and hence the same simulation — as a sorted one.
        """
        for kill in self.sort_schedule(kills):
            universe.kill_rank(job, kill.rank, at=kill.at)
