"""Communicator reconstruction — the paper's Figs. 2, 3, 5 and 7.

``communicator_reconstruct`` is the retry loop of Fig. 3: parents probe for
failures with a barrier, repair on error; re-spawned children synchronise,
merge into the parents' repaired communicator, learn their old rank and
re-order — after which *every* process holds a communicator of the original
size with the original rank distribution, and children convert themselves
into parents so that failures *during* recovery restart the loop.

``repair_comm`` is Fig. 5: revoke → shrink → identify failed ranks →
re-spawn them on the hosts they occupied before the failure (preserving
load balance) → merge → distribute old ranks → split with the keys of
Fig. 7.

Timers for every step are recorded into a :class:`ReconstructTimers`,
feeding the Fig. 8 / Table I experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..mpi.comm import CommHandle
from ..mpi.errors import MPIError
from .detection import failed_procs_list, make_error_handler

#: tag used to ship old ranks to re-spawned processes (Fig. 3 l.23, Fig. 5 l.22-23)
MERGE_TAG = 4242

#: placement policies for re-spawned processes
PLACE_SAME_HOST = "same-host"   # the paper's policy (load balance preserved)
PLACE_SPARE = "spare"           # the paper's future-work policy (node failures)
PLACE_FIRST_FIT = "first-fit"   # naive policy, for the placement ablation


@dataclass
class ReconstructTimers:
    """Virtual-time measurements of one reconstruction, per Fig. 8/Table I."""

    failed_list: float = 0.0      #: Fig. 8a — creating the failed-process list
    reconstruct: float = 0.0      #: Fig. 8b — total repair time
    shrink: float = 0.0           #: Table I  — OMPI_Comm_shrink
    spawn: float = 0.0            #: Table I  — MPI_Comm_spawn_multiple
    merge: float = 0.0            #: Table I  — MPI_Intercomm_merge
    agree: float = 0.0            #: Table I  — OMPI_Comm_agree
    iterations: int = 0
    total_failed: int = 0
    failed_ranks: List[int] = field(default_factory=list)

    def charge(self, phase: str, seconds: float) -> None:
        """Attribute ``seconds`` to one Table I phase bucket.

        The retry loop calls this exactly once per phase per attempt —
        including for the phase an attempt *aborted in* — so the timers
        agree with the obs spans, which also close on error.
        """
        setattr(self, phase, getattr(self, phase) + seconds)


class PlacementError(RuntimeError):
    """No host can take a replacement under the requested placement policy."""


def select_rank_key(mpi_rank: int, shrinked_group_size: int,
                    failed_ranks: Sequence[int], total_procs: int) -> int:
    """Fig. 7: the split key that restores a survivor's original rank.

    Survivor ``i`` of the shrunk communicator was the ``i``-th process of
    the original communicator *after removing the failed ranks*, so its key
    is the ``i``-th entry of that surviving-rank list.
    """
    failed = set(failed_ranks)
    shrink_merge_list = [i for i in range(total_procs) if i not in failed]
    if not (0 <= mpi_rank < shrinked_group_size):
        raise ValueError(
            f"rank {mpi_rank} outside shrunk communicator of size "
            f"{shrinked_group_size}")
    return shrink_merge_list[mpi_rank]


def _placement_hosts(universe, failed_ranks: Sequence[int],
                     placement: str) -> List[str]:
    """Fig. 5 l.5-12: host names on which to re-spawn the failed ranks.

    Capacity-based policies must see the slots already promised to earlier
    replacements in the same repair, hence the ``pending`` ledger.

    Each policy has a *deterministic* fallback chain, tried in hostfile
    order, and raises :class:`PlacementError` (never a bare IndexError)
    once the chain is exhausted:

    * ``same-host`` — the failed rank's original host (Fig. 5), else the
      spare hosts in order, else the first regular host with capacity;
    * ``spare`` — the spare hosts in order, else the first regular host
      with capacity;
    * ``first-fit`` — the first regular host with capacity, else the
      spare hosts in order.
    """
    hostfile = universe.hostfile
    slots = hostfile[0].slots
    pending: dict = {}

    def fits(h) -> bool:
        return h is not None and h.free_slots - pending.get(h.name, 0) > 0

    def first_available(hosts):
        for h in hosts:
            if fits(h):
                return h
        return None

    def preferred_host(rank):
        try:
            return hostfile.host_of_rank(rank, slots)
        except IndexError:
            return None  # rank maps past the regular hosts: fall back

    names = []
    for rank in failed_ranks:
        if placement == PLACE_SAME_HOST:
            candidates = [preferred_host(rank),
                          first_available(hostfile.spare_hosts),
                          first_available(hostfile.regular_hosts)]
        elif placement == PLACE_SPARE:
            candidates = [first_available(hostfile.spare_hosts),
                          first_available(hostfile.regular_hosts)]
        elif placement == PLACE_FIRST_FIT:
            candidates = [first_available(hostfile.regular_hosts),
                          first_available(hostfile.spare_hosts)]
        else:
            raise ValueError(f"unknown placement policy {placement!r}")
        host = next((h for h in candidates if fits(h)), None)
        if host is None:
            taken = {h.name: h.free_slots - pending.get(h.name, 0)
                     for h in hostfile}
            raise PlacementError(
                f"no host has a free slot for replacement of rank {rank} "
                f"under {placement!r} placement (free slots: {taken})")
        pending[host.name] = pending.get(host.name, 0) + 1
        names.append(host.name)
    return names


async def repair_comm(ctx, broken_comm, *, entry: Callable, argv: Sequence = (),
                      placement: str = PLACE_SAME_HOST,
                      timers: Optional[ReconstructTimers] = None,
                      max_attempts: int = 10,
                      rank_map: Optional[Sequence[int]] = None) -> CommHandle:
    """Fig. 5: repair a broken communicator (parent side).

    Returns the repaired communicator with original size and rank order.
    ``entry`` is the application entry point the children execute (the
    paper re-launches ``./ApplicationName`` with the original argv).

    ``rank_map`` maps ranks of ``broken_comm`` to world ranks; the
    non-collective repair mode passes a sub-grid communicator here, and the
    map keeps the Fig. 5 host arithmetic (and the recorded failed-rank
    history) in world terms.  ``None`` means the communicator *is* the
    world.

    Extension beyond the paper's pseudocode: if a further failure lands
    *during* the repair (a spawn/merge/split participant dies), the whole
    attempt is retried from revoke+shrink — the new shrink also excludes
    the newly dead, and replacements are spawned for every failed rank,
    including dead replacements.  Children of an aborted attempt observe
    the same error and exit (see :func:`communicator_reconstruct`).
    """
    t = timers or ReconstructTimers()
    wtime = ctx.wtime

    for _attempt in range(max_attempts):
        with ctx.span("detect", attempt=_attempt):
            # the failed-process list is derived *from* the shrunk
            # communicator, so its cost includes the shrink (Fig. 8a)
            broken_comm.revoke()                             # Fig. 5 l.2
            t0 = wtime()
            with ctx.span("shrink", attempt=_attempt):
                shrunk = await broken_comm.shrink()          # Fig. 5 l.3
            shrink_time = wtime() - t0
            t.charge("shrink", shrink_time)

            t0 = wtime()
            failed_ranks, total_failed = failed_procs_list(broken_comm,
                                                           shrunk)
            t.charge("failed_list", (wtime() - t0) + shrink_time)
        for r in failed_ranks:  # accumulate across repeated repairs
            w = rank_map[r] if rank_map is not None else r
            if w not in t.failed_ranks:
                t.failed_ranks.append(w)
        t.total_failed = len(t.failed_ranks)

        placed = [rank_map[r] for r in failed_ranks] \
            if rank_map is not None else failed_ranks
        host_names = _placement_hosts(ctx.universe, placed, placement)

        # Each attempt charges the phase it is in when it aborts — once,
        # into the right bucket: ``phase`` names the in-flight phase and
        # the handler closes its timer.  (The old form charged only on
        # success, so an attempt aborted mid-spawn vanished from the
        # timers while its span still recorded the time, and the retry's
        # shrink looked slower than the spans said.)
        phase = "spawn"
        t0 = wtime()
        try:
            with ctx.span("spawn", attempt=_attempt):
                inter = await shrunk.spawn_multiple(         # Fig. 5 l.13
                    total_failed, entry, argv, host_names=host_names)
            t.charge(phase, wtime() - t0)

            phase = "merge"
            t0 = wtime()
            with ctx.span("merge", attempt=_attempt):
                unordered = await inter.merge(high=False)    # Fig. 5 l.14
            t.charge(phase, wtime() - t0)

            phase = "agree"
            t0 = wtime()
            with ctx.span("agree", attempt=_attempt):
                await inter.agree(1)                         # Fig. 5 l.15
            t.charge(phase, wtime() - t0)

            phase = "merge"
            t0 = wtime()
            shrunk_size = shrunk.size
            # Fig. 5 l.21-23: rank 0 tells each child its old (failed) rank
            if unordered.rank == 0:
                for i, old_rank in enumerate(failed_ranks):
                    await unordered.send(old_rank, dest=shrunk_size + i,
                                         tag=MERGE_TAG)
            # Fig. 5 l.24-25: re-order so survivors regain original ranks
            key = select_rank_key(unordered.rank, shrunk_size, failed_ranks,
                                  broken_comm.size)
            repaired = await unordered.split(0, key)
            t.charge(phase, wtime() - t0)
            return repaired
        except MPIError:
            # another failure mid-repair: close the aborted phase's timer
            # and retry from revoke
            t.charge(phase, wtime() - t0)
            continue
    raise RuntimeError(f"communicator repair failed {max_attempts} times")


async def communicator_reconstruct(ctx, my_world, *, entry: Callable,
                                   argv: Sequence = (),
                                   placement: str = PLACE_SAME_HOST,
                                   timers: Optional[ReconstructTimers] = None,
                                   errhandler_sink: Optional[Callable] = None
                                   ) -> CommHandle:
    """Fig. 3: the full reconstruction loop, valid on both parents and
    children.

    Survivors pass their (possibly broken) world communicator; re-spawned
    processes pass anything (their parent intercommunicator drives the
    child branch).  Loops until a barrier on the reconstructed communicator
    succeeds, so failures occurring *during* recovery are also handled.
    """
    t = timers or ReconstructTimers()
    handler = make_error_handler(errhandler_sink)
    parent = ctx.get_parent()                                # Fig. 3 l.3
    reconstructed = my_world
    iter_counter = 0

    while True:
        failure = False
        if parent is None:                                   # parent branch
            if iter_counter == 0:
                reconstructed = my_world                     # Fig. 3 l.8
            reconstructed.set_errhandler(handler)            # Fig. 3 l.11
            t0 = ctx.wtime()
            with ctx.span("agree"):
                await reconstructed.agree(1)                 # Fig. 3 l.12
            t.agree += ctx.wtime() - t0
            try:
                await reconstructed.barrier()                # Fig. 3 l.13
            except MPIError:
                t0 = ctx.wtime()
                with ctx.span("reconstruct"):
                    reconstructed = await repair_comm(       # Fig. 3 l.15
                        ctx, reconstructed, entry=entry, argv=argv,
                        placement=placement, timers=t)
                t.reconstruct += ctx.wtime() - t0
                failure = True
        else:                                                # child branch
            parent.set_errhandler(handler)                   # Fig. 3 l.20
            try:
                with ctx.span("agree"):
                    await parent.agree(1)                    # Fig. 3 l.21
                with ctx.span("merge"):
                    unordered = await parent.merge(high=True)  # Fig. 3 l.22
                    old_rank = await unordered.recv(source=0, tag=MERGE_TAG)
                    reconstructed = await unordered.split(0, old_rank)  # l.24
            except MPIError:
                # the repair attempt we belong to was aborted (another
                # failure); the parents retry with fresh replacements and
                # this orphan must exit
                return None
            failure = True                                   # Fig. 3 l.25-26
            parent = None                                    # Fig. 3 l.32
            ctx.set_parent_null()  # permanent: later detection rounds must
            # take the parent branch (Fig. 3's child-to-parent conversion)

        iter_counter += 1
        t.iterations = iter_counter
        if not failure:
            return reconstructed
