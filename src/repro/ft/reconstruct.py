"""Communicator reconstruction — the paper's Figs. 2, 3, 5 and 7.

``communicator_reconstruct`` is the retry loop of Fig. 3: parents probe for
failures with a barrier, repair on error; re-spawned children synchronise,
merge into the parents' repaired communicator, learn their old rank and
re-order — after which *every* process holds a communicator of the original
size with the original rank distribution, and children convert themselves
into parents so that failures *during* recovery restart the loop.

``repair_comm`` is Fig. 5: revoke → shrink → identify failed ranks →
re-spawn them on the hosts they occupied before the failure (preserving
load balance) → merge → distribute old ranks → split with the keys of
Fig. 7.

Timers for every step are recorded into a :class:`ReconstructTimers`,
feeding the Fig. 8 / Table I experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..mpi.comm import CommHandle
from ..mpi.errors import MPIError
from .detection import failed_procs_list, make_error_handler

#: tag used to ship old ranks to re-spawned processes (Fig. 3 l.23, Fig. 5 l.22-23)
MERGE_TAG = 4242

#: placement policies for re-spawned processes
PLACE_SAME_HOST = "same-host"   # the paper's policy (load balance preserved)
PLACE_SPARE = "spare"           # the paper's future-work policy (node failures)
PLACE_FIRST_FIT = "first-fit"   # naive policy, for the placement ablation


@dataclass
class ReconstructTimers:
    """Virtual-time measurements of one reconstruction, per Fig. 8/Table I."""

    failed_list: float = 0.0      #: Fig. 8a — creating the failed-process list
    reconstruct: float = 0.0      #: Fig. 8b — total repair time
    shrink: float = 0.0           #: Table I  — OMPI_Comm_shrink
    spawn: float = 0.0            #: Table I  — MPI_Comm_spawn_multiple
    merge: float = 0.0            #: Table I  — MPI_Intercomm_merge
    agree: float = 0.0            #: Table I  — OMPI_Comm_agree
    iterations: int = 0
    total_failed: int = 0
    failed_ranks: List[int] = field(default_factory=list)


def select_rank_key(mpi_rank: int, shrinked_group_size: int,
                    failed_ranks: Sequence[int], total_procs: int) -> int:
    """Fig. 7: the split key that restores a survivor's original rank.

    Survivor ``i`` of the shrunk communicator was the ``i``-th process of
    the original communicator *after removing the failed ranks*, so its key
    is the ``i``-th entry of that surviving-rank list.
    """
    failed = set(failed_ranks)
    shrink_merge_list = [i for i in range(total_procs) if i not in failed]
    if not (0 <= mpi_rank < shrinked_group_size):
        raise ValueError(
            f"rank {mpi_rank} outside shrunk communicator of size "
            f"{shrinked_group_size}")
    return shrink_merge_list[mpi_rank]


def _placement_hosts(universe, failed_ranks: Sequence[int],
                     placement: str) -> List[str]:
    """Fig. 5 l.5-12: host names on which to re-spawn the failed ranks.

    Capacity-based policies must see the slots already promised to earlier
    replacements in the same repair, hence the ``pending`` ledger.
    """
    hostfile = universe.hostfile
    slots = hostfile[0].slots
    pending: dict = {}

    def available(hosts):
        for h in hosts:
            if h.free_slots - pending.get(h.name, 0) > 0:
                return h
        raise RuntimeError(f"no free slot for {placement} placement")

    names = []
    for rank in failed_ranks:
        if placement == PLACE_SAME_HOST:
            host = hostfile.host_of_rank(rank, slots)
        elif placement == PLACE_SPARE:
            host = available(hostfile.spare_hosts)
        elif placement == PLACE_FIRST_FIT:
            host = available(hostfile.regular_hosts)
        else:
            raise ValueError(f"unknown placement policy {placement!r}")
        pending[host.name] = pending.get(host.name, 0) + 1
        names.append(host.name)
    return names


async def repair_comm(ctx, broken_comm, *, entry: Callable, argv: Sequence = (),
                      placement: str = PLACE_SAME_HOST,
                      timers: Optional[ReconstructTimers] = None,
                      max_attempts: int = 10) -> CommHandle:
    """Fig. 5: repair a broken communicator (parent side).

    Returns the repaired communicator with original size and rank order.
    ``entry`` is the application entry point the children execute (the
    paper re-launches ``./ApplicationName`` with the original argv).

    Extension beyond the paper's pseudocode: if a further failure lands
    *during* the repair (a spawn/merge/split participant dies), the whole
    attempt is retried from revoke+shrink — the new shrink also excludes
    the newly dead, and replacements are spawned for every failed rank,
    including dead replacements.  Children of an aborted attempt observe
    the same error and exit (see :func:`communicator_reconstruct`).
    """
    t = timers or ReconstructTimers()
    wtime = ctx.wtime

    for _attempt in range(max_attempts):
        with ctx.span("detect", attempt=_attempt):
            # the failed-process list is derived *from* the shrunk
            # communicator, so its cost includes the shrink (Fig. 8a)
            broken_comm.revoke()                             # Fig. 5 l.2
            t0 = wtime()
            with ctx.span("shrink", attempt=_attempt):
                shrunk = await broken_comm.shrink()          # Fig. 5 l.3
            shrink_time = wtime() - t0
            t.shrink += shrink_time

            t0 = wtime()
            failed_ranks, total_failed = failed_procs_list(broken_comm,
                                                           shrunk)
            t.failed_list += (wtime() - t0) + shrink_time  # list incl. shrink
        for r in failed_ranks:  # accumulate across repeated repairs
            if r not in t.failed_ranks:
                t.failed_ranks.append(r)
        t.total_failed = len(t.failed_ranks)

        host_names = _placement_hosts(ctx.universe, failed_ranks, placement)

        try:
            t0 = wtime()
            with ctx.span("spawn", attempt=_attempt):
                inter = await shrunk.spawn_multiple(         # Fig. 5 l.13
                    total_failed, entry, argv, host_names=host_names)
            t.spawn += wtime() - t0

            t0 = wtime()
            with ctx.span("merge", attempt=_attempt):
                unordered = await inter.merge(high=False)    # Fig. 5 l.14
            t.merge += wtime() - t0

            t0 = wtime()
            with ctx.span("agree", attempt=_attempt):
                await inter.agree(1)                         # Fig. 5 l.15
            t.agree += wtime() - t0

            shrunk_size = shrunk.size
            # Fig. 5 l.21-23: rank 0 tells each child its old (failed) rank
            if unordered.rank == 0:
                for i, old_rank in enumerate(failed_ranks):
                    await unordered.send(old_rank, dest=shrunk_size + i,
                                         tag=MERGE_TAG)
            # Fig. 5 l.24-25: re-order so survivors regain original ranks
            key = select_rank_key(unordered.rank, shrunk_size, failed_ranks,
                                  broken_comm.size)
            return await unordered.split(0, key)
        except MPIError:
            continue  # another failure mid-repair: retry from revoke
    raise RuntimeError(f"communicator repair failed {max_attempts} times")


async def communicator_reconstruct(ctx, my_world, *, entry: Callable,
                                   argv: Sequence = (),
                                   placement: str = PLACE_SAME_HOST,
                                   timers: Optional[ReconstructTimers] = None,
                                   errhandler_sink: Optional[Callable] = None
                                   ) -> CommHandle:
    """Fig. 3: the full reconstruction loop, valid on both parents and
    children.

    Survivors pass their (possibly broken) world communicator; re-spawned
    processes pass anything (their parent intercommunicator drives the
    child branch).  Loops until a barrier on the reconstructed communicator
    succeeds, so failures occurring *during* recovery are also handled.
    """
    t = timers or ReconstructTimers()
    handler = make_error_handler(errhandler_sink)
    parent = ctx.get_parent()                                # Fig. 3 l.3
    reconstructed = my_world
    iter_counter = 0

    while True:
        failure = False
        if parent is None:                                   # parent branch
            if iter_counter == 0:
                reconstructed = my_world                     # Fig. 3 l.8
            reconstructed.set_errhandler(handler)            # Fig. 3 l.11
            t0 = ctx.wtime()
            with ctx.span("agree"):
                await reconstructed.agree(1)                 # Fig. 3 l.12
            t.agree += ctx.wtime() - t0
            try:
                await reconstructed.barrier()                # Fig. 3 l.13
            except MPIError:
                t0 = ctx.wtime()
                with ctx.span("reconstruct"):
                    reconstructed = await repair_comm(       # Fig. 3 l.15
                        ctx, reconstructed, entry=entry, argv=argv,
                        placement=placement, timers=t)
                t.reconstruct += ctx.wtime() - t0
                failure = True
        else:                                                # child branch
            parent.set_errhandler(handler)                   # Fig. 3 l.20
            try:
                with ctx.span("agree"):
                    await parent.agree(1)                    # Fig. 3 l.21
                with ctx.span("merge"):
                    unordered = await parent.merge(high=True)  # Fig. 3 l.22
                    old_rank = await unordered.recv(source=0, tag=MERGE_TAG)
                    reconstructed = await unordered.split(0, old_rank)  # l.24
            except MPIError:
                # the repair attempt we belong to was aborted (another
                # failure); the parents retry with fresh replacements and
                # this orphan must exit
                return None
            failure = True                                   # Fig. 3 l.25-26
            parent = None                                    # Fig. 3 l.32
            ctx.set_parent_null()  # permanent: later detection rounds must
            # take the parent branch (Fig. 3's child-to-parent conversion)

        iter_counter += 1
        t.iterations = iter_counter
        if not failure:
            return reconstructed
