"""The three data-recovery techniques as configuration objects.

Each technique decides (a) which redundant grids the scheme carries,
(b) which combination coefficients to use after a loss, and (c) how lost
grid data is restored.  The data motion itself is orchestrated by
:mod:`repro.core.app`, which calls back into these objects.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..sparsegrid import (CombinationScheme, alternate_coefficients_for)
from ..sparsegrid.index import cached_scheme

GridIx = Tuple[int, int]


class RecoveryTechnique:
    """Base class; subclasses are stateless and safe to share."""

    code: str = "?"
    name: str = "?"
    needs_checkpoints: bool = False

    def make_scheme(self, n: int, level: int) -> CombinationScheme:
        raise NotImplementedError

    def combination_coefficients(self, scheme: CombinationScheme,
                                 lost_gids: Iterable[int]) -> Dict[GridIx, float]:
        """Coefficients (by grid index) for the final combination."""
        raise NotImplementedError

    def validate_losses(self, scheme: CombinationScheme,
                        lost_gids: Iterable[int]) -> None:
        """Raise if this loss pattern violates the technique's constraints."""

    def __repr__(self) -> str:  # pragma: no cover
        return f"{self.__class__.__name__}()"


def _classic_by_index(scheme: CombinationScheme) -> Dict[GridIx, float]:
    return {scheme[gid].index: c
            for gid, c in scheme.classic_coefficients().items()}


class CheckpointRestart(RecoveryTechnique):
    """CR: no redundant grids; exact recovery from periodic checkpoints."""

    code = "CR"
    name = "Checkpoint/Restart"
    needs_checkpoints = True

    def make_scheme(self, n: int, level: int) -> CombinationScheme:
        return cached_scheme(n, level)

    def combination_coefficients(self, scheme, lost_gids):
        # data is recovered exactly, so the classic combination applies
        return _classic_by_index(scheme)


class ResamplingCopying(RecoveryTechnique):
    """RC: duplicated diagonal grids; copy or resample lost data."""

    code = "RC"
    name = "Resampling and Copying"

    def make_scheme(self, n: int, level: int) -> CombinationScheme:
        return cached_scheme(n, level, duplicates=True)

    def combination_coefficients(self, scheme, lost_gids):
        # lost grids are restored (near-exactly), classic coefficients apply
        return _classic_by_index(scheme)

    def validate_losses(self, scheme, lost_gids):
        lost = set(lost_gids)
        for a, b in scheme.rc_conflict_pairs():
            if a in lost and b in lost:
                raise ValueError(
                    f"RC cannot recover simultaneous loss of grids {a} and "
                    f"{b} (replica/resample pair)")

    def recovery_plan(self, scheme: CombinationScheme,
                      lost_gids: Iterable[int]) -> List[Tuple[int, int]]:
        """(lost gid, source gid) pairs; source holds the data to copy or
        resample (Sec. II-D: 0<->7, 1<->8, ..., 4 from 1, 5 from 2, 6 from 3)."""
        self.validate_losses(scheme, lost_gids)
        plan = []
        for gid in sorted(set(lost_gids)):
            src = scheme.resample_source(gid)
            if src is None:
                raise ValueError(f"grid {gid} has no RC recovery source")
            plan.append((gid, src))
        return plan


class AlternateCombination(RecoveryTechnique):
    """AC: extra coarse layers; recompute combination coefficients."""

    code = "AC"
    name = "Alternate Combination"

    def __init__(self, extra_layers: int = 2):
        self.extra_layers = extra_layers

    def make_scheme(self, n: int, level: int) -> CombinationScheme:
        return cached_scheme(n, level, extra_layers=self.extra_layers)

    def combination_coefficients(self, scheme, lost_gids):
        lost = set(lost_gids)
        if not lost:
            return _classic_by_index(scheme)
        return alternate_coefficients_for(scheme, lost)

    def __repr__(self) -> str:  # pragma: no cover
        return f"AlternateCombination(extra_layers={self.extra_layers})"


TECHNIQUES: Dict[str, RecoveryTechnique] = {
    "CR": CheckpointRestart(),
    "RC": ResamplingCopying(),
    "AC": AlternateCombination(),
}


def technique_by_code(code: str) -> RecoveryTechnique:
    try:
        return TECHNIQUES[code.upper()]
    except KeyError:
        raise ValueError(f"unknown technique {code!r}; "
                         f"expected one of {sorted(TECHNIQUES)}") from None
