"""Pluggable recovery strategies: how the application repairs its world.

The paper's protocol (Figs. 3/5) always re-spawns failed ranks and rebuilds
the *global* communicator.  The FT-MPI literature since established two
alternatives, and this module puts all three behind one interface:

* ``respawn`` — the paper's global revoke + shrink + spawn + merge + split
  pipeline; the world keeps its original size and rank order.
* ``shrink`` — shrink-in-place ("Shrink or Substitute"): no spawn, no
  merge; the world contracts, surviving ranks get a re-balanced
  decomposition and the lost sub-grids' work migrates onto survivors.
* ``nc`` — non-collective repair (Rocco & Palermo): only the failed
  sub-grid's communicator is rebuilt, via its own local-group operations;
  unaffected grids never stop solving.  Replacements are *re-admitted*
  into the enclosing world communicator by a purely local membership
  update.

A strategy object is stateless and shared; per-run state lives on the
:class:`~repro.core.app.CombinationApp`.  Each strategy supplies

* ``detect_and_repair(app)`` — run this mode's failure-detection point
  (and, on error, its repair pipeline); returns True when membership
  changed;
* ``post_repair(app)`` — the mode's membership/data resync after a repair
  (world re-split, survivor redistribution, or lost-grid marking);
* ``cost_estimate(machine, comm_size, n_failed)`` — the machine-model cost
  entries the mode's repair charges, for planning and the mode-comparison
  experiment.
"""

from __future__ import annotations

from typing import Dict


class RecoveryStrategy:
    """Base class; subclasses are stateless and safe to share."""

    mode: str = "?"
    name: str = "?"
    #: does this strategy replace failed ranks with spawned processes?
    respawns: bool = False
    #: does the world communicator keep its original size across repair?
    preserves_world: bool = True

    def validate_config(self, cfg) -> None:
        """Raise ValueError for configurations the mode cannot run."""

    def needs_placement(self) -> bool:
        """Does this mode ever consult the replacement-placement policy?
        (``shrink`` must not: with ``n_spares=0`` and an otherwise full
        hostfile there is nowhere to place anyone, and shrink never
        needs to.)"""
        return self.respawns

    def cost_estimate(self, machine, comm_size: int,
                      n_failed: int) -> Dict[str, float]:
        """Per-operation virtual-seconds the mode's repair charges.

        ``comm_size`` is the communicator being repaired — the world for
        ``respawn``/``shrink``, the affected sub-grid's group for ``nc``.
        """
        raise NotImplementedError

    async def detect_and_repair(self, app) -> bool:
        raise NotImplementedError

    async def post_repair(self, app) -> None:
        """Resync after ``detect_and_repair`` reported a change."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}()"


class RespawnStrategy(RecoveryStrategy):
    """The paper's Figs. 3/5 pipeline: global repair, original world back."""

    mode = "respawn"
    name = "global revoke+shrink+spawn+merge (paper, Figs. 3/5)"
    respawns = True

    def cost_estimate(self, machine, comm_size, n_failed):
        u = machine.ulfm  # cost-table lookups, not communicator calls
        return {"revoke": u.revoke(comm_size),
                "shrink": u.shrink(comm_size, n_failed),
                "spawn": u.spawn(comm_size, n_failed),
                "merge": u.merge(comm_size),  # noqa: ULF007 — cost model, not a comm
                "agree": u.agree(comm_size, n_failed)}

    async def detect_and_repair(self, app) -> bool:
        return await app._respawn_detect_repair()

    async def post_repair(self, app) -> None:
        await app._post_failure_resync(make_solver=False)


class ShrinkInPlaceStrategy(RecoveryStrategy):
    """Shrink the world and redistribute lost work over survivors."""

    mode = "shrink"
    name = "shrink-in-place (no spawn; survivors re-decompose)"
    respawns = False
    preserves_world = False

    def validate_config(self, cfg) -> None:
        if cfg.decomposition != "1d":
            raise ValueError(
                "shrink-in-place recovery requires the 1d slab "
                "decomposition (re-balancing 2d Cartesian blocks over an "
                "arbitrary survivor count is not supported)")

    def cost_estimate(self, machine, comm_size, n_failed):
        u = machine.ulfm
        return {"revoke": u.revoke(comm_size),
                "shrink": u.shrink(comm_size, n_failed),
                "agree": u.agree(comm_size, n_failed)}

    async def detect_and_repair(self, app) -> bool:
        return await app._shrink_detect_repair()

    async def post_repair(self, app) -> None:
        await app._shrink_resync()


class NonCollectiveStrategy(RecoveryStrategy):
    """Rebuild only the failed sub-grid communicators; re-admit locally."""

    mode = "nc"
    name = "non-collective repair (per-grid rebuild + world readmit)"
    respawns = True

    def validate_config(self, cfg) -> None:
        if cfg.decomposition != "1d":
            raise ValueError(
                "non-collective recovery requires the 1d slab "
                "decomposition (the 2d solver wraps its communicator in a "
                "Cartesian topology the per-grid repair cannot rebuild)")

    def cost_estimate(self, machine, comm_size, n_failed):
        u = machine.ulfm  # cost-table lookups, not communicator calls
        return {"revoke": u.revoke(comm_size),
                "shrink": u.shrink(comm_size, n_failed),
                "spawn": u.spawn(comm_size, n_failed),
                "merge": u.merge(comm_size),  # noqa: ULF007 — cost model, not a comm
                "agree": u.agree(comm_size, n_failed),
                "readmit": u.readmit(comm_size)}

    async def detect_and_repair(self, app) -> bool:
        return await app._nc_detect_repair()

    async def post_repair(self, app) -> None:
        # the grid was rebuilt in place; its data is only partially intact
        # (replacements start fresh), so the grid joins the lost set and
        # the technique's end-phase recovery restores it
        if app.gid not in app.lost:
            app.lost.append(app.gid)
            app.lost.sort()


STRATEGIES: Dict[str, RecoveryStrategy] = {
    "respawn": RespawnStrategy(),
    "shrink": ShrinkInPlaceStrategy(),
    "nc": NonCollectiveStrategy(),
}


def strategy_by_mode(mode: str) -> RecoveryStrategy:
    try:
        return STRATEGIES[mode.lower()]
    except KeyError:
        raise ValueError(f"unknown recovery mode {mode!r}; "
                         f"expected one of {sorted(STRATEGIES)}") from None
