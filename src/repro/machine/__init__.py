"""Machine (cluster) cost models and host/slot management."""

from .hosts import DEFAULT_SLOTS, Host, Hostfile
from .model import MachineSpec, UlfmCostModel, ZERO_ULFM, interp_curve
from .presets import IDEAL, OPL, OPL_FIXED_ULFM, PRESETS, RAIJIN

__all__ = [
    "Host",
    "Hostfile",
    "DEFAULT_SLOTS",
    "MachineSpec",
    "UlfmCostModel",
    "ZERO_ULFM",
    "interp_curve",
    "OPL",
    "RAIJIN",
    "IDEAL",
    "OPL_FIXED_ULFM",
    "PRESETS",
]
