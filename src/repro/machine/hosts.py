"""Hosts, slots and hostfiles.

The paper's reconstruction procedure (Fig. 5) maps a failed rank to its host
via ``hostfileLineIndex = failedRank / SLOTS`` and re-spawns the replacement
on that same host to preserve load balance.  This module provides the
hostfile abstraction that makes that lookup meaningful in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

#: Default slots per host, as hard-coded in Fig. 5 of the paper.
DEFAULT_SLOTS = 12


@dataclass
class Host:
    """A compute node with a fixed number of process slots."""

    name: str
    slots: int = DEFAULT_SLOTS
    spare: bool = False
    #: number of slots currently occupied by live simulated processes
    occupied: int = 0

    @property
    def free_slots(self) -> int:
        return self.slots - self.occupied

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name!r}, {self.occupied}/{self.slots})"


class Hostfile:
    """An ordered list of hosts, mirroring an ``mpirun`` hostfile.

    Ranks are assigned to hosts in contiguous blocks of ``slots`` (the
    fill-by-slot policy the paper's rank→host arithmetic assumes).
    """

    def __init__(self, hosts: List[Host]):
        if not hosts:
            raise ValueError("hostfile must contain at least one host")
        self.hosts = list(hosts)

    @classmethod
    def uniform(cls, n_hosts: int, slots: int = DEFAULT_SLOTS,
                prefix: str = "node", n_spares: int = 0) -> "Hostfile":
        """Build ``n_hosts`` regular hosts plus ``n_spares`` spare hosts."""
        hosts = [Host(f"{prefix}{i:03d}", slots) for i in range(n_hosts)]
        hosts += [Host(f"spare{i:03d}", slots, spare=True) for i in range(n_spares)]
        return cls(hosts)

    @classmethod
    def for_ranks(cls, n_ranks: int, slots: int = DEFAULT_SLOTS,
                  n_spares: int = 0) -> "Hostfile":
        """Smallest uniform hostfile that fits ``n_ranks`` processes."""
        n_hosts = (n_ranks + slots - 1) // slots
        return cls.uniform(max(n_hosts, 1), slots, n_spares=n_spares)

    def __len__(self) -> int:
        return len(self.hosts)

    def __iter__(self) -> Iterator[Host]:
        return iter(self.hosts)

    def __getitem__(self, index: int) -> Host:
        return self.hosts[index]

    @property
    def regular_hosts(self) -> List[Host]:
        return [h for h in self.hosts if not h.spare]

    @property
    def spare_hosts(self) -> List[Host]:
        return [h for h in self.hosts if h.spare]

    def host_of_rank(self, rank: int, slots: Optional[int] = None) -> Host:
        """Fig. 5 lines 5–7: the host on whose slots ``rank`` was launched."""
        slots = slots if slots is not None else self.hosts[0].slots
        index = rank // slots
        regular = self.regular_hosts
        if index >= len(regular):
            raise IndexError(
                f"rank {rank} maps to hostfile line {index}, but only "
                f"{len(regular)} regular hosts exist")
        return regular[index]

    def first_fit(self) -> Host:
        """First regular host with a free slot (non-paper placement policy)."""
        for host in self.regular_hosts:
            if host.free_slots > 0:
                return host
        raise RuntimeError("no free slots on any regular host")

    def first_spare(self) -> Host:
        """First spare host with free slots (future-work placement policy)."""
        for host in self.spare_hosts:
            if host.free_slots > 0:
                return host
        raise RuntimeError("no spare hosts available")
