"""Cost model: how long simulated operations take in virtual time.

The model has two parts:

1. **Generic cluster costs** — an alpha–beta (latency/bandwidth) model for
   point-to-point messages, log-tree scaling for collectives, a flop rate
   for computation and a per-checkpoint disk-write latency ``t_io`` (the
   paper's ``T_I/O``: 3.52 s on OPL, 0.03 s on Raijin).

2. **ULFM-beta operation costs** — the paper's headline negative result is
   that `MPI_Comm_spawn_multiple`, `OMPI_Comm_shrink` and `OMPI_Comm_agree`
   in the beta fault-tolerant Open MPI grow dramatically with core count
   when two or more processes fail (Table I).  We reproduce that behaviour
   with piecewise-linear (in core count) calibration curves fitted through
   Table I's measurements, scaled down for the single-failure case as
   described in Sec. III-A / Fig. 8.

All cost functions return seconds of virtual time; the MPI layer charges
them via the engine.  Substituting a different :class:`MachineSpec` (e.g.
:data:`repro.machine.presets.IDEAL`) changes timing results without touching
any algorithmic code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence


def interp_curve(x: float, xs: Sequence[float], ys: Sequence[float]) -> float:
    """Piecewise-linear interpolation through ``(xs, ys)`` with linear
    extrapolation beyond the calibrated range (clamped at >= 0)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two calibration points")
    if x <= xs[0]:
        lo, hi = 0, 1
    elif x >= xs[-1]:
        lo, hi = len(xs) - 2, len(xs) - 1
    else:
        hi = next(i for i, xv in enumerate(xs) if xv >= x)
        lo = hi - 1
    x0, x1 = xs[lo], xs[hi]
    y0, y1 = ys[lo], ys[hi]
    t = (x - x0) / (x1 - x0)
    return max(0.0, y0 + t * (y1 - y0))


# --------------------------------------------------------------------------
# Table I calibration (OPL cluster, two failed processes).
# cores:                 19     38     76     152     304
_TABLE1_CORES = (19.0, 38.0, 76.0, 152.0, 304.0)
_TABLE1_SPAWN = (0.01, 4.19, 60.75, 86.45, 112.61)
_TABLE1_SHRINK = (0.01, 2.46, 43.35, 50.80, 55.57)
_TABLE1_AGREE = (0.49, 0.51, 1.03, 2.36, 12.83)
_TABLE1_MERGE = (0.01, 0.01, 0.02, 0.02, 0.03)

# Single-failure curves: the paper gives no table, but Fig. 8 shows times
# growing with core count and *much* smaller than the 2-failure case (the
# text calls the 2-failure blow-up "unsatisfactory" and attributes it to
# shrink and agree).  These gentle curves encode that qualitative shape.
_SPAWN_1F = (0.01, 0.08, 0.35, 0.90, 2.10)
_SHRINK_1F = (0.01, 0.05, 0.22, 0.55, 1.30)
_AGREE_1F = (0.25, 0.27, 0.40, 0.70, 1.60)


@dataclass(frozen=True)
class UlfmCostModel:
    """Cost curves for the beta-ULFM operations, per failure count."""

    cores: Sequence[float] = _TABLE1_CORES
    spawn_multi: Sequence[float] = _TABLE1_SPAWN
    shrink_multi: Sequence[float] = _TABLE1_SHRINK
    agree_multi: Sequence[float] = _TABLE1_AGREE
    merge_curve: Sequence[float] = _TABLE1_MERGE
    spawn_single: Sequence[float] = _SPAWN_1F
    shrink_single: Sequence[float] = _SHRINK_1F
    agree_single: Sequence[float] = _AGREE_1F
    #: additional multiplicative cost per failure beyond the second
    extra_failure_factor: float = 0.35
    #: overall scale (1.0 = OPL-beta behaviour; smaller models a fixed MPI)
    scale: float = 1.0
    #: floor (seconds) for any failure-handling operation — the Table I
    #: curves start at 19 cores and extrapolate to 0.0 below ~18, which
    #: would make non-collective repairs on small sub-grid groups literally
    #: free; no real ULFM operation is
    min_op_cost: float = 1.0e-3

    def _failure_scale(self, n_failed: int) -> float:
        if n_failed <= 1:
            return 1.0
        return 1.0 + self.extra_failure_factor * (n_failed - 2)

    def _op(self, n_cores: int, n_failed: int, single: Sequence[float],
            multi: Sequence[float]) -> float:
        """Shared spawn/shrink/agree evaluation with defined edges.

        * ``n_failed <= 0`` — there is no failure to handle, so the
          failure premium is zero (healthy-path costs are charged by the
          generic collective model, not by these curves);
        * ``n_failed >= n_cores`` — a communicator cannot lose more
          members than it has: clamp, so small local groups (the
          non-collective repair path) never extrapolate the failure scale
          past the group size;
        * interp_curve extrapolating to 0.0 below the calibrated range is
          floored at ``min_op_cost`` (scaled, so a zero-scale model stays
          free).
        """
        if n_failed <= 0:
            return 0.0
        n_failed = min(n_failed, max(1, n_cores))
        curve = single if n_failed <= 1 else multi
        cost = self._failure_scale(n_failed) * interp_curve(
            n_cores, self.cores, curve)
        return self.scale * max(cost, self.min_op_cost)

    def spawn(self, n_cores: int, n_failed: int) -> float:
        return self._op(n_cores, n_failed, self.spawn_single, self.spawn_multi)

    def shrink(self, n_cores: int, n_failed: int) -> float:
        return self._op(n_cores, n_failed, self.shrink_single,
                        self.shrink_multi)

    def agree(self, n_cores: int, n_failed: int) -> float:
        return self._op(n_cores, n_failed, self.agree_single, self.agree_multi)

    def merge(self, n_cores: int) -> float:
        return self.scale * interp_curve(n_cores, self.cores, self.merge_curve)

    def revoke(self, n_cores: int) -> float:
        # revocation is a reliable broadcast: log-tree latency scaling
        return self.scale * 1e-4 * max(1.0, math.log2(max(n_cores, 2)))

    def readmit(self, n_cores: int) -> float:
        """Re-admitting one repaired process into an enclosing communicator
        (the non-collective repair path): a purely local membership update
        plus a log-tree notification, far below any collective repair."""
        return self.scale * 1e-4 * max(1.0, math.log2(max(n_cores, 2)))


ZERO_ULFM = UlfmCostModel(scale=0.0)


@dataclass(frozen=True)
class MachineSpec:
    """A simulated cluster: network, compute, disk and ULFM cost parameters."""

    name: str
    total_cores: int
    cores_per_node: int = 12
    #: point-to-point latency (seconds)
    alpha: float = 2.0e-6
    #: inverse bandwidth (seconds per byte)
    beta: float = 3.2e-10
    #: sustained flop rate per core (flop/s)
    flop_rate: float = 2.0e9
    #: single checkpoint write time to disk, per process (paper's T_I/O)
    t_io: float = 3.52
    #: checkpoint read time as a fraction of the write time
    read_factor: float = 0.5
    #: disk streaming bandwidth (bytes/s), added on top of t_io latency
    disk_bandwidth: float = 5.0e8
    ulfm: UlfmCostModel = field(default_factory=UlfmCostModel)
    #: extra latency the ULFM failure detector needs to flag a dead peer
    failure_detection_latency: float = 1.0e-3

    # ------------------------------------------------------------------
    # generic costs
    # ------------------------------------------------------------------
    def p2p_cost(self, nbytes: int) -> float:
        """Alpha–beta cost of one point-to-point message."""
        return self.alpha + nbytes * self.beta

    def collective_cost(self, n_procs: int, nbytes: int) -> float:
        """Log-tree collective: ceil(log2 n) rounds of alpha–beta messages."""
        if n_procs <= 1:
            return 0.0
        rounds = math.ceil(math.log2(n_procs))
        return rounds * (self.alpha + nbytes * self.beta)

    def barrier_cost(self, n_procs: int) -> float:
        return self.collective_cost(n_procs, 0)

    def compute_cost(self, flops: float) -> float:
        return flops / self.flop_rate

    def disk_write_cost(self, nbytes: int) -> float:
        return self.t_io + nbytes / self.disk_bandwidth

    def disk_read_cost(self, nbytes: int) -> float:
        return self.t_io * self.read_factor + nbytes / self.disk_bandwidth

    def with_overrides(self, **kwargs) -> "MachineSpec":
        """A copy of this spec with some fields replaced."""
        from dataclasses import replace
        return replace(self, **kwargs)
