"""Cluster presets used throughout the experiments.

``OPL`` and ``RAIJIN`` mirror the two systems in the paper's Sec. III;
``IDEAL`` is a zero-cost machine used by numerics-only tests where virtual
time is irrelevant.
"""

from __future__ import annotations

from .model import MachineSpec, UlfmCostModel, ZERO_ULFM

#: The 432-core Fujitsu Laboratories of Europe cluster (36 dual-socket
#: nodes, 2x6-core X5670, InfiniBand QDR).  T_I/O = 3.52 s — a "typical"
#: disk write latency per the paper.
OPL = MachineSpec(
    name="OPL",
    total_cores=432,
    cores_per_node=12,
    alpha=1.9e-6,
    beta=1.0 / 3.2e9,   # IB QDR ~32 Gbit/s effective
    flop_rate=2.93e9,   # X5670 @ 2.93 GHz, ~1 flop/cycle sustained
    t_io=3.52,
)

#: NCI Raijin: 57,472 Sandy Bridge cores, IB FDR, Lustre filesystem with
#: remarkably low checkpoint latency (T_I/O = 0.03 s per the paper).
RAIJIN = MachineSpec(
    name="Raijin",
    total_cores=57_472,
    cores_per_node=16,
    alpha=1.3e-6,
    beta=1.0 / 5.6e9,   # IB FDR ~56 Gbit/s
    flop_rate=2.6e9,
    t_io=0.03,
    disk_bandwidth=5.0e9,
)

#: Zero-cost machine: all operations are free; use when only numerical
#: results matter (keeps virtual timestamps trivially comparable).
IDEAL = MachineSpec(
    name="ideal",
    total_cores=1_000_000,
    cores_per_node=12,
    alpha=0.0,
    beta=0.0,
    flop_rate=float("inf"),
    t_io=0.0,
    disk_bandwidth=float("inf"),
    ulfm=ZERO_ULFM,
    failure_detection_latency=0.0,
)

#: A hypothetical cluster running a *fixed* (non-beta) ULFM whose recovery
#: operations scale like ordinary collectives — used in ablations to show
#: how much of Fig. 8/11's cost is the beta implementation.
OPL_FIXED_ULFM = OPL.with_overrides(
    name="OPL-fixed-ulfm",
    ulfm=UlfmCostModel(
        spawn_multi=(0.02, 0.03, 0.05, 0.08, 0.12),
        shrink_multi=(0.01, 0.015, 0.02, 0.03, 0.05),
        agree_multi=(0.005, 0.007, 0.01, 0.015, 0.02),
        merge_curve=(0.01, 0.01, 0.02, 0.02, 0.03),
        spawn_single=(0.02, 0.03, 0.05, 0.08, 0.12),
        shrink_single=(0.01, 0.015, 0.02, 0.03, 0.05),
        agree_single=(0.005, 0.007, 0.01, 0.015, 0.02),
    ),
)

PRESETS = {spec.name: spec for spec in (OPL, RAIJIN, IDEAL, OPL_FIXED_ULFM)}
