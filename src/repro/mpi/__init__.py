"""Simulated MPI with the ULFM fault-tolerance extensions.

The subset implemented covers everything the paper's recovery protocol
touches: point-to-point, the common collectives, groups, ``split``/``dup``,
``spawn_multiple``, intercommunicator ``merge``, plus the ULFM surface
(``revoke``, ``shrink``, ``agree``, ``failure_ack``/``failure_get_acked``)
with fail-stop process-failure semantics.
"""

from .cart import CartHandle, create_cart, dims_create
from .comm import (BAND, LAND, MAX, MIN, PROD, SUM, CommHandle, CommState,
                   Request, Status, waitall, waitany)
from .stats import CommStats
from .errors import (ANY_SOURCE, ANY_TAG, MPI_ERR_COMM, MPI_ERR_PROC_FAILED,
                     MPI_ERR_REVOKED, MPI_SUCCESS, UNDEFINED, CommInvalidError,
                     MPIError, ProcFailedError, RankError, RevokedError)
from .group import IDENT, SIMILAR, UNEQUAL, Group
from .intercomm import IntercommHandle, IntercommState
from .process import Proc
from .universe import Job, RankContext, Universe, run_ranks

__all__ = [
    "Universe", "Job", "RankContext", "run_ranks",
    "CommHandle", "CommState", "IntercommHandle", "IntercommState",
    "Group", "Proc", "Request", "Status",
    "IDENT", "SIMILAR", "UNEQUAL",
    "ANY_SOURCE", "ANY_TAG", "UNDEFINED",
    "MPI_SUCCESS", "MPI_ERR_COMM", "MPI_ERR_PROC_FAILED", "MPI_ERR_REVOKED",
    "MPIError", "ProcFailedError", "RevokedError", "CommInvalidError",
    "RankError",
    "SUM", "PROD", "MAX", "MIN", "LAND", "BAND",
    "waitall", "waitany",
    "CartHandle", "create_cart", "dims_create",
    "CommStats",
]
