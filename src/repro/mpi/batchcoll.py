"""Batch-vectorised fast path for failure-free collective rounds.

The event-path cost of a collective is dominated by per-rank machinery:
one :class:`~repro.mpi.collectives.Rendezvous` arrival (with an O(members)
dead-member scan per arrival — O(N²) per round), one future, and one resume
event per rank.  On a healthy communicator all of that is redundant: every
live rank joins the *same* round, the round completes at the last arrival,
and every participant resumes at ``latest_arrival + cost``.

:class:`BatchCollectives` exploits exactly that.  Ranks contribute into a
preallocated per-round value row; the last arriver finishes the round with
one fold/clone pass and wakes all parked ranks through a single
``_EV_BATCH`` engine event (see ``Engine.schedule_future_batch``).  Rounds,
their futures and their contribution buffers are slot-reused via a free
list, so steady-state rounds allocate almost nothing.

Bit-identity with the event path is the design invariant, not an
aspiration; every rule below mirrors a specific event-path behaviour:

* **fold order** — reductions fold left-to-right in rank order, skipping
  ``None`` contributions, exactly like the event finishers.  No numpy
  pairwise reductions (they change float rounding).
* **result aliasing** — results are cloned at *completion time* (root keeps
  its original object for bcast/reduce/gather, exactly like the event
  finishers), never shared mutably across ranks.
* **timing** — completion at ``last_arrival + cost`` with the identical
  ``cost_fn`` inputs (max contribution nbytes; ``barrier_cost`` for
  barrier).
* **failure parity** — a member death while a round is open dooms it with
  the *same* :class:`ProcFailedError` (message included, via
  :func:`~repro.mpi.collectives.doom_exception`) at ``death + detect``;
  ranks that reach the doomed round later receive the original exception at
  ``their_now + detect``, mirroring ``Rendezvous.arrive`` on a doomed
  rendezvous.  Revocation dooms open rounds with the shared
  ``RevokedError`` instance at ``revoke + detect``, mirroring
  ``RendezvousTable.doom_all``.
* **fallback** — any condition the fast path does not model (dead members,
  revoked communicator, diagnostics mode, an attached tracer, SURVIVOR-kind
  ops, the long-tail ops) declines the join and the caller takes the event
  path.  Both paths consume exactly one ``next_op_index`` per call, so a
  program may freely alternate between them and collective matching stays
  aligned across ranks.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .collectives import doom_exception
from .datatypes import _IMMUTABLE_TYPES, clone_payload
from .errors import RankError

#: result delivery shapes (int tags, compared with ``==`` in ``take``)
_SHARED = 0      # every rank reads ``result`` (immutable -> sharing is safe)
_ROOT_ONLY = 1   # root reads ``result``; everyone else gets None
_PER_RANK = 2    # rank i reads ``per_rank[i]`` (clones made at completion)

#: identity-keyed substitutions of the comm module's reduction lambdas by
#: their C-level equivalents (populated by :mod:`repro.mpi.comm` at import
#: time).  Only ops whose builtin is semantically identical for *every*
#: payload type are listed; user-supplied operators are never touched.
FAST_OPS: Dict[Callable, Callable] = {}


class _Round:
    """One open (or draining) batch collective round."""

    __slots__ = ("owner", "fut", "op", "idx", "reduce_op", "root",
                 "values", "arrived", "n", "max_nbytes", "kind", "result",
                 "per_rank", "reads")

    def __init__(self, owner: "BatchCollectives"):
        self.owner = owner
        self.fut = owner.engine.create_future()
        self.values: List[Any] = [None] * owner.size
        #: ranks that have joined, in arrival order (barrier contributions
        #: are None, so ``values`` cannot double as the arrival record; the
        #: deadlock explainer needs this to name the missing ranks)
        self.arrived: List[int] = []
        self.n = 0
        self.max_nbytes = 0
        self.result = None
        self.per_rank: Optional[List[Any]] = None
        self.reads = 0

    def take(self, rank: int):
        """This rank's result; recycles the round once every rank has read."""
        kind = self.kind
        if kind == _SHARED:
            out = self.result
        elif kind == _ROOT_ONLY:
            out = self.result if rank == self.root else None
        else:
            out = self.per_rank[rank]
        n = self.reads - 1
        self.reads = n
        if n == 0:
            self.owner._recycle(self)
        return out


class _DoomedJoin:
    """Join result for a rank arriving after its round was doomed — carries
    only the pre-failed future (``take`` is never reached)."""

    __slots__ = ("fut",)

    def __init__(self, fut):
        self.fut = fut


def _fold(values: List[Any], op: Callable):
    """Left fold in rank order, skipping ``None`` contributions —
    bit-identical to the event path's reduce/allreduce finisher loop."""
    op = FAST_OPS.get(op, op)
    acc = None
    for v in values:
        if v is None:
            continue
        acc = v if acc is None else op(acc, v)
    return acc


class BatchCollectives:
    """Per-communicator batch engine for failure-free collective rounds."""

    __slots__ = ("state", "engine", "machine", "stats", "size", "detect",
                 "open", "doomed", "_pool", "_none_row", "_counters")

    def __init__(self, state):
        uni = state.universe
        self.state = state
        self.engine = uni.engine
        self.machine = uni.machine
        self.stats = uni.stats
        self.size = state.size
        self.detect = uni.machine.failure_detection_latency
        #: op name -> open round (at most one per op: a round closes at its
        #: last arrival, and no rank can start round k+1 before passing
        #: through round k)
        self.open: Dict[str, _Round] = {}
        #: (op name, op index) -> original doom exception, for ranks that
        #: reach an already-doomed round (epoch-bounded: op indices are
        #: never reused, and a damaged communicator is abandoned after
        #: recovery, so entries are never deleted)
        self.doomed: Dict[tuple, BaseException] = {}
        self._pool: List[_Round] = []
        self._none_row: List[Any] = [None] * state.size
        #: cached mpi_collectives counter instruments (one registry lookup
        #: per op name per communicator instead of one per join)
        self._counters: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def _record(self, op: str) -> None:
        c = self._counters.get(op)
        if c is None:
            c = self._counters[op] = self.stats.registry.counter(
                "mpi_collectives", op=op)
        c.value += 1

    def join(self, op: str, proc, rank: int, value: Any, nbytes: int,
             reduce_op: Optional[Callable] = None, root: int = 0):
        """Contribute to the open round for ``op`` (creating it if needed).

        Returns the round (await ``round.fut`` then ``round.take(rank)``),
        a :class:`_DoomedJoin` whose future already carries the round's
        original doom exception, or ``None`` — meaning the fast path
        declines and the caller must run the event path.  An op index is
        consumed (and the collective counted) exactly when the join is
        accepted, preserving the one-index-per-call contract.
        """
        state = self.state
        key = (proc.uid, "coll")
        idx = state._op_counts[key]            # peek; consume only on accept
        rnd = self.open.get(op)
        if rnd is not None:
            if rnd.idx != idx:                 # pragma: no cover - defensive
                return None
            state._op_counts[key] = idx + 1
            self._record(op)
            rnd.values[rank] = value
            rnd.arrived.append(rank)
            if nbytes > rnd.max_nbytes:
                rnd.max_nbytes = nbytes
            rnd.n += 1
            if rnd.n == self.size:
                del self.open[op]
                self._complete(rnd)
            return rnd
        exc = self.doomed.get((op, idx))
        if exc is not None:
            # late arrival to a doomed round: original exception, delivered
            # after the detection latency (Rendezvous.arrive parity)
            state._op_counts[key] = idx + 1
            self._record(op)
            engine = self.engine
            fut = engine.create_future()
            fut.set_exception(exc, at=engine.now + self.detect)
            return _DoomedJoin(fut)
        if state._dead_ranks:
            # damaged communicator: the event path models the doomed
            # rendezvous / failure-detection probe semantics
            return None
        state._op_counts[key] = idx + 1
        self._record(op)
        pool = self._pool
        rnd = pool.pop() if pool else _Round(self)
        rnd.op = op
        rnd.idx = idx
        rnd.reduce_op = reduce_op
        rnd.root = root
        rnd.values[rank] = value
        rnd.arrived.append(rank)
        rnd.max_nbytes = nbytes
        rnd.n = 1
        if self.size == 1:
            self._complete(rnd)
        else:
            self.open[op] = rnd
        return rnd

    # ------------------------------------------------------------------
    def _complete(self, rnd: _Round) -> None:
        """Finish a fully-arrived round: cost, fold/clone, batched wake-up.

        Runs at the last arrival instant, so ``engine.now`` is the event
        path's ``latest`` and completion lands at ``now + cost``.
        """
        engine = self.engine
        now = engine.now
        op = rnd.op
        size = self.size
        values = rnd.values
        try:
            if op == "barrier":
                cost = self.machine.barrier_cost(size)
                rnd.kind = _SHARED
                rnd.result = None
            else:
                cost = self.machine.collective_cost(size, rnd.max_nbytes)
                if op == "allreduce":
                    acc = _fold(values, rnd.reduce_op)
                    if type(acc) in _IMMUTABLE_TYPES:
                        rnd.kind = _SHARED
                        rnd.result = acc
                    else:
                        rnd.kind = _PER_RANK
                        rnd.per_rank = [clone_payload(acc)
                                        for _ in range(size)]
                elif op == "reduce":
                    rnd.kind = _ROOT_ONLY
                    rnd.result = _fold(values, rnd.reduce_op)
                elif op == "bcast":
                    v = values[rnd.root]
                    if type(v) in _IMMUTABLE_TYPES:
                        rnd.kind = _SHARED
                        rnd.result = v
                    else:
                        # root keeps its original object, like the finisher
                        rnd.kind = _PER_RANK
                        root = rnd.root
                        rnd.per_rank = [v if i == root else clone_payload(v)
                                        for i in range(size)]
                elif op == "gather":
                    rnd.kind = _ROOT_ONLY
                    rnd.result = list(values)   # originals, finisher parity
                elif op == "allgather":
                    ordered = list(values)
                    rnd.kind = _PER_RANK
                    rnd.per_rank = [clone_payload(ordered)
                                    for _ in range(size)]
                elif op == "scatter":
                    items = values[rnd.root]
                    if items is None or len(items) != size:
                        raise RankError(
                            f"scatter root must supply {size} items")
                    rnd.kind = _PER_RANK
                    rnd.per_rank = [clone_payload(items[i])
                                    for i in range(size)]
                else:  # pragma: no cover - join() only admits the ops above
                    raise RuntimeError(f"batch round for unknown op {op!r}")
        except Exception as exc:
            # malformed collective: fails uniformly on every participant at
            # the last arrival instant, like Rendezvous._complete
            rnd.fut.set_exception(exc, at=now)
            return
        rnd.reads = size
        engine.schedule_future_batch(rnd.fut, None, now + cost)

    # ------------------------------------------------------------------
    def _recycle(self, rnd: _Round) -> None:
        rnd.values[:] = self._none_row
        del rnd.arrived[:]
        rnd.n = 0
        rnd.max_nbytes = 0
        rnd.result = rnd.per_rank = rnd.reduce_op = None
        rnd.fut.recycle()
        self._pool.append(rnd)

    # ------------------------------------------------------------------
    # failure propagation (cold paths)
    # ------------------------------------------------------------------
    def on_death(self, rank: int, now: float) -> None:
        """A member died: doom every open round (ProcFailedError at
        ``now + detect``, identical message to ``Rendezvous._doom``) and
        arm the doomed-continuation for ranks that have not arrived yet."""
        if not self.open:
            return
        at = now + self.detect
        for op, rnd in self.open.items():
            exc = doom_exception(op, (rank,))
            self.doomed[(op, rnd.idx)] = exc
            rnd.fut.set_exception(exc, at=at)
        self.open.clear()

    def on_revoke(self, exc: BaseException, now: float) -> None:
        """The communicator was revoked: doom every open round with the
        shared exception instance, like ``RendezvousTable.doom_all``.

        No doomed-continuation is needed — ranks reaching the collective
        after revocation fail the ``_check_usable`` gate synchronously on
        the event path (the fast path declines revoked communicators)."""
        if not self.open:
            return
        at = now + self.detect
        for rnd in self.open.values():
            rnd.fut.set_exception(exc, at=at)
        self.open.clear()
