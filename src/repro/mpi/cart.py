"""Cartesian process topologies (``MPI_Cart_create`` and friends).

The paper's solver "sets up process grids with corresponding process maps
which govern the communication between different sub-grids and domains";
this module provides that machinery: balanced dimension factorisation
(``MPI_Dims_create``), coordinate <-> rank maps and neighbour shifts for
the 2D-decomposed solver variant.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .comm import CommHandle
from .errors import UNDEFINED, RankError


def dims_create(nnodes: int, ndims: int,
                dims: Optional[Sequence[int]] = None) -> List[int]:
    """``MPI_Dims_create``: balanced factorisation of ``nnodes``.

    Fixed (non-zero) entries of ``dims`` are honoured; zero entries are
    filled so the product equals ``nnodes``, as square as possible (larger
    factors first).
    """
    dims = list(dims) if dims is not None else [0] * ndims
    if len(dims) != ndims:
        raise ValueError("dims length must equal ndims")
    fixed = 1
    free_positions = []
    for i, d in enumerate(dims):
        if d < 0:
            raise ValueError("dims entries must be >= 0")
        if d:
            fixed *= d
        else:
            free_positions.append(i)
    if fixed == 0 or nnodes % fixed:
        raise ValueError(f"cannot factor {nnodes} over fixed dims {dims}")
    remaining = nnodes // fixed
    if not free_positions:
        if remaining != 1:
            raise ValueError(f"fixed dims {dims} do not cover {nnodes}")
        return dims

    # factorise `remaining` into len(free_positions) near-equal factors
    k = len(free_positions)
    factors = [1] * k
    # repeatedly peel the largest prime factor onto the smallest slot
    n = remaining
    primes = []
    p = 2
    while p * p <= n:
        while n % p == 0:
            primes.append(p)
            n //= p
        p += 1
    if n > 1:
        primes.append(n)
    for prime in sorted(primes, reverse=True):
        slot = min(range(k), key=lambda i: factors[i])
        factors[slot] *= prime
    factors.sort(reverse=True)
    for pos, f in zip(free_positions, factors):
        dims[pos] = f
    return dims


class CartHandle(CommHandle):
    """A communicator with an attached Cartesian topology.

    Ranks are laid out row-major over ``dims`` (C order, matching MPI).
    """

    def __init__(self, state, proc, dims: Sequence[int],
                 periods: Sequence[bool]):
        super().__init__(state, proc)
        self.dims = tuple(int(d) for d in dims)
        self.periods = tuple(bool(p) for p in periods)
        if len(self.dims) != len(self.periods):
            raise ValueError("dims and periods must have equal length")
        total = 1
        for d in self.dims:
            total *= d
        if total != self.size:
            raise ValueError(
                f"topology {self.dims} needs {total} ranks, comm has "
                f"{self.size}")

    # ------------------------------------------------------------------
    @property
    def ndims(self) -> int:
        return len(self.dims)

    def coords_of(self, rank: int) -> Tuple[int, ...]:
        """``MPI_Cart_coords``."""
        self._check_rank(rank)
        coords = []
        for d in reversed(self.dims):
            coords.append(rank % d)
            rank //= d
        return tuple(reversed(coords))

    @property
    def coords(self) -> Tuple[int, ...]:
        return self.coords_of(self.rank)

    def rank_at(self, coords: Sequence[int]) -> int:
        """``MPI_Cart_rank``; periodic wrapping where enabled."""
        if len(coords) != self.ndims:
            raise RankError(f"need {self.ndims} coordinates")
        rank = 0
        for c, d, per in zip(coords, self.dims, self.periods):
            if per:
                c %= d
            elif not (0 <= c < d):
                return UNDEFINED
            rank = rank * d + c
        return rank

    def shift(self, dimension: int, displacement: int = 1
              ) -> Tuple[int, int]:
        """``MPI_Cart_shift``: (source, destination) ranks for a shift.

        Non-periodic out-of-range neighbours are ``UNDEFINED`` (the
        MPI_PROC_NULL analogue).
        """
        if not (0 <= dimension < self.ndims):
            raise RankError(f"dimension {dimension} out of range")
        me = list(self.coords)
        up = list(me)
        up[dimension] += displacement
        down = list(me)
        down[dimension] -= displacement
        return self.rank_at(down), self.rank_at(up)

    def neighbours(self, dimension: int) -> Tuple[int, int]:
        """(previous, next) along one dimension (convenience)."""
        return self.shift(dimension, 1)


async def create_cart(comm: CommHandle, dims: Sequence[int],
                      periods: Sequence[bool]) -> CartHandle:
    """``MPI_Cart_create`` (without reordering): collective; returns a new
    communicator handle carrying the topology."""
    dup = await comm.dup()
    return CartHandle(dup.state, comm.proc, dims, periods)
