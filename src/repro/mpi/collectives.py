"""Collective-operation rendezvous with ULFM failure semantics.

Every collective call on a communicator is matched by *call order*: the
``k``-th collective invoked by each member joins the same rendezvous.  A
rendezvous completes when all expected members have arrived; its completion
time is the latest arrival plus the machine-model cost, which is how
collectives synchronise virtual clocks.

Two failure disciplines exist:

* ``NORMAL`` — ordinary MPI collectives (barrier, bcast, ...): if any member
  is dead, or dies while the rendezvous is open, *every* participant gets
  :class:`ProcFailedError` (the paper's failure-detection barrier relies on
  exactly this).
* ``SURVIVOR`` — the fault-tolerant ULFM operations (``OMPI_Comm_agree``,
  ``OMPI_Comm_shrink``): dead members are excluded and the operation
  completes among the survivors.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Optional

from .errors import ProcFailedError


class RvKind(enum.Enum):
    NORMAL = "normal"
    SURVIVOR = "survivor"


def doom_exception(op_name: str, ranks: tuple) -> ProcFailedError:
    """The uniform collective-failure error.

    Shared between the rendezvous event path and the batch fast path
    (:mod:`repro.mpi.batchcoll`) so both produce byte-identical messages —
    the property tests compare them directly.
    """
    return ProcFailedError(
        f"collective {op_name} failed: dead ranks {ranks}",
        failed_ranks=ranks)


class Rendezvous:
    """One in-flight collective operation."""

    def __init__(self, engine, key, op_name: str, members: List, kind: RvKind,
                 cost_fn: Callable[[Dict[int, Any]], float],
                 finisher: Callable[[Dict[int, Any], List], Dict[int, Any]],
                 detection_latency: float,
                 rank_of: Callable[[Any], int]):
        self.engine = engine
        self.key = key
        self.op_name = op_name
        self.members = list(members)
        self.kind = kind
        self.cost_fn = cost_fn
        self.finisher = finisher
        self.detection_latency = detection_latency
        self.rank_of = rank_of
        #: proc uid -> (proc, value, arrival_time, future)
        self.arrivals: Dict[int, tuple] = {}
        self.doomed: Optional[BaseException] = None
        self.completed = False

    # ------------------------------------------------------------------
    def arrive(self, proc, value, future) -> None:
        if proc.uid in self.arrivals:
            raise RuntimeError(
                f"{proc.name} joined collective {self.op_name}@{self.key} twice")
        now = self.engine.now
        if self.doomed is not None:
            future.set_exception(self.doomed, at=now + self.detection_latency)
            self.arrivals[proc.uid] = (proc, value, now, None)
            return
        self.arrivals[proc.uid] = (proc, value, now, future)
        self._check(now)

    def on_member_death(self, proc, now: float) -> None:
        if self.completed or self.doomed is not None:
            if self.doomed is not None:
                # death may finish accounting for a doomed rendezvous
                return
            return
        if self.kind is RvKind.NORMAL:
            self._doom(now, dead=[proc])
        else:
            self._check(now)

    # ------------------------------------------------------------------
    def _live_members(self):
        return [m for m in self.members if m.alive]

    def all_accounted(self) -> bool:
        """True when no member can still arrive (cleanup criterion)."""
        return all((m.uid in self.arrivals) or m.dead for m in self.members)

    def _check(self, now: float) -> None:
        if self.completed or self.doomed is not None:
            return
        dead = [m for m in self.members if m.dead]
        if self.kind is RvKind.NORMAL:
            if dead:
                self._doom(now, dead=dead)
                return
            if len(self.arrivals) == len(self.members):
                self._complete()
        else:  # SURVIVOR
            live = self._live_members()
            if live and all(m.uid in self.arrivals for m in live):
                self._complete()

    def _doom(self, now: float, dead) -> None:
        ranks = tuple(sorted(self.rank_of(p) for p in dead))
        self.doomed = doom_exception(self.op_name, ranks)
        when = now + self.detection_latency
        for proc, _value, _t, fut in self.arrivals.values():
            if fut is not None and not fut.done:
                fut.set_exception(self.doomed, at=when)

    def _complete(self) -> None:
        live = self._live_members()
        arrived = {uid: v for uid, (p, v, t, f) in self.arrivals.items()
                   if p.alive}
        latest = max(t for p, v, t, f in self.arrivals.values() if p.alive)
        try:
            cost = self.cost_fn(arrived)
            results = self.finisher(arrived, live)
        except Exception as exc:
            # a malformed collective (e.g. scatter with the wrong list
            # length) fails uniformly on every participant, like MPI
            self.doomed = exc
            for _p, _v, _t, fut in self.arrivals.values():
                if fut is not None and not fut.done:
                    fut.set_exception(exc, at=self.engine.now)
            return
        self.completed = True
        done_at = latest + cost
        for uid, (proc, _value, _t, fut) in self.arrivals.items():
            if fut is None or fut.done:
                continue
            fut.set_result(results.get(uid), at=done_at)


class RendezvousTable:
    """Open rendezvous registry for one communicator."""

    def __init__(self):
        self.open: Dict[Any, Rendezvous] = {}

    def get_or_create(self, key, factory: Callable[[], Rendezvous]) -> Rendezvous:
        rv = self.open.get(key)
        if rv is None:
            rv = factory()
            self.open[key] = rv
        return rv

    def cleanup(self) -> None:
        for key in [k for k, rv in self.open.items()
                    if (rv.completed or rv.doomed is not None) and rv.all_accounted()]:
            del self.open[key]

    def on_proc_death(self, proc, now: float) -> None:
        for rv in list(self.open.values()):
            if any(m.uid == proc.uid for m in rv.members):
                rv.on_member_death(proc, now)
        self.cleanup()

    def doom_all(self, exc: BaseException, now: float, detection: float) -> None:
        """Revocation: fail every open rendezvous."""
        for rv in self.open.values():
            if rv.completed or rv.doomed is not None:
                continue
            rv.doomed = exc
            for _p, _v, _t, fut in rv.arrivals.values():
                if fut is not None and not fut.done:
                    fut.set_exception(exc, at=now + detection)
        self.cleanup()
