"""Intracommunicators: point-to-point, collectives, split and the ULFM surface.

A :class:`CommState` is the shared, engine-side record of one communicator
(membership, mailbox, open collectives, revocation flag).  Each rank holds a
:class:`CommHandle` — its private view with a rank, an error handler and the
async operation API.  This mirrors real MPI, where a communicator is a
distributed object and each process holds a local handle.
"""

from __future__ import annotations

import itertools
import operator
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..simkernel.traps import Sleep
from . import batchcoll
from .batchcoll import BatchCollectives
from .collectives import Rendezvous, RendezvousTable, RvKind
from .datatypes import clone_payload, freeze_payload, payload_nbytes
from .errors import (ANY_SOURCE, ANY_TAG, UNDEFINED, CommInvalidError,
                     MPIError, ProcFailedError, RankError, RevokedError)
from .group import Group
from .matching import ExchangeOp, MessageBoard
from .process import Proc

_comm_ids = itertools.count()


@dataclass
class Status:
    """Reception status: source rank and tag of the matched message."""
    source: int
    tag: int


class Request:
    """Handle for a non-blocking operation; ``await req.wait()`` completes it."""

    def __init__(self, future, transform=None):
        self._future = future
        self._transform = transform

    async def wait(self):
        value = await self._future
        return self._transform(value) if self._transform else value

    @property
    def done(self) -> bool:
        return self._future.done


async def waitall(requests: Sequence["Request"]) -> List[Any]:
    """``MPI_Waitall``: complete every request, in order."""
    return [await r.wait() for r in requests]


async def waitany(requests: Sequence["Request"]):
    """``MPI_Waitany``: return (index, value) of one completed request.

    Already-completed requests are served first (lowest index); otherwise
    requests are awaited in order — deterministic, if not maximally eager.
    """
    if not requests:
        raise ValueError("waitany of no requests")
    for i, r in enumerate(requests):
        if r.done:
            return i, await r.wait()
    return 0, await requests[0].wait()


# reduction operators -------------------------------------------------------
def SUM(a, b):
    return a + b


def PROD(a, b):
    return a * b


def MAX(a, b):
    import numpy as np
    return np.maximum(a, b) if hasattr(a, "shape") or hasattr(b, "shape") else max(a, b)


def MIN(a, b):
    import numpy as np
    return np.minimum(a, b) if hasattr(a, "shape") or hasattr(b, "shape") else min(a, b)


def LAND(a, b):
    return bool(a) and bool(b)


def BAND(a, b):
    return a & b


# the batch fast path substitutes the C-level operator for the ops whose
# builtin is semantically identical on every payload type (MIN/MAX/LAND
# branch on the operand type, so they fold through the Python functions)
batchcoll.FAST_OPS.update({SUM: operator.add, PROD: operator.mul,
                           BAND: operator.and_})


class CommState:
    """Shared state of one intracommunicator."""

    def __init__(self, universe, procs: Sequence[Proc], name: str = ""):
        self.cid = next(_comm_ids)
        self.universe = universe
        self.procs: List[Proc] = list(procs)
        self.name = name or f"comm{self.cid}"
        self.group = Group(self.procs)
        self.revoked = False
        engine = universe.engine
        detect = universe.machine.failure_detection_latency
        self.board = MessageBoard(engine, detect)
        self.rtable = RendezvousTable()
        self._op_counts: Dict[tuple, int] = defaultdict(int)
        #: per-proc acknowledged failure snapshots (failure_ack)
        self.acked: Dict[int, tuple] = {}
        self.errhandlers: Dict[int, Callable] = {}
        self._rank_cache = {p.uid: i for i, p in enumerate(self.procs)}
        #: cached failed-rank snapshot, maintained by on_proc_death so the
        #: per-receive dead-source check is O(1) instead of a membership
        #: scan over every member
        self._dead_ranks = frozenset(
            i for i, p in enumerate(self.procs) if p.dead)
        #: cached diagnostics switch (future labels / waits_for annotations)
        self.diag = universe.diagnostics
        #: batch-vectorised fast path for failure-free collective rounds
        #: (None when the universe runs with batching disabled)
        self.batch: Optional[BatchCollectives] = \
            BatchCollectives(self) if universe.batch else None
        universe.stats.comms_created += 1
        for p in self.procs:
            p.comm_states.add(self)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.procs)

    def rank_of(self, proc: Proc) -> int:
        return self._rank_cache.get(proc.uid, UNDEFINED)

    def dead_ranks(self) -> frozenset:
        return self._dead_ranks

    def n_failed(self) -> int:
        return sum(1 for p in self.procs if p.dead)

    def next_op_index(self, proc: Proc, channel: str = "coll") -> int:
        """Per-proc, per-channel collective sequence number.

        Ordinary collectives share one ordered channel ("coll"), matching
        MPI's same-order rule.  The ULFM operations (agree, shrink) use
        their own channels: their fault-tolerant consensus protocols are
        independent of the regular collective stream, which is what makes
        the paper's differing parent/child call orders (Fig. 3 l.21-22 vs
        Fig. 5 l.14-15) legal.
        """
        key = (proc.uid, channel)
        idx = self._op_counts[key]
        self._op_counts[key] = idx + 1
        return idx

    def handle(self, proc: Proc) -> "CommHandle":
        return CommHandle(self, proc)

    def on_proc_death(self, proc: Proc, now: float) -> None:
        """Called by the universe when a member dies."""
        rank = self.rank_of(proc)
        self._dead_ranks = self._dead_ranks | {rank}
        self.board.drop_waiters_of(rank)
        self.board.on_rank_death(rank, now)
        self.rtable.on_proc_death(proc, now)
        if self.batch is not None:
            self.batch.on_death(rank, now)

    def readmit(self, rank: int, proc: Proc) -> None:
        """Replace the dead member at ``rank`` with ``proc`` in place.

        The local-membership half of the non-collective repair path: after a
        sub-grid rebuilds itself, each surviving member re-admits the
        replacement processes into the *enclosing* communicators the dead
        processes belonged to, without any collective over those
        communicators.  Idempotent — every survivor of the repaired grid
        performs the same swap.

        The swap patches the member lists of still-open rendezvous so a
        fault-tolerant operation already in progress (e.g. a survivor-kind
        ``agree`` that unaffected ranks have entered) starts waiting for the
        replacement instead of skipping the dead member.  Patching only ever
        *adds* a wait requirement, so no completion check is needed here.
        The replacement inherits the dead member's per-channel collective
        sequence numbers, keeping it aligned with the survivors' streams.

        Callers must guarantee no in-flight point-to-point traffic still
        addresses the dead member on this communicator (the non-collective
        protocol re-admits before any post-failure operation is posted).
        """
        old = self.procs[rank]
        if old is proc:
            return                      # already re-admitted by another path
        if not old.dead:
            raise RankError(
                f"rank {rank} of {self.name} is alive; cannot re-admit over it")
        if proc.dead:
            raise RankError(
                f"cannot re-admit dead process {proc.name} into {self.name}")
        self.procs[rank] = proc
        self._rank_cache.pop(old.uid, None)
        self._rank_cache[proc.uid] = rank
        self._dead_ranks = self._dead_ranks - {rank}
        self.group = Group(self.procs)
        for (uid, channel), count in list(self._op_counts.items()):
            if uid == old.uid:
                self._op_counts[(proc.uid, channel)] = count
                del self._op_counts[(uid, channel)]
        for rv in self.rtable.open.values():
            if not rv.completed and rv.doomed is None:
                for i, m in enumerate(rv.members):
                    if m.uid == old.uid:
                        rv.members[i] = proc
        old.comm_states.discard(self)
        proc.comm_states.add(self)

    def do_revoke(self, now: float) -> None:
        if self.revoked:
            return
        self.revoked = True
        self.universe.trace(self.name, "revoked", "propagated")
        # one shared exception instance across every doomed operation,
        # exactly like the historical doom_all-only path
        exc = RevokedError(f"{self.name} revoked")
        detect = self.universe.machine.failure_detection_latency
        self.board.revoke_all(now)
        self.rtable.doom_all(exc, now, detect)
        if self.batch is not None:
            self.batch.on_revoke(exc, now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = " revoked" if self.revoked else ""
        return f"CommState({self.name!r}, size={self.size}{flags})"


class CommHandle:
    """One rank's view of (and API to) a communicator."""

    def __init__(self, state: CommState, proc: Proc):
        if state.rank_of(proc) == UNDEFINED:
            raise CommInvalidError(f"{proc.name} is not a member of {state.name}")
        self.state = state
        self.proc = proc
        self.rank = state.rank_of(proc)
        # hot-path caches: engine/machine/board/stats are immutable for the
        # life of the universe, so the per-operation attribute hops are
        # avoidable
        self._engine = state.universe.engine
        self._machine = state.universe.machine
        self._board = state.board
        self._stats = state.universe.stats
        self._uni = state.universe
        # batch eligibility that is static for the handle's lifetime:
        # diagnostics mode needs the per-operation futures/annotations the
        # fast path skips.  Revocation and tracer attachment are checked
        # per call (they can change mid-run).
        self._batch = state.batch if not state.diag else None
        self._xop: Optional[ExchangeOp] = None  # reused fused-exchange op

    # -- basics ------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.state.size

    @property
    def group(self) -> Group:
        return self.state.group

    @property
    def name(self) -> str:
        return self.state.name

    @property
    def universe(self):
        return self.state.universe

    def set_errhandler(self, handler: Callable[["CommHandle", MPIError], None]) -> None:
        """Install an error handler called before any MPIError is raised
        (the simulator analogue of ``MPI_Comm_set_errhandler``)."""
        self.state.errhandlers[self.proc.uid] = handler

    def _raise(self, exc: MPIError):
        exc.comm = self
        handler = self.state.errhandlers.get(self.proc.uid)
        if handler is not None:
            handler(self, exc)
        raise exc

    def _check_usable(self):
        if self.state.revoked:
            self._raise(RevokedError(f"{self.state.name} is revoked"))

    def _check_rank(self, rank: int):
        if not (0 <= rank < self.state.size):
            raise RankError(f"rank {rank} out of range for {self.state.name}")

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    async def send(self, obj: Any, dest: int, tag: int = 0, *,
                   copy: bool = True) -> None:
        """Buffered standard-mode send (completes once injected).

        ``copy=False`` transfers ownership of the payload instead of
        cloning it: the caller promises not to mutate the buffer after the
        call, and the receiver gets a read-only view (see
        :func:`~repro.mpi.datatypes.freeze_payload`).
        """
        state = self.state
        if state.revoked:
            self._raise(RevokedError(f"{state.name} is revoked"))
        procs = state.procs
        if not 0 <= dest < len(procs):
            raise RankError(f"rank {dest} out of range for {state.name}")
        machine = self._machine
        nbytes = payload_nbytes(obj)
        cost = machine.p2p_cost(nbytes)
        target = procs[dest]
        if target.dead:
            if machine.failure_detection_latency:
                await Sleep(machine.failure_detection_latency)
            self._raise(ProcFailedError(
                f"send to dead rank {dest}", failed_ranks=(dest,)))
        if cost:
            await Sleep(cost)
        if state.revoked:
            self._raise(RevokedError(f"{state.name} revoked during send"))
        self._stats.record_message(nbytes)
        uni = state.universe
        if uni.tracer is not None:
            uni.trace(self.proc.name, "send",
                      f"{state.name} {self.rank}->{dest} tag={tag}")
        payload = clone_payload(obj) if copy else freeze_payload(obj)
        self._board.post(self.rank, dest, tag, payload, self._engine.now)

    async def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
                   *, return_status: bool = False):
        """Blocking receive; raises ProcFailedError if the source is dead."""
        state = self.state
        if state.revoked:
            self._raise(RevokedError(f"{state.name} is revoked"))
        if source != ANY_SOURCE and not 0 <= source < len(state.procs):
            raise RankError(f"rank {source} out of range for {state.name}")
        if state.diag:
            fut = self._engine.create_future(
                label=f"recv:{state.name}:{self.rank}")
            fut.waits_for = {"kind": "recv", "state": state,
                             "rank": self.rank, "source": source, "tag": tag}
        else:
            fut = self._engine.create_future()
        self._board.register_recv(self.rank, source, tag, fut,
                                  state._dead_ranks)
        try:
            msg = await fut
        except MPIError as exc:
            self._raise(exc)
        if state.universe.tracer is not None:
            self._trace_recv(msg, source, tag)
        if return_status:
            return msg.payload, Status(msg.src, msg.tag)
        return msg.payload

    def _trace_recv(self, msg, source: int, tag: int) -> None:
        flags = ("" if source != ANY_SOURCE else " anysrc") + \
                ("" if tag != ANY_TAG else " anytag")
        self.state.universe.trace(
            self.proc.name, "recv",
            f"{self.state.name} {msg.src}->{self.rank} tag={msg.tag}{flags}")

    async def sendrecv(self, obj: Any, dest: int, source: int = ANY_SOURCE,
                       sendtag: int = 0, recvtag: int = ANY_TAG, *,
                       copy: bool = True):
        """Combined send+recv (deadlock-free under the buffered-send model)."""
        req = self.isend(obj, dest, sendtag, copy=copy)
        value = await self.recv(source, recvtag)
        await req.wait()
        return value

    def isend(self, obj: Any, dest: int, tag: int = 0, *,
              copy: bool = True) -> Request:
        """Non-blocking send: posts the message after the injection cost.

        ``copy=False`` is the ownership-transfer fast path: the payload is
        not cloned; the caller must not mutate it after this call (the
        halo-exchange paths pass freshly ``.copy()``-ed boundary rows).
        """
        self._check_usable()
        self._check_rank(dest)
        state = self.state
        machine = self._machine
        engine = self._engine
        if state.diag:
            fut = engine.create_future(
                label=f"isend:{state.name}:{self.rank}")
        else:
            fut = engine.create_future()
        target = state.procs[dest]
        if target.dead:
            fut.set_exception(
                ProcFailedError(f"send to dead rank {dest}", failed_ranks=(dest,)),
                at=engine.now + machine.failure_detection_latency)
            return Request(fut)
        nbytes = payload_nbytes(obj)
        cost = machine.p2p_cost(nbytes)
        payload = clone_payload(obj) if copy else freeze_payload(obj)
        uni = state.universe
        uni.stats.record_message(nbytes)
        if uni.tracer is not None:
            uni.trace(self.proc.name, "send",
                      f"{state.name} {self.rank}->{dest} tag={tag}")
        arrival = engine.now + cost
        board = self._board
        rank = self.rank

        def _post():
            if not state.revoked:
                board.post(rank, dest, tag, payload, arrival)
            if not fut.done:
                fut.set_result(None, at=arrival)

        engine.call_at(arrival, _post)
        return Request(fut)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        self._check_usable()
        state = self.state
        if state.diag:
            fut = self._engine.create_future(
                label=f"irecv:{state.name}:{self.rank}")
            fut.waits_for = {"kind": "recv", "state": state,
                             "rank": self.rank, "source": source, "tag": tag}
        else:
            fut = self._engine.create_future()
        self._board.register_recv(self.rank, source, tag, fut,
                                  state._dead_ranks)

        def _complete(msg):
            if state.universe.tracer is not None:
                self._trace_recv(msg, source, tag)
            return msg.payload

        return Request(fut, transform=_complete)

    def _post_unrevoked(self, dest: int, tag: int, payload: Any,
                        arrival: float) -> None:
        """Deferred message delivery for :meth:`exchange` (same revocation
        guard as ``isend``'s post closure, without the per-send future)."""
        if not self.state.revoked:
            self._board.post(self.rank, dest, tag, payload, arrival)

    async def exchange(self, sends: Sequence[Tuple[int, int, Any]],
                       recvs: Sequence[Tuple[int, int]], *,
                       copy: bool = True) -> List[Any]:
        """Fused neighbour exchange: ``isend`` each ``(dest, tag, payload)``,
        receive each ``(source, tag)``, wait for the sends — one awaited
        future instead of ``len(sends) + len(recvs)`` per phase.

        Semantically (and, on the event path, literally) equivalent to::

            reqs = [self.isend(obj, d, t, copy=copy) for d, t, obj in sends]
            out = [await self.recv(s, t) for s, t in recvs]
            for r in reqs:
                await r.wait()
            return out

        which is the halo-exchange idiom of both solvers.  The fast path
        requires a healthy communicator (no dead members — dead-target send
        futures only exist on the event path), no tracer and no
        diagnostics; receives register sequentially at their predecessors'
        resolution instants, so failures landing mid-exchange surface with
        event-path timing (see :class:`~repro.mpi.matching.ExchangeOp`).
        """
        state = self.state
        if (self._batch is None or state.revoked or state._dead_ranks
                or self._uni.tracer is not None
                or not self._valid_specs(sends, recvs)):
            reqs = [self.isend(obj, dest, tag, copy=copy)
                    for dest, tag, obj in sends]
            out = [await self.recv(source, tag) for source, tag in recvs]
            for r in reqs:
                await r.wait()
            return out
        engine = self._engine
        machine = self._machine
        stats = self._stats
        now = engine.now
        floor = now
        post = self._post_unrevoked
        for dest, tag, obj in sends:
            nbytes = payload_nbytes(obj)
            stats.record_message(nbytes)
            payload = clone_payload(obj) if copy else freeze_payload(obj)
            arrival = now + machine.p2p_cost(nbytes)
            if arrival > floor:
                floor = arrival
            engine.call_at(arrival, post, dest, tag, payload, arrival)
        xop = self._xop
        if xop is None or xop.active:
            xop = self._xop = ExchangeOp(self._board, state, self.rank)
        try:
            payloads = await xop.begin(recvs, floor)
        except MPIError as exc:
            self._raise(exc)
        result = list(payloads)
        xop.finish()
        return result

    def _valid_specs(self, sends, recvs) -> bool:
        """Range pre-check for the fused fast path; invalid specs take the
        event path so the error surfaces exactly where the unfused sequence
        would raise it."""
        n = self.state.size
        for dest, _tag, _obj in sends:
            if not 0 <= dest < n:
                return False
        for source, _tag in recvs:
            if source != ANY_SOURCE and not 0 <= source < n:
                return False
        return bool(recvs)

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def _fast_round(self, op: str, value: Any, nbytes: int,
                    reduce_op: Optional[Callable] = None, root: int = 0):
        """Try to join the batch fast path for ``op``.

        Returns a round (await its ``fut``, then ``take(rank)``) or ``None``
        when the event path must run.  The gate mirrors the event path's
        synchronous checks: a revoked communicator declines here and raises
        in ``_check_usable``; an attached tracer needs the per-call trace
        records only the event path emits.
        """
        b = self._batch
        if b is None or self.state.revoked or self._uni.tracer is not None:
            return None
        return b.join(op, self.proc, self.rank, value, nbytes,
                      reduce_op=reduce_op, root=root)

    async def _collective(self, op_name: str, value: Any, *,
                          kind: RvKind = RvKind.NORMAL,
                          cost_fn: Callable[[Dict[int, Any]], float],
                          finisher: Callable[[Dict[int, Any], List[Proc]], Dict[int, Any]],
                          channel: str = "coll"):
        if kind is RvKind.NORMAL:
            self._check_usable()
        engine = self._engine
        idx = self.state.next_op_index(self.proc, channel)
        key = (channel, op_name, idx)
        state = self.state
        detect = self._machine.failure_detection_latency

        def factory():
            return Rendezvous(engine, key, op_name, state.procs, kind,
                              cost_fn, finisher, detect, state.rank_of)

        rv = state.rtable.get_or_create(key, factory)
        uni = state.universe
        uni.stats.record_collective(op_name)
        if uni.tracer is not None:
            uni.trace(self.proc.name, "coll",
                      f"{op_name} {state.name} r{self.rank}")
        if state.diag:
            fut = engine.create_future(
                label=f"{op_name}:{state.name}:{self.rank}")
            fut.waits_for = {"kind": "coll", "op": op_name, "state": state,
                             "rank": self.rank, "rv": rv}
        else:
            fut = engine.create_future()
        rv.arrive(self.proc, value, fut)
        state.rtable.cleanup()
        try:
            return await fut
        except MPIError as exc:
            self._raise(exc)

    def _coll_cost(self, arrived: Dict[int, Any]) -> float:
        nbytes = max((payload_nbytes(v) for v in arrived.values()), default=0)
        return self._machine.collective_cost(self.state.size, nbytes)

    async def barrier(self) -> None:
        """``MPI_Barrier`` — fails with ProcFailedError if any member is dead
        (the paper's failure-detection probe, Fig. 3 line 13)."""
        rnd = self._fast_round("barrier", None, 0)
        if rnd is not None:
            try:
                await rnd.fut
            except MPIError as exc:
                self._raise(exc)
            return rnd.take(self.rank)
        n = self.state.size
        await self._collective(
            "barrier", None,
            cost_fn=lambda arr: self._machine.barrier_cost(n),
            finisher=lambda arr, live: {uid: None for uid in arr})

    async def bcast(self, obj: Any = None, root: int = 0):
        self._check_rank(root)
        value = obj if self.rank == root else None
        rnd = self._fast_round("bcast", value, payload_nbytes(value),
                               root=root)
        if rnd is not None:
            try:
                await rnd.fut
            except MPIError as exc:
                self._raise(exc)
            return rnd.take(self.rank)
        state = self.state

        def finisher(arrived, live):
            root_uid = state.procs[root].uid
            value = arrived.get(root_uid)
            return {uid: (value if uid == root_uid else clone_payload(value))
                    for uid in arrived}

        return await self._collective(
            "bcast", obj if self.rank == root else None,
            cost_fn=self._coll_cost, finisher=finisher)

    async def gather(self, obj: Any, root: int = 0):
        self._check_rank(root)
        rnd = self._fast_round("gather", obj, payload_nbytes(obj), root=root)
        if rnd is not None:
            try:
                await rnd.fut
            except MPIError as exc:
                self._raise(exc)
            return rnd.take(self.rank)
        state = self.state

        def finisher(arrived, live):
            root_uid = state.procs[root].uid
            ordered = [arrived.get(p.uid) for p in state.procs]
            return {uid: (ordered if uid == root_uid else None)
                    for uid in arrived}

        return await self._collective(
            "gather", obj, cost_fn=self._coll_cost, finisher=finisher)

    async def allgather(self, obj: Any):
        rnd = self._fast_round("allgather", obj, payload_nbytes(obj))
        if rnd is not None:
            try:
                await rnd.fut
            except MPIError as exc:
                self._raise(exc)
            return rnd.take(self.rank)
        state = self.state

        def finisher(arrived, live):
            ordered = [arrived.get(p.uid) for p in state.procs]
            return {uid: clone_payload(ordered) for uid in arrived}

        return await self._collective(
            "allgather", obj, cost_fn=self._coll_cost, finisher=finisher)

    async def scatter(self, objs: Optional[Sequence] = None, root: int = 0):
        self._check_rank(root)
        value = objs if self.rank == root else None
        rnd = self._fast_round("scatter", value, payload_nbytes(value),
                               root=root)
        if rnd is not None:
            try:
                await rnd.fut
            except MPIError as exc:
                self._raise(exc)
            return rnd.take(self.rank)
        state = self.state

        def finisher(arrived, live):
            root_uid = state.procs[root].uid
            items = arrived.get(root_uid)
            if items is None or len(items) != state.size:
                raise RankError(
                    f"scatter root must supply {state.size} items")
            return {p.uid: clone_payload(items[i])
                    for i, p in enumerate(state.procs) if p.uid in arrived}

        return await self._collective(
            "scatter", objs if self.rank == root else None,
            cost_fn=self._coll_cost, finisher=finisher)

    async def reduce(self, obj: Any, op: Callable = SUM, root: int = 0):
        self._check_rank(root)
        rnd = self._fast_round("reduce", obj, payload_nbytes(obj),
                               reduce_op=op, root=root)
        if rnd is not None:
            try:
                await rnd.fut
            except MPIError as exc:
                self._raise(exc)
            return rnd.take(self.rank)
        state = self.state

        def finisher(arrived, live):
            acc = None
            for p in state.procs:
                v = arrived.get(p.uid)
                if v is None:
                    continue
                acc = v if acc is None else op(acc, v)
            root_uid = state.procs[root].uid
            return {uid: (acc if uid == root_uid else None) for uid in arrived}

        return await self._collective(
            "reduce", obj, cost_fn=self._coll_cost, finisher=finisher)

    async def allreduce(self, obj: Any, op: Callable = SUM):
        rnd = self._fast_round("allreduce", obj, payload_nbytes(obj),
                               reduce_op=op)
        if rnd is not None:
            try:
                await rnd.fut
            except MPIError as exc:
                self._raise(exc)
            return rnd.take(self.rank)
        state = self.state

        def finisher(arrived, live):
            acc = None
            for p in state.procs:
                v = arrived.get(p.uid)
                if v is None:
                    continue
                acc = v if acc is None else op(acc, v)
            return {uid: clone_payload(acc) for uid in arrived}

        return await self._collective(
            "allreduce", obj, cost_fn=self._coll_cost, finisher=finisher)

    async def scan(self, obj: Any, op: Callable = SUM):
        """``MPI_Scan``: inclusive prefix reduction by rank order."""
        state = self.state

        def finisher(arrived, live):
            out = {}
            acc = None
            for p in state.procs:
                v = arrived.get(p.uid)
                if v is None:
                    continue
                acc = v if acc is None else op(acc, v)
                out[p.uid] = clone_payload(acc)
            return out

        return await self._collective(
            "scan", obj, cost_fn=self._coll_cost, finisher=finisher)

    async def exscan(self, obj: Any, op: Callable = SUM):
        """``MPI_Exscan``: exclusive prefix reduction (None on rank 0)."""
        state = self.state

        def finisher(arrived, live):
            out = {}
            acc = None
            for p in state.procs:
                v = arrived.get(p.uid)
                if v is None:
                    continue
                out[p.uid] = clone_payload(acc) if acc is not None else None
                acc = v if acc is None else op(acc, v)
            return out

        return await self._collective(
            "exscan", obj, cost_fn=self._coll_cost, finisher=finisher)

    async def gatherv(self, obj: Any, root: int = 0):
        """``MPI_Gatherv``-style gather of variable-size contributions
        (the simulator imposes no size constraint, so this is gather with
        explicit naming for API parity)."""
        return await self.gather(obj, root=root)

    async def scatterv(self, objs: Optional[Sequence] = None, root: int = 0):
        """``MPI_Scatterv``-style scatter of variable-size pieces."""
        return await self.scatter(objs, root=root)

    async def reduce_scatter_block(self, objs: Sequence, op: Callable = SUM):
        """``MPI_Reduce_scatter_block``: element-wise reduce of per-rank
        lists, each rank receiving its own slot of the result."""
        state = self.state
        if len(objs) != state.size:
            raise RankError(f"reduce_scatter needs {state.size} items")

        def finisher(arrived, live):
            out = {}
            for i, p in enumerate(state.procs):
                if p.uid not in arrived:
                    continue
                acc = None
                for q in state.procs:
                    contrib = arrived.get(q.uid)
                    if contrib is None:
                        continue
                    acc = contrib[i] if acc is None else op(acc, contrib[i])
                out[p.uid] = clone_payload(acc)
            return out

        return await self._collective(
            "reduce_scatter", list(objs), cost_fn=self._coll_cost,
            finisher=finisher)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG
               ) -> Optional[Status]:
        """``MPI_Iprobe``: non-blocking check for a matching *arrived*
        message; returns its Status or None without consuming it."""
        self._check_usable()
        best = self._board.probe(self.rank, source, tag, self._engine.now)
        return None if best is None else Status(best.src, best.tag)

    async def alltoall(self, objs: Sequence):
        state = self.state
        if len(objs) != state.size:
            raise RankError(f"alltoall needs {state.size} items")

        def finisher(arrived, live):
            out = {}
            for i, p in enumerate(state.procs):
                if p.uid not in arrived:
                    continue
                out[p.uid] = [clone_payload(arrived[q.uid][i])
                              if q.uid in arrived else None
                              for q in state.procs]
            return out

        return await self._collective(
            "alltoall", list(objs), cost_fn=self._coll_cost, finisher=finisher)

    # ------------------------------------------------------------------
    # communicator construction
    # ------------------------------------------------------------------
    async def split(self, color: Optional[int], key: int = 0) -> Optional["CommHandle"]:
        """``MPI_Comm_split``: the paper uses this with chosen keys to restore
        the original rank order after recovery (Fig. 3 l.24, Fig. 5 l.25)."""
        state = self.state
        universe = state.universe

        def finisher(arrived, live):
            by_color: Dict[int, list] = defaultdict(list)
            for i, p in enumerate(state.procs):
                if p.uid not in arrived:
                    continue
                c, k = arrived[p.uid]
                if c is None or c == UNDEFINED:
                    continue
                by_color[c].append((k, i, p))
            results: Dict[int, Any] = {uid: None for uid in arrived}
            for c, entries in sorted(by_color.items()):
                entries.sort(key=lambda e: (e[0], e[1]))
                new_state = CommState(universe,
                                      [p for _k, _i, p in entries],
                                      name=f"{state.name}.split{c}")
                for _k, _i, p in entries:
                    results[p.uid] = new_state
            return results

        new_state = await self._collective(
            "split", (color, key),
            cost_fn=lambda arr: self._machine.collective_cost(state.size, 16),
            finisher=finisher)
        if new_state is None:
            return None
        return CommHandle(new_state, self.proc)

    async def dup(self) -> "CommHandle":
        return await self.split(0, self.rank)

    def free(self) -> None:
        """``MPI_Comm_free`` — bookkeeping only in the simulator."""
        self.state.errhandlers.pop(self.proc.uid, None)

    # ------------------------------------------------------------------
    # dynamic processes
    # ------------------------------------------------------------------
    async def spawn_multiple(self, count: int, entry, argv=(),
                             host_names: Optional[Sequence[str]] = None,
                             root: int = 0):
        """``MPI_Comm_spawn_multiple``: launch ``count`` new processes, each
        optionally pinned to a named host, returning the parent side of the
        new intercommunicator.  Collective over this communicator.

        The virtual-time cost follows the calibrated beta-ULFM curve
        (Table I): it grows steeply with the total core count.
        """
        from .intercomm import IntercommHandle  # local import to avoid cycle
        state = self.state
        universe = state.universe
        n_cores = state.size + count
        cost = self._machine.ulfm.spawn(n_cores, count)

        def finisher(arrived, live):
            # children begin at the rendezvous completion time
            inter_state = universe.create_spawned_job(
                state, count, entry, argv, host_names,
                start_at=universe.engine.now + cost)
            return {uid: inter_state for uid in arrived}

        inter_state = await self._collective(
            "spawn_multiple", (count, tuple(host_names or ())),
            cost_fn=lambda arr: cost, finisher=finisher)
        return IntercommHandle(inter_state, self.proc, side="local")

    # ------------------------------------------------------------------
    # ULFM extensions
    # ------------------------------------------------------------------
    def revoke(self) -> None:
        """``OMPI_Comm_revoke``: locally returning; propagates asynchronously
        and fails every pending/future operation on this communicator."""
        state = self.state
        engine = self._engine
        state.universe.trace(self.proc.name, "revoke",
                             f"{state.name} r{self.rank}")
        delay = self._machine.ulfm.revoke(state.size)
        engine.call_at(engine.now + delay, state.do_revoke, engine.now + delay)

    async def shrink(self) -> "CommHandle":
        """``OMPI_Comm_shrink``: fault-tolerant; returns a new communicator
        containing the survivors in their original relative order."""
        state = self.state
        universe = state.universe
        n_failed = state.n_failed()
        if n_failed == 0:
            # failure-free shrink is just a communicator duplication: price
            # it like a split rather than charging the 1-failure ULFM curve
            cost = self._machine.collective_cost(state.size, 16)
        else:
            cost = self._machine.ulfm.shrink(state.size, n_failed)

        def finisher(arrived, live):
            order = {p.uid: i for i, p in enumerate(state.procs)}
            survivors = sorted(live, key=lambda p: order[p.uid])
            new_state = CommState(universe, survivors,
                                  name=f"{state.name}.shrunk")
            return {uid: new_state for uid in arrived}

        new_state = await self._collective(
            "shrink", None, kind=RvKind.SURVIVOR,
            cost_fn=lambda arr: cost, finisher=finisher, channel="shrink")
        return CommHandle(new_state, self.proc)

    async def agree(self, flag: int = 1) -> int:
        """``OMPI_Comm_agree``: fault-tolerant agreement among survivors;
        returns the bitwise AND of the contributed flags."""
        state = self.state
        n_failed = state.n_failed()
        if n_failed == 0:
            # failure-free agreement: a handful of ordinary collective rounds
            cost = 4.0 * self._machine.collective_cost(state.size, 8)
        else:
            cost = self._machine.ulfm.agree(state.size, n_failed)

        def finisher(arrived, live):
            acc = None
            for v in arrived.values():
                acc = v if acc is None else (acc & v)
            return {uid: acc for uid in arrived}

        return await self._collective(
            "agree", int(flag), kind=RvKind.SURVIVOR,
            cost_fn=lambda arr: cost, finisher=finisher, channel="agree")

    async def readmit(self, rank: int, proc: Proc) -> "CommHandle":
        """Re-admit a repaired process into this communicator (local op).

        The non-collective repair path: the sub-grid has already rebuilt
        itself, and each of its survivors patches the replacement into the
        enclosing communicator's membership.  Charges the (small, log-tree)
        re-admission notification cost and returns a handle rebound to the
        updated state — for the caller this is ``self`` with the membership
        fixed, since the swap happens in place.
        """
        self._check_rank(rank)
        state = self.state
        cost = self._machine.ulfm.readmit(state.size)
        if cost:
            await Sleep(cost)
        state.readmit(rank, proc)
        state.universe.trace(self.proc.name, "readmit",
                             f"{state.name} r{rank} <- {proc.name}")
        return self

    def failure_ack(self) -> None:
        """``OMPI_Comm_failure_ack``: snapshot currently-known failures."""
        dead = tuple(p for p in self.state.procs if p.dead)
        self.state.acked[self.proc.uid] = dead

    def failure_get_acked(self) -> Group:
        """``OMPI_Comm_failure_get_acked``: the acknowledged failed group."""
        return Group(self.state.acked.get(self.proc.uid, ()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CommHandle({self.state.name!r}, rank={self.rank}/{self.size})"
