"""Payload handling: size estimation and value-semantics cloning.

The simulator passes Python objects between coroutines in the same address
space.  Real MPI has value semantics (the receiver gets a copy), so mutable
payloads — NumPy arrays in particular — are cloned on send.  Sizes feed the
alpha–beta cost model.
"""

from __future__ import annotations

import sys
from typing import Any

import numpy as np

#: assumed wire size of an opaque small Python object (headers, ints, ...)
_SCALAR_BYTES = 8


def payload_nbytes(obj: Any) -> int:
    """Estimate the number of bytes ``obj`` would occupy on the wire."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, (int, float, complex, bool, np.generic)):
        return _SCALAR_BYTES
    if isinstance(obj, (list, tuple, set, frozenset)):
        return _SCALAR_BYTES + sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return _SCALAR_BYTES + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    # opaque object: a conservative fixed guess keeps the model deterministic
    return max(_SCALAR_BYTES, sys.getsizeof(obj) // 2)


def clone_payload(obj: Any) -> Any:
    """Copy mutable numerical payloads so sender/receiver don't alias.

    Immutable objects are returned as-is.  Containers are cloned
    shallow-recursively (arrays within lists/tuples/dicts are copied).
    """
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, list):
        return [clone_payload(x) for x in obj]
    if isinstance(obj, tuple):
        return tuple(clone_payload(x) for x in obj)
    if isinstance(obj, dict):
        return {k: clone_payload(v) for k, v in obj.items()}
    return obj
