"""Payload handling: size estimation, value-semantics cloning, zero-copy.

The simulator passes Python objects between coroutines in the same address
space.  Real MPI has value semantics (the receiver gets a copy), so mutable
payloads — NumPy arrays in particular — are cloned on send by default.

:func:`freeze_payload` is the zero-copy alternative for *ownership-transfer*
boundaries (``send``/``isend`` with ``copy=False``): the sender promises
never to mutate the buffer after the call — typically because it just built
a private ``.copy()`` of a boundary row — and the receiver gets a read-only
NumPy *view* of the same memory, so nothing is copied at all.  The
read-only flag turns accidental receiver-side mutation into an immediate
``ValueError`` instead of silent cross-rank aliasing.

Sizes feed the alpha–beta cost model.
"""

from __future__ import annotations

import sys
from typing import Any

import numpy as np

#: assumed wire size of an opaque small Python object (headers, ints, ...)
_SCALAR_BYTES = 8

#: exact-type fast table for the hottest payload kinds (scalars); checked
#: before the isinstance chain so int/float payloads cost one dict lookup
_SCALAR_TYPES = {int: _SCALAR_BYTES, float: _SCALAR_BYTES,
                 bool: _SCALAR_BYTES, complex: _SCALAR_BYTES}

#: exact types that are immutable and need no cloning at all
_IMMUTABLE_TYPES = frozenset((int, float, bool, complex, str, bytes,
                              frozenset, type(None)))


def payload_nbytes(obj: Any) -> int:
    """Estimate the number of bytes ``obj`` would occupy on the wire."""
    t = type(obj)
    if t is np.ndarray:
        return obj.nbytes
    size = _SCALAR_TYPES.get(t)
    if size is not None:
        return size
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, (int, float, complex, bool, np.generic)):
        return _SCALAR_BYTES
    if isinstance(obj, (list, tuple, set, frozenset)):
        return _SCALAR_BYTES + sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return _SCALAR_BYTES + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    # opaque object: a conservative fixed guess keeps the model deterministic
    return max(_SCALAR_BYTES, sys.getsizeof(obj) // 2)


def clone_payload(obj: Any) -> Any:
    """Copy mutable numerical payloads so sender/receiver don't alias.

    Immutable objects are returned as-is.  Containers are cloned
    shallow-recursively (arrays within lists/tuples/dicts are copied).
    """
    t = type(obj)
    if t in _IMMUTABLE_TYPES:
        return obj
    if t is np.ndarray or isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, list):
        return [clone_payload(x) for x in obj]
    if isinstance(obj, tuple):
        return tuple(clone_payload(x) for x in obj)
    if isinstance(obj, dict):
        return {k: clone_payload(v) for k, v in obj.items()}
    return obj


def freeze_payload(obj: Any) -> Any:
    """Zero-copy send-side handoff: read-only views instead of copies.

    Arrays become read-only views sharing the sender's memory; containers
    are rebuilt shallow-recursively so the arrays inside them are frozen
    too.  Safe only when the caller relinquishes ownership of the buffer
    (it must not mutate it after the send) — this is what
    ``send(..., copy=False)`` / ``isend(..., copy=False)`` mean.
    """
    if isinstance(obj, np.ndarray):
        view = obj.view()
        view.flags.writeable = False
        return view
    if isinstance(obj, list):
        return [freeze_payload(x) for x in obj]
    if isinstance(obj, tuple):
        return tuple(freeze_payload(x) for x in obj)
    if isinstance(obj, dict):
        return {k: freeze_payload(v) for k, v in obj.items()}
    return obj
