"""MPI error classes, mirroring the ULFM error codes the paper relies on.

The real ULFM API reports failures through return codes
(``MPI_ERR_PROC_FAILED``, ``MPI_ERR_REVOKED``).  In Python we raise
exceptions instead; the exception classes carry the matching ``error_code``
so recovery code can be written either style.
"""

from __future__ import annotations

MPI_SUCCESS = 0
MPI_ERR_COMM = 5
MPI_ERR_PROC_FAILED = 75
MPI_ERR_REVOKED = 76

#: wildcard source rank (``MPI_ANY_SOURCE``)
ANY_SOURCE = -1
#: wildcard message tag (``MPI_ANY_TAG``)
ANY_TAG = -2
#: invalid rank/translation result (``MPI_UNDEFINED``)
UNDEFINED = -3


class MPIError(Exception):
    """Base class for all simulated-MPI errors."""

    error_code = MPI_ERR_COMM

    def __init__(self, message: str = "", *, comm=None):
        super().__init__(message or self.__class__.__name__)
        self.comm = comm


class ProcFailedError(MPIError):
    """``MPI_ERR_PROC_FAILED``: a communication peer is dead.

    ``failed_ranks`` lists the ranks (in the communicator the operation ran
    on) this error is attributable to, when known.
    """

    error_code = MPI_ERR_PROC_FAILED

    def __init__(self, message: str = "", *, comm=None, failed_ranks=()):
        super().__init__(message, comm=comm)
        self.failed_ranks = tuple(failed_ranks)


class RevokedError(MPIError):
    """``MPI_ERR_REVOKED``: the communicator was revoked by some rank."""

    error_code = MPI_ERR_REVOKED


class CommInvalidError(MPIError):
    """Operation on a null/freed communicator."""


class RankError(MPIError):
    """Out-of-range rank or malformed argument."""
