"""MPI process groups.

Groups are immutable ordered collections of simulated processes.  The
failed-process identification procedure of the paper (Fig. 6) is built
entirely from the group operations implemented here:
``MPI_Group_compare``, ``MPI_Group_difference`` and
``MPI_Group_translate_ranks``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from .errors import UNDEFINED, RankError

# MPI_Group_compare results
IDENT = 0       #: same members, same order
SIMILAR = 1     #: same members, different order
UNEQUAL = 2     #: different members


class Group:
    """Immutable ordered set of processes; rank == position."""

    __slots__ = ("procs",)

    def __init__(self, procs: Iterable):
        self.procs: Tuple = tuple(procs)
        if len(set(p.uid for p in self.procs)) != len(self.procs):
            raise RankError("duplicate process in group")

    # -- basics ------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.procs)

    def __len__(self) -> int:
        return len(self.procs)

    def __iter__(self):
        return iter(self.procs)

    def __contains__(self, proc) -> bool:
        return any(p.uid == proc.uid for p in self.procs)

    def rank_of(self, proc) -> int:
        """Rank of ``proc`` in this group, or ``UNDEFINED``."""
        for i, p in enumerate(self.procs):
            if p.uid == proc.uid:
                return i
        return UNDEFINED

    def __eq__(self, other) -> bool:
        return isinstance(other, Group) and \
            [p.uid for p in self.procs] == [p.uid for p in other.procs]

    def __hash__(self):
        return hash(tuple(p.uid for p in self.procs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Group[{', '.join(p.name for p in self.procs)}]"

    # -- MPI group algebra ---------------------------------------------------
    def compare(self, other: "Group") -> int:
        """``MPI_Group_compare``: IDENT, SIMILAR or UNEQUAL."""
        mine = [p.uid for p in self.procs]
        theirs = [p.uid for p in other.procs]
        if mine == theirs:
            return IDENT
        if sorted(mine) == sorted(theirs):
            return SIMILAR
        return UNEQUAL

    def difference(self, other: "Group") -> "Group":
        """``MPI_Group_difference``: my members not in ``other`` (my order)."""
        theirs = {p.uid for p in other.procs}
        return Group(p for p in self.procs if p.uid not in theirs)

    def intersection(self, other: "Group") -> "Group":
        theirs = {p.uid for p in other.procs}
        return Group(p for p in self.procs if p.uid in theirs)

    def union(self, other: "Group") -> "Group":
        mine = {p.uid for p in self.procs}
        extra = [p for p in other.procs if p.uid not in mine]
        return Group(list(self.procs) + extra)

    def incl(self, ranks: Sequence[int]) -> "Group":
        """``MPI_Group_incl``: sub-group of the given ranks, in that order."""
        try:
            return Group(self.procs[r] for r in ranks)
        except IndexError as exc:
            raise RankError(f"rank out of range in incl({ranks})") from exc

    def excl(self, ranks: Sequence[int]) -> "Group":
        bad = set(ranks)
        for r in bad:
            if not (0 <= r < self.size):
                raise RankError(f"rank {r} out of range in excl")
        return Group(p for i, p in enumerate(self.procs) if i not in bad)

    def translate_ranks(self, ranks: Sequence[int], other: "Group") -> List[int]:
        """``MPI_Group_translate_ranks``: map my ranks to ranks in ``other``.

        Unmatched processes map to ``UNDEFINED``.
        """
        out = []
        for r in ranks:
            if not (0 <= r < self.size):
                raise RankError(f"rank {r} out of range in translate_ranks")
            out.append(other.rank_of(self.procs[r]))
        return out
