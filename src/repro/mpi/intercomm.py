"""Intercommunicators: the parent/child link created by ``spawn_multiple``.

The reconstruction protocol (Figs. 3 and 5) uses exactly three operations on
the intercommunicator: ``OMPI_Comm_agree`` for synchronisation,
``MPI_Intercomm_merge`` to form the ordered intracommunicator, and error
handlers.  Basic point-to-point across the bridge is provided for
completeness.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Any, Callable, Dict, List, Sequence

from ..simkernel.traps import Sleep
from .collectives import Rendezvous, RendezvousTable, RvKind
from .comm import CommHandle, CommState
from .datatypes import clone_payload, payload_nbytes
from .errors import (ANY_SOURCE, ANY_TAG, UNDEFINED, CommInvalidError,
                     MPIError, ProcFailedError, RankError, RevokedError)
from .group import Group
from .matching import MessageBoard
from .process import Proc

_inter_ids = itertools.count()


class IntercommState:
    """Shared state of an intercommunicator between two disjoint groups."""

    def __init__(self, universe, group_a: Sequence[Proc], group_b: Sequence[Proc],
                 name: str = ""):
        self.cid = next(_inter_ids)
        self.universe = universe
        self.group_a: List[Proc] = list(group_a)
        self.group_b: List[Proc] = list(group_b)
        self.name = name or f"intercomm{self.cid}"
        self.revoked = False
        engine = universe.engine
        detect = universe.machine.failure_detection_latency
        # board keyed by destination proc uid (ranks are ambiguous across sides)
        self.board = MessageBoard(engine, detect)
        self.rtable = RendezvousTable()
        self._op_counts: Dict[tuple, int] = defaultdict(int)
        self.errhandlers: Dict[int, Callable] = {}
        self.acked: Dict[int, tuple] = {}
        self._a_uids = {p.uid for p in self.group_a}
        self._b_uids = {p.uid for p in self.group_b}
        universe.stats.comms_created += 1
        for p in self.all_procs:
            p.comm_states.add(self)

    @property
    def all_procs(self) -> List[Proc]:
        return self.group_a + self.group_b

    def side_of(self, proc: Proc) -> str:
        if proc.uid in self._a_uids:
            return "a"
        if proc.uid in self._b_uids:
            return "b"
        raise CommInvalidError(f"{proc.name} not in {self.name}")

    def local_remote(self, proc: Proc):
        return (self.group_a, self.group_b) if self.side_of(proc) == "a" \
            else (self.group_b, self.group_a)

    def rank_of(self, proc: Proc) -> int:
        """Rank within the proc's own (local) group."""
        local, _ = self.local_remote(proc)
        for i, p in enumerate(local):
            if p.uid == proc.uid:
                return i
        return UNDEFINED

    def n_failed(self) -> int:
        return sum(1 for p in self.all_procs if p.dead)

    def next_op_index(self, proc: Proc, channel: str = "coll") -> int:
        key = (proc.uid, channel)
        idx = self._op_counts[key]
        self._op_counts[key] = idx + 1
        return idx

    def on_proc_death(self, proc: Proc, now: float) -> None:
        self.board.drop_waiters_of(proc.uid)
        dead_rank = self.rank_of(proc)
        # fail pending receives on the *other* side naming this rank
        _, other = self.local_remote(proc)
        detect = self.universe.machine.failure_detection_latency
        for q in other:
            self.board.fail_source_waiters(
                q.uid, dead_rank,
                ProcFailedError(f"intercomm peer rank {dead_rank} died",
                                failed_ranks=(dead_rank,)),
                at=now + detect)
        self.rtable.on_proc_death(proc, now)

    def do_revoke(self, now: float) -> None:
        if self.revoked:
            return
        self.revoked = True
        self.universe.trace(self.name, "revoked", "propagated")
        self.board.revoke_all(now)
        self.rtable.doom_all(RevokedError(f"{self.name} revoked"), now,
                             self.universe.machine.failure_detection_latency)


class IntercommHandle:
    """One rank's view of an intercommunicator.

    ``side`` is "local" from the caller's perspective; remote ranks index the
    other group, as in real MPI.
    """

    def __init__(self, state: IntercommState, proc: Proc, side: str = "auto"):
        self.state = state
        self.proc = proc
        self.local_group, self.remote_group = state.local_remote(proc)
        self.rank = state.rank_of(proc)

    @property
    def local_size(self) -> int:
        return len(self.local_group)

    @property
    def remote_size(self) -> int:
        return len(self.remote_group)

    @property
    def _engine(self):
        return self.state.universe.engine

    @property
    def _machine(self):
        return self.state.universe.machine

    def set_errhandler(self, handler) -> None:
        self.state.errhandlers[self.proc.uid] = handler

    def _raise(self, exc: MPIError):
        exc.comm = self
        handler = self.state.errhandlers.get(self.proc.uid)
        if handler is not None:
            handler(self, exc)
        raise exc

    # ------------------------------------------------------------------
    # point-to-point across the bridge (ranks address the remote group)
    # ------------------------------------------------------------------
    async def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if self.state.revoked:
            self._raise(RevokedError(f"{self.state.name} revoked"))
        if not (0 <= dest < self.remote_size):
            raise RankError(f"remote rank {dest} out of range")
        target = self.remote_group[dest]
        machine = self._machine
        if target.dead:
            if machine.failure_detection_latency:
                await Sleep(machine.failure_detection_latency)
            self._raise(ProcFailedError(f"send to dead remote rank {dest}",
                                        failed_ranks=(dest,)))
        cost = machine.p2p_cost(payload_nbytes(obj))
        if cost:
            await Sleep(cost)
        self.state.universe.stats.record_message(payload_nbytes(obj))
        self.state.universe.trace(
            self.proc.name, "send",
            f"{self.state.name} {self.rank}->{dest} tag={tag} inter")
        self.state.board.post(self.rank, target.uid, tag,
                              clone_payload(obj), self._engine.now)

    async def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        if self.state.revoked:
            self._raise(RevokedError(f"{self.state.name} revoked"))
        dead = frozenset(i for i, p in enumerate(self.remote_group) if p.dead)
        fut = self._engine.create_future(label=f"i-recv:{self.state.name}")
        fut.waits_for = {"kind": "recv", "state": self.state,
                         "rank": self.rank, "source": source, "tag": tag,
                         "inter": True}
        self.state.board.register_recv(self.proc.uid, source, tag, fut, dead)
        try:
            msg = await fut
        except MPIError as exc:
            self._raise(exc)
        self.state.universe.trace(
            self.proc.name, "recv",
            f"{self.state.name} {msg.src}->{self.rank} tag={msg.tag} inter")
        return msg.payload

    # ------------------------------------------------------------------
    # collectives over the union
    # ------------------------------------------------------------------
    async def _collective(self, op_name, value, *, kind, cost_fn, finisher,
                          channel: str = "coll", members=None):
        engine = self._engine
        state = self.state
        idx = state.next_op_index(self.proc, channel)
        key = (channel, op_name, idx)
        detect = self._machine.failure_detection_latency
        members = state.all_procs if members is None else members

        def factory():
            return Rendezvous(engine, key, op_name, members, kind,
                              cost_fn, finisher, detect, state.rank_of)

        rv = state.rtable.get_or_create(key, factory)
        state.universe.stats.record_collective(op_name)
        state.universe.trace(self.proc.name, "coll",
                             f"{op_name} {state.name} r{self.rank}")
        fut = engine.create_future(label=f"{op_name}:{state.name}")
        fut.waits_for = {"kind": "coll", "op": op_name, "state": state,
                         "rank": self.rank, "rv": rv}
        rv.arrive(self.proc, value, fut)
        state.rtable.cleanup()
        try:
            return await fut
        except MPIError as exc:
            self._raise(exc)

    async def agree(self, flag: int = 1) -> int:
        """``OMPI_Comm_agree`` on an intercommunicator.

        Agreement is performed over the caller's *local* group.  This is
        the only semantics under which the paper's published call sequence
        is deadlock-free: the parents merge before agreeing (Fig. 5
        l.14-15) while the children agree before merging (Fig. 3 l.21-22),
        so an agreement spanning both groups could never complete.
        """
        state = self.state
        side = state.side_of(self.proc)
        group = state.group_a if side == "a" else state.group_b
        n = len(group)
        n_failed = sum(1 for p in group if p.dead)
        if n_failed == 0:
            cost = 4.0 * self._machine.collective_cost(n, 8)
        else:
            cost = self._machine.ulfm.agree(n, n_failed)

        def finisher(arrived, live):
            acc = None
            for v in arrived.values():
                acc = v if acc is None else (acc & v)
            return {uid: acc for uid in arrived}

        return await self._collective(
            "agree", int(flag), kind=RvKind.SURVIVOR,
            cost_fn=lambda arr: cost, finisher=finisher,
            channel=f"agree-{side}", members=group)

    async def merge(self, high: bool) -> CommHandle:
        """``MPI_Intercomm_merge``: form an intracommunicator over both
        groups; the group(s) passing ``high=True`` get the upper ranks
        (Fig. 2's merge step)."""
        state = self.state
        universe = state.universe
        n = len(state.all_procs)
        cost = self._machine.ulfm.merge(n)

        def finisher(arrived, live):
            a_flags = {bool(arrived[p.uid]) for p in state.group_a
                       if p.uid in arrived}
            b_flags = {bool(arrived[p.uid]) for p in state.group_b
                       if p.uid in arrived}
            if len(a_flags) > 1 or len(b_flags) > 1 or a_flags == b_flags:
                raise RankError(
                    f"inconsistent high flags in intercomm merge: "
                    f"a={a_flags}, b={b_flags}")
            low, highg = (state.group_a, state.group_b) \
                if a_flags == {False} else (state.group_b, state.group_a)
            new_state = CommState(universe, list(low) + list(highg),
                                  name=f"{state.name}.merged")
            return {uid: new_state for uid in arrived}

        new_state = await self._collective(
            "merge", bool(high), kind=RvKind.NORMAL,
            cost_fn=lambda arr: cost, finisher=finisher)
        return CommHandle(new_state, self.proc)

    def revoke(self) -> None:
        state = self.state
        engine = self._engine
        state.universe.trace(self.proc.name, "revoke",
                             f"{state.name} r{self.rank}")
        delay = self._machine.ulfm.revoke(len(state.all_procs))
        engine.call_at(engine.now + delay, state.do_revoke, engine.now + delay)

    def failure_ack(self) -> None:
        """``OMPI_Comm_failure_ack`` over both groups."""
        dead = tuple(p for p in self.state.all_procs if p.dead)
        self.state.acked[self.proc.uid] = dead

    def failure_get_acked(self) -> Group:
        return Group(self.state.acked.get(self.proc.uid, ()))

    def free(self) -> None:
        self.state.errhandlers.pop(self.proc.uid, None)

    disconnect = free

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IntercommHandle({self.state.name!r}, rank={self.rank}, "
                f"local={self.local_size}, remote={self.remote_size})")
