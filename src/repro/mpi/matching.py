"""Point-to-point message matching for one communicator.

Sends are *eager/buffered*: the sender charges the alpha–beta injection cost
and completes; the message arrives at ``send_time + cost``.  Receives match
posted messages in (source, tag) FIFO order, honouring ``ANY_SOURCE`` /
``ANY_TAG`` wildcards with deterministic earliest-arrival tie-breaking.

Matching is *indexed*: undelivered messages and blocked receivers live in
per-``(dst, src, tag)`` FIFO buckets rather than flat per-destination lists,
so the common exact-match case is an O(1) dict hit instead of a linear scan.
Wildcards fall back to comparing the heads of the (few) candidate buckets:

* a message can wake receivers registered under exactly four keys —
  ``(src, tag)``, ``(src, ANY_TAG)``, ``(ANY_SOURCE, tag)`` and
  ``(ANY_SOURCE, ANY_TAG)`` — and the earliest-registered one (smallest
  ``seq`` among the bucket heads) wins, which is precisely the order a
  linear scan of the registration list would produce;
* a wildcard receive scans the destination's *bucket keys* (distinct
  ``(src, tag)`` pairs with pending traffic, usually a handful) and takes
  the bucket head minimising ``(arrival, seq)`` — the documented
  earliest-arrival tie-break.

Within a bucket, messages stay sorted by ``(arrival, seq)``: every post
happens at virtual time ``now == arrival`` (``isend`` defers the post via
``call_at``), so arrivals are non-decreasing in post order.  ``post``
nevertheless guards the invariant and falls back to a sorted insert if a
future caller ever posts out of order.

Failure semantics (ULFM fail-stop):

* a receive whose named source is dead, with no matching in-flight message,
  fails with :class:`ProcFailedError` after the detection latency;
* messages already in flight from a rank that subsequently dies are still
  delivered (matching eager-protocol MPI behaviour);
* revoking the communicator fails every pending receive.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from .errors import ANY_SOURCE, ANY_TAG, ProcFailedError, RevokedError


class Message:
    __slots__ = ("src", "dst", "tag", "payload", "arrival", "seq")

    def __init__(self, src: int, dst: int, tag: int, payload: Any,
                 arrival: float, seq: int):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.payload = payload
        self.arrival = arrival
        self.seq = seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Message({self.src}->{self.dst} tag={self.tag} "
                f"arrival={self.arrival:g} seq={self.seq})")


class PendingRecv:
    __slots__ = ("dst", "source", "tag", "future", "seq")

    def __init__(self, dst: int, source: int, tag: int, future: Any, seq: int):
        self.dst = dst
        self.source = source  # may be ANY_SOURCE
        self.tag = tag        # may be ANY_TAG
        self.future = future  # SimFuture resolved with the Message
        self.seq = seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PendingRecv(dst={self.dst} source={self.source} "
                f"tag={self.tag} seq={self.seq})")


_Key = Tuple[int, int]


class MessageBoard:
    """Per-communicator mailbox with deterministic indexed matching."""

    def __init__(self, engine, detection_latency: float):
        self.engine = engine
        self.detection_latency = detection_latency
        self._seq = 0
        #: undelivered messages: dst -> (src, tag) -> FIFO of Message
        self._posted: Dict[int, Dict[_Key, Deque[Message]]] = {}
        #: blocked receivers: dst -> (source, tag) -> FIFO of PendingRecv
        #: (keys may contain the ANY_SOURCE / ANY_TAG wildcards)
        self._waiting: Dict[int, Dict[_Key, Deque[PendingRecv]]] = {}
        #: dst -> number of blocked receivers whose key contains a wildcard;
        #: when zero, ``post`` skips the candidate-key scan entirely and
        #: does a single exact-bucket lookup
        self._wild: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # diagnostic views (flat, seq-ordered — the analysis layer reads these)
    # ------------------------------------------------------------------
    @property
    def posted(self) -> Dict[int, List[Message]]:
        """Flat per-destination view of undelivered messages (seq order)."""
        return {dst: sorted((m for q in buckets.values() for m in q),
                            key=lambda m: m.seq)
                for dst, buckets in self._posted.items() if buckets}

    @property
    def waiting(self) -> Dict[int, List[PendingRecv]]:
        """Flat per-destination view of blocked receivers (seq order)."""
        return {dst: sorted((r for q in buckets.values() for r in q),
                            key=lambda r: r.seq)
                for dst, buckets in self._waiting.items() if buckets}

    # ------------------------------------------------------------------
    @staticmethod
    def _matches(recv: PendingRecv, msg: Message) -> bool:
        return ((recv.source == ANY_SOURCE or recv.source == msg.src) and
                (recv.tag == ANY_TAG or recv.tag == msg.tag))

    def post(self, src: int, dst: int, tag: int, payload: Any, arrival: float) -> None:
        """Deliver/enqueue a message; wakes a matching blocked receiver."""
        self._seq += 1
        msg = Message(src, dst, tag, payload, arrival, self._seq)
        buckets = self._waiting.get(dst)
        if buckets:
            if not self._wild.get(dst):
                # no wildcard receivers at dst: only the exact bucket matches
                q = buckets.get((src, tag))
                if q:
                    recv = q.popleft()
                    if not q:
                        del buckets[(src, tag)]
                    recv.future.set_result(msg, at=arrival)
                    return
            else:
                best_key: Optional[_Key] = None
                best_seq = -1
                for key in ((src, tag), (src, ANY_TAG),
                            (ANY_SOURCE, tag), (ANY_SOURCE, ANY_TAG)):
                    q = buckets.get(key)
                    if q and (best_key is None or q[0].seq < best_seq):
                        best_key = key
                        best_seq = q[0].seq
                if best_key is not None:
                    q = buckets[best_key]
                    recv = q.popleft()
                    if not q:
                        del buckets[best_key]
                    if best_key[0] == ANY_SOURCE or best_key[1] == ANY_TAG:
                        self._wild[dst] -= 1
                    recv.future.set_result(msg, at=arrival)
                    return
        by_key = self._posted.get(dst)
        if by_key is None:
            by_key = self._posted[dst] = {}
        key = (src, tag)
        q = by_key.get(key)
        if q is None:
            by_key[key] = deque((msg,))
        elif q[-1].arrival <= arrival:   # the common (always, today) case
            q.append(msg)
        else:  # out-of-order arrival: preserve the (arrival, seq) sort
            items = sorted([*q, msg], key=lambda m: (m.arrival, m.seq))
            by_key[key] = deque(items)

    def _take_posted(self, dst: int, buckets: Dict[_Key, Deque[Message]],
                     key: _Key) -> Message:
        q = buckets[key]
        msg = q.popleft()
        if not q:
            del buckets[key]
            if not buckets:
                del self._posted[dst]
        return msg

    def register_recv(self, dst: int, source: int, tag: int, future,
                      dead_ranks: frozenset) -> None:
        """Try to match a receive; otherwise block (or fail fast on a dead source)."""
        buckets = self._posted.get(dst)
        if buckets:
            if source != ANY_SOURCE and tag != ANY_TAG:
                if (source, tag) in buckets:
                    msg = self._take_posted(dst, buckets, (source, tag))
                    future.set_result(msg, at=max(msg.arrival, self.engine.now))
                    return
            else:
                best_key: Optional[_Key] = None
                best: Optional[Tuple[float, int]] = None
                for key, q in buckets.items():
                    if ((source == ANY_SOURCE or source == key[0]) and
                            (tag == ANY_TAG or tag == key[1])):
                        head = q[0]
                        cand = (head.arrival, head.seq)
                        if best is None or cand < best:
                            best = cand
                            best_key = key
                if best_key is not None:
                    msg = self._take_posted(dst, buckets, best_key)
                    future.set_result(msg, at=max(msg.arrival, self.engine.now))
                    return
        if source != ANY_SOURCE and source in dead_ranks:
            future.set_exception(
                ProcFailedError(f"recv source rank {source} is dead",
                                failed_ranks=(source,)),
                at=self.engine.now + self.detection_latency)
            return
        self._seq += 1
        recv = PendingRecv(dst, source, tag, future, self._seq)
        by_key = self._waiting.get(dst)
        if by_key is None:
            by_key = self._waiting[dst] = {}
        key = (source, tag)
        q = by_key.get(key)
        if q is None:
            by_key[key] = deque((recv,))
        else:
            q.append(recv)
        if source == ANY_SOURCE or tag == ANY_TAG:
            self._wild[dst] = self._wild.get(dst, 0) + 1

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------
    def probe(self, dst: int, source: int, tag: int,
              now: float) -> Optional[Message]:
        """Earliest-arrival matching message already *arrived* at ``dst``
        (``arrival <= now``), without consuming it — the ``MPI_Iprobe``
        matching rule."""
        buckets = self._posted.get(dst)
        if not buckets:
            return None
        best: Optional[Message] = None
        for key, q in buckets.items():
            if ((source == ANY_SOURCE or source == key[0]) and
                    (tag == ANY_TAG or tag == key[1])):
                head = q[0]
                if head.arrival <= now and (
                        best is None or
                        (head.arrival, head.seq) < (best.arrival, best.seq)):
                    best = head
        return best

    # ------------------------------------------------------------------
    # failure propagation (cold paths — fail in registration/seq order so
    # downstream event ordering matches the historical linear-scan board)
    # ------------------------------------------------------------------
    def _pop_matching_waiters(self, dst: int, pred) -> List[PendingRecv]:
        """Remove and return (seq-ordered) every waiter at ``dst`` whose
        bucket key satisfies ``pred(source, tag)``."""
        buckets = self._waiting.get(dst)
        if not buckets:
            return []
        taken: List[PendingRecv] = []
        n_wild = 0
        for key in [k for k in buckets if pred(k[0], k[1])]:
            q = buckets.pop(key)
            if key[0] == ANY_SOURCE or key[1] == ANY_TAG:
                n_wild += len(q)
            taken.extend(q)
        if n_wild:
            left = self._wild.get(dst, 0) - n_wild
            if left > 0:
                self._wild[dst] = left
            else:
                self._wild.pop(dst, None)
        if not buckets:
            self._waiting.pop(dst, None)
        taken.sort(key=lambda r: r.seq)
        return taken

    def fail_source_waiters(self, dst: int, source: int, exc, at: float) -> None:
        """Fail every blocked receive at ``dst`` naming ``source`` (exact
        match; wildcard receivers stay blocked, as in eager-protocol MPI)."""
        for recv in self._pop_matching_waiters(dst, lambda s, _t: s == source):
            recv.future.set_exception(exc, at=at)

    def on_rank_death(self, rank: int, now: float) -> None:
        """Fail blocked receives that name the dead rank as their source."""
        at = now + self.detection_latency
        for dst in list(self._waiting):
            for recv in self._pop_matching_waiters(dst, lambda s, _t: s == rank):
                recv.future.set_exception(
                    ProcFailedError(f"recv source rank {rank} died",
                                    failed_ranks=(rank,)),
                    at=at)

    def fail_rank_waiters(self, dst: int, exc, at: float) -> None:
        """Fail every blocked receive of rank ``dst`` (used when dst dies is
        handled by task kill; this is used for revocation)."""
        for recv in self._pop_matching_waiters(dst, lambda _s, _t: True):
            recv.future.set_exception(exc, at=at)

    def revoke_all(self, now: float) -> None:
        """Fail every blocked receive: the communicator was revoked."""
        for dst in list(self._waiting):
            for recv in self._pop_matching_waiters(dst, lambda _s, _t: True):
                recv.future.set_exception(
                    RevokedError("communicator revoked"), at=now)

    def drop_waiters_of(self, dst: int) -> None:
        """Forget pending receives of a rank that itself died."""
        self._waiting.pop(dst, None)
        self._wild.pop(dst, None)


class ExchangeOp:
    """Fused multi-receive for one rank's halo-exchange phase.

    Stands in for a :class:`~repro.simkernel.traps.SimFuture` on the board
    (it duck-types ``set_result``/``set_exception``), collecting the
    payloads of several receives while the owning task parks on a *single*
    future — one park/resume per exchange phase instead of one per message.

    Receives are registered **sequentially**: spec ``i+1`` is registered
    from inside spec ``i``'s resolution (which runs at the matched
    message's arrival instant, or immediately on an already-posted match).
    That is exactly the order and timing the unfused ``recv``-after-``recv``
    sequence produces, so every failure behaviour falls out byte-identical:
    a source that dies before its spec is *reached* fails at
    registration-time + detect (via ``register_recv``'s dead-source check),
    a source that dies while its spec is *parked* fails at death + detect
    (via ``on_rank_death``), and a revocation landing mid-exchange fails at
    the next registration instant — when the unfused code would have raised
    from its next ``recv`` call.

    The op completes at ``max(latest receive resolution, floor)`` where
    ``floor`` is the latest send-completion time of the phase — the fused
    equivalent of awaiting the send requests after the receives.
    """

    __slots__ = ("board", "state", "dst", "fut", "specs", "idx", "payloads",
                 "floor", "latest", "active")

    def __init__(self, board: MessageBoard, state, dst: int):
        from ..simkernel.traps import SimFuture  # late: avoid import cycle
        self.board = board
        self.state = state
        self.dst = dst
        self.fut = SimFuture(board.engine)
        self.active = False

    def begin(self, specs, floor: float):
        """Start the phase: ``specs`` is a sequence of ``(source, tag)``
        pairs; ``floor`` is the latest send arrival.  Returns the future
        the caller should await (resolved with the payload list)."""
        if self.active:  # pragma: no cover - comm layer replaces active ops
            raise RuntimeError("ExchangeOp already active")
        self.active = True
        self.specs = specs
        self.idx = 0
        self.payloads = [None] * len(specs)
        self.floor = floor
        self.latest = floor
        self._register_next()
        return self.fut

    def finish(self) -> None:
        """Recycle after a successful await (single consumer by design)."""
        self.active = False
        self.specs = None
        self.payloads = None
        self.fut.recycle()

    # -- board-facing future protocol ----------------------------------
    def _register_next(self) -> None:
        state = self.state
        if state.revoked:
            # the unfused sequence would raise from its next recv call
            self.fut.set_exception(
                RevokedError(f"{state.name} is revoked"),
                at=self.board.engine.now)
            return
        source, tag = self.specs[self.idx]
        self.board.register_recv(self.dst, source, tag, self,
                                 state._dead_ranks)

    def set_result(self, msg: Message, at: float = 0.0) -> None:
        if self.fut._done:  # pragma: no cover - defensive
            return
        self.payloads[self.idx] = msg.payload
        if at > self.latest:
            self.latest = at
        self.idx += 1
        if self.idx == len(self.specs):
            self.fut.set_result(self.payloads, at=self.latest)
        else:
            self._register_next()

    def set_exception(self, exc: BaseException, at: float = 0.0) -> None:
        if self.fut._done:  # pragma: no cover - defensive
            return
        self.fut.set_exception(exc, at=at)
