"""Point-to-point message matching for one communicator.

Sends are *eager/buffered*: the sender charges the alpha–beta injection cost
and completes; the message arrives at ``send_time + cost``.  Receives match
posted messages in (source, tag) FIFO order, honouring ``ANY_SOURCE`` /
``ANY_TAG`` wildcards with deterministic earliest-arrival tie-breaking.

Failure semantics (ULFM fail-stop):

* a receive whose named source is dead, with no matching in-flight message,
  fails with :class:`ProcFailedError` after the detection latency;
* messages already in flight from a rank that subsequently dies are still
  delivered (matching eager-protocol MPI behaviour);
* revoking the communicator fails every pending receive.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .errors import ANY_SOURCE, ANY_TAG, ProcFailedError, RevokedError


@dataclass
class Message:
    src: int
    dst: int
    tag: int
    payload: Any
    arrival: float
    seq: int


@dataclass
class PendingRecv:
    dst: int
    source: int  # may be ANY_SOURCE
    tag: int     # may be ANY_TAG
    future: Any  # SimFuture resolved with the Message
    seq: int


class MessageBoard:
    """Per-communicator mailbox with deterministic matching."""

    def __init__(self, engine, detection_latency: float):
        self.engine = engine
        self.detection_latency = detection_latency
        self._seq = itertools.count()
        #: undelivered messages keyed by destination rank
        self.posted: Dict[int, List[Message]] = {}
        #: blocked receivers keyed by destination rank
        self.waiting: Dict[int, List[PendingRecv]] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _matches(recv: PendingRecv, msg: Message) -> bool:
        return ((recv.source == ANY_SOURCE or recv.source == msg.src) and
                (recv.tag == ANY_TAG or recv.tag == msg.tag))

    def post(self, src: int, dst: int, tag: int, payload: Any, arrival: float) -> None:
        """Deliver/enqueue a message; wakes a matching blocked receiver."""
        msg = Message(src, dst, tag, payload, arrival, next(self._seq))
        queue = self.waiting.get(dst)
        if queue:
            for i, recv in enumerate(queue):
                if self._matches(recv, msg):
                    queue.pop(i)
                    recv.future.set_result(msg, at=arrival)
                    return
        self.posted.setdefault(dst, []).append(msg)

    def register_recv(self, dst: int, source: int, tag: int, future,
                      dead_ranks: frozenset) -> None:
        """Try to match a receive; otherwise block (or fail fast on a dead source)."""
        queue = self.posted.get(dst)
        if queue:
            best: Optional[int] = None
            for i, msg in enumerate(queue):
                fake = PendingRecv(dst, source, tag, None, 0)
                if self._matches(fake, msg):
                    if best is None or (msg.arrival, msg.seq) < (queue[best].arrival, queue[best].seq):
                        best = i
            if best is not None:
                msg = queue.pop(best)
                future.set_result(msg, at=max(msg.arrival, self.engine.now))
                return
        if source != ANY_SOURCE and source in dead_ranks:
            future.set_exception(
                ProcFailedError(f"recv source rank {source} is dead",
                                failed_ranks=(source,)),
                at=self.engine.now + self.detection_latency)
            return
        self.waiting.setdefault(dst, []).append(
            PendingRecv(dst, source, tag, future, next(self._seq)))

    # ------------------------------------------------------------------
    # failure propagation
    # ------------------------------------------------------------------
    def on_rank_death(self, rank: int, now: float) -> None:
        """Fail blocked receives that name the dead rank as their source."""
        for dst, queue in self.waiting.items():
            still = []
            for recv in queue:
                if recv.source == rank:
                    recv.future.set_exception(
                        ProcFailedError(f"recv source rank {rank} died",
                                        failed_ranks=(rank,)),
                        at=now + self.detection_latency)
                else:
                    still.append(recv)
            self.waiting[dst] = still

    def fail_rank_waiters(self, dst: int, exc, at: float) -> None:
        """Fail every blocked receive of rank ``dst`` (used when dst dies is
        handled by task kill; this is used for revocation)."""
        for recv in self.waiting.pop(dst, []):
            recv.future.set_exception(exc, at=at)

    def revoke_all(self, now: float) -> None:
        """Fail every blocked receive: the communicator was revoked."""
        for dst in list(self.waiting):
            for recv in self.waiting.pop(dst):
                recv.future.set_exception(
                    RevokedError("communicator revoked"), at=now)

    def drop_waiters_of(self, dst: int) -> None:
        """Forget pending receives of a rank that itself died."""
        self.waiting.pop(dst, None)
