"""Simulated MPI processes."""

from __future__ import annotations

import itertools
from typing import Optional, Set

_uid_counter = itertools.count()


def _next_uid() -> int:
    return next(_uid_counter)


class Proc:
    """One simulated OS process running one MPI rank program.

    A ``Proc`` is bound to a host slot, owns a kernel task and participates
    in any number of communicators.  Fail-stop death is recorded here and
    observed by peers through the ULFM machinery.
    """

    __slots__ = ("uid", "name", "host", "job", "task", "dead", "death_time",
                 "comm_states", "spawned", "_slot_released")

    def __init__(self, name: str, host, job=None):
        self.uid = _next_uid()
        self.name = name
        self.host = host
        self.job = job
        self.task = None            # kernel Task, set at launch
        self.dead = False
        self.death_time: Optional[float] = None
        #: communicator states this proc belongs to (for death notification)
        self.comm_states: Set = set()
        #: True if this proc was created by spawn_multiple (a "child")
        self.spawned = False
        self._slot_released = False

    def release_slot(self) -> None:
        """Free this process's host slot (exit or kill); idempotent."""
        if not self._slot_released and self.host is not None:
            self.host.occupied -= 1
            self._slot_released = True

    @property
    def alive(self) -> bool:
        return not self.dead

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "dead" if self.dead else "alive"
        return f"Proc({self.name!r}, {status}, host={self.host.name if self.host else None})"
