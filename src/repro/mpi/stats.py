"""Communication statistics: counters the universe keeps while running.

Useful for performance debugging and for the documentation examples — a
cheap, always-on profiler of the simulated MPI traffic.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class CommStats:
    """Aggregate counters over one universe's lifetime."""

    messages: int = 0
    bytes_sent: int = 0
    collectives: Counter = field(default_factory=Counter)
    comms_created: int = 0
    spawns: int = 0
    procs_spawned: int = 0
    kills: int = 0

    def record_message(self, nbytes: int) -> None:
        self.messages += 1
        self.bytes_sent += nbytes

    def record_collective(self, op_name: str) -> None:
        self.collectives[op_name] += 1

    def summary(self) -> str:
        colls = ", ".join(f"{k}:{v}" for k, v in
                          sorted(self.collectives.items()))
        return (f"messages={self.messages} bytes={self.bytes_sent} "
                f"comms={self.comms_created} spawns={self.spawns} "
                f"(+{self.procs_spawned} procs) kills={self.kills} "
                f"collectives[{colls}]")
