"""Communication statistics: counters the universe keeps while running.

Useful for performance debugging and for the documentation examples — a
cheap, always-on profiler of the simulated MPI traffic.

Since the observability layer landed, :class:`CommStats` is a thin facade
over a :class:`~repro.obs.registry.MetricsRegistry`: every counter it
exposes is a registry instrument (``mpi_messages``, ``mpi_bytes_sent``,
``mpi_collectives{op=...}``, ...), so MPI traffic shows up in the same
machine-readable snapshot as the recovery-phase timings.  The historical
attribute API (``stats.messages``, ``stats.collectives["barrier"]``,
``summary()``) is preserved; hot paths keep direct references to the
underlying instruments, so the facade costs nothing per message.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..obs.registry import Counter, MetricsRegistry


class _CollectivesView:
    """Mapping-style view of the ``mpi_collectives`` counter family.

    Behaves like the ``collections.Counter`` it replaced: indexing a
    missing op reads 0, ``[op] += 1`` works (and lands in the registry),
    iteration yields op names.
    """

    __slots__ = ("_registry",)

    def __init__(self, registry: MetricsRegistry):
        self._registry = registry

    def _counters(self) -> Dict[str, Counter]:
        return {dict(c.labels)["op"]: c
                for c in self._registry.counters("mpi_collectives")}

    def __getitem__(self, op: str) -> int:
        return self._registry.counter("mpi_collectives", op=op).value

    def __setitem__(self, op: str, value: int) -> None:
        self._registry.counter("mpi_collectives", op=op).value = value

    def __contains__(self, op: str) -> bool:
        return op in self._counters()

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._counters()))

    def __len__(self) -> int:
        return len(self._counters())

    def items(self):
        return sorted((op, c.value) for op, c in self._counters().items())

    def keys(self):
        return [op for op, _ in self.items()]

    def values(self):
        return [v for _, v in self.items()]

    def total(self) -> int:
        return sum(c.value for c in self._counters().values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_CollectivesView({dict(self.items())!r})"

    def __eq__(self, other) -> bool:
        return dict(self.items()) == dict(other)


class CommStats:
    """Aggregate counters over one universe's lifetime."""

    __slots__ = ("registry", "_messages", "_bytes", "_comms", "_spawns",
                 "_procs_spawned", "_kills", "collectives")

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._messages = self.registry.counter("mpi_messages")
        self._bytes = self.registry.counter("mpi_bytes_sent")
        self._comms = self.registry.counter("mpi_comms_created")
        self._spawns = self.registry.counter("mpi_spawns")
        self._procs_spawned = self.registry.counter("mpi_procs_spawned")
        self._kills = self.registry.counter("mpi_kills")
        self.collectives = _CollectivesView(self.registry)

    # -- hot path ------------------------------------------------------
    def record_message(self, nbytes: int) -> None:
        self._messages.value += 1
        self._bytes.value += nbytes

    def record_collective(self, op_name: str) -> None:
        self.registry.counter("mpi_collectives", op=op_name).value += 1

    # -- attribute facade (reads and ``+=`` both work) -----------------
    @property
    def messages(self) -> int:
        return self._messages.value

    @messages.setter
    def messages(self, value: int) -> None:
        self._messages.value = value

    @property
    def bytes_sent(self) -> int:
        return self._bytes.value

    @bytes_sent.setter
    def bytes_sent(self, value: int) -> None:
        self._bytes.value = value

    @property
    def comms_created(self) -> int:
        return self._comms.value

    @comms_created.setter
    def comms_created(self, value: int) -> None:
        self._comms.value = value

    @property
    def spawns(self) -> int:
        return self._spawns.value

    @spawns.setter
    def spawns(self, value: int) -> None:
        self._spawns.value = value

    @property
    def procs_spawned(self) -> int:
        return self._procs_spawned.value

    @procs_spawned.setter
    def procs_spawned(self, value: int) -> None:
        self._procs_spawned.value = value

    @property
    def kills(self) -> int:
        return self._kills.value

    @kills.setter
    def kills(self, value: int) -> None:
        self._kills.value = value

    # ------------------------------------------------------------------
    def summary(self) -> str:
        colls = ", ".join(f"{k}:{v}" for k, v in self.collectives.items())
        return (f"messages={self.messages} bytes={self.bytes_sent} "
                f"comms={self.comms_created} spawns={self.spawns} "
                f"(+{self.procs_spawned} procs) kills={self.kills} "
                f"collectives[{colls}]")
