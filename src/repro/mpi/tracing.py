"""MPI-level event tracing.

Attach a :class:`Tracer` to a universe to record every message, collective,
kill and spawn with its virtual timestamp — then render a text timeline or
per-operation histogram.  Used for debugging recovery protocols and by the
documentation examples; tracing is off (a no-op stub) by default.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class TraceEvent:
    time: float
    actor: str
    kind: str       #: "send" | "coll" | "kill" | "spawn" | custom
    detail: str

    def __str__(self) -> str:
        return f"[{self.time:12.6f}] {self.actor:>14s} {self.kind:<6s} {self.detail}"


class Tracer:
    """Bounded in-memory MPI event recorder."""

    def __init__(self, max_events: int = 100_000):
        self.events: List[TraceEvent] = []
        self.max_events = max_events
        self.dropped = 0

    def record(self, time: float, actor: str, kind: str, detail: str) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, actor, kind, detail))

    # ------------------------------------------------------------------
    def filter(self, *, kind: Optional[str] = None,
               actor: Optional[str] = None) -> List[TraceEvent]:
        out = self.events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if actor is not None:
            out = [e for e in out if e.actor == actor]
        return out

    def histogram(self) -> Counter:
        """Event counts by (kind, first token of detail)."""
        c: Counter = Counter()
        for e in self.events:
            c[(e.kind, e.detail.split()[0] if e.detail else "")] += 1
        return c

    def timeline(self, limit: int = 50, *, kind: Optional[str] = None
                 ) -> str:
        events = self.filter(kind=kind)[:limit]
        lines = [str(e) for e in events]
        extra = len(self.filter(kind=kind)) - len(events) + self.dropped
        if extra > 0:
            lines.append(f"... ({extra} more)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
