"""MPI-level event tracing.

Attach a :class:`Tracer` to a universe to record every message, collective,
kill and spawn with its virtual timestamp — then render a text timeline or
per-operation histogram.  Used for debugging recovery protocols and by the
documentation examples; tracing is off (a no-op stub) by default.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class TraceEvent:
    time: float
    actor: str
    kind: str       #: "send" | "recv" | "coll" | "kill" | "spawn" | "revoke" | "revoked" | custom
    detail: str

    def __str__(self) -> str:
        return f"[{self.time:12.6f}] {self.actor:>14s} {self.kind:<6s} {self.detail}"

    def to_dict(self) -> dict:
        return {"t": self.time, "actor": self.actor, "kind": self.kind,
                "detail": self.detail}

    @classmethod
    def from_dict(cls, d: dict) -> "TraceEvent":
        return cls(float(d["t"]), d["actor"], d["kind"], d["detail"])


class Tracer:
    """Bounded in-memory MPI event recorder."""

    def __init__(self, max_events: int = 100_000):
        self.events: List[TraceEvent] = []
        self.max_events = max_events
        self.dropped = 0

    def record(self, time: float, actor: str, kind: str, detail: str) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, actor, kind, detail))

    # ------------------------------------------------------------------
    def filter(self, *, kind: Optional[str] = None,
               actor: Optional[str] = None) -> List[TraceEvent]:
        out = self.events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if actor is not None:
            out = [e for e in out if e.actor == actor]
        return out

    def histogram(self) -> Counter:
        """Event counts by (kind, first token of detail).

        When the recorder overflowed, the count of lost events appears
        under the ``("dropped", "")`` key so downstream analyzers can tell
        the trace is incomplete.
        """
        c: Counter = Counter()
        for e in self.events:
            c[(e.kind, e.detail.split()[0] if e.detail else "")] += 1
        if self.dropped:
            c[("dropped", "")] = self.dropped
        return c

    def timeline(self, limit: int = 50, *, kind: Optional[str] = None
                 ) -> str:
        events = self.filter(kind=kind)[:limit]
        lines = [str(e) for e in events]
        extra = len(self.filter(kind=kind)) - len(events)
        if extra > 0:
            lines.append(f"... ({extra} more)")
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # persistence (the ``repro analyze-trace`` CLI input format)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write the trace as JSONL: a header record, then one event per line."""
        with open(path, "w") as fh:
            fh.write(json.dumps({"type": "header", "version": 1,
                                 "max_events": self.max_events,
                                 "dropped": self.dropped}) + "\n")
            for e in self.events:
                fh.write(json.dumps(e.to_dict()) + "\n")

    @classmethod
    def load(cls, path) -> "Tracer":
        with open(path) as fh:
            first = fh.readline()
            if not first.strip():
                return cls()
            head = json.loads(first)
            if head.get("type") == "header":
                tracer = cls(max_events=head.get("max_events", 100_000))
                tracer.dropped = head.get("dropped", 0)
            else:  # headerless file: first line is already an event
                tracer = cls()
                tracer.events.append(TraceEvent.from_dict(head))
            for line in fh:
                if line.strip():
                    tracer.events.append(TraceEvent.from_dict(json.loads(line)))
        return tracer
