"""The simulated MPI universe: job launch, process placement, fault injection.

``Universe`` plays the role of ``mpirun`` plus the runtime: it owns the
engine, the machine model and the hostfile, launches jobs (creating one
coroutine task per rank), services ``spawn_multiple``, and injects fail-stop
process failures (the analogue of the paper's
``kill(getpid(), SIGKILL)`` failure generator).
"""

from __future__ import annotations

import itertools
import os
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..machine import Hostfile, MachineSpec
from ..machine.presets import OPL
from ..obs import Observability
from ..simkernel import Engine, Sleep
from .comm import CommHandle, CommState
from .intercomm import IntercommHandle, IntercommState
from .process import Proc
from .stats import CommStats

_job_ids = itertools.count()


class RankContext:
    """Everything a rank program gets: its world communicator, identity,
    the parent intercommunicator (for spawned processes), virtual-time
    helpers and the machine model."""

    def __init__(self, universe: "Universe", proc: Proc, world_state: CommState,
                 argv: tuple, parent_state: Optional[IntercommState] = None):
        self.universe = universe
        self.proc = proc
        self._world_state = world_state
        self.argv = tuple(argv)
        self._parent_state = parent_state
        self.comm: CommHandle = CommHandle(world_state, proc)

    # -- identity ------------------------------------------------------
    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def machine(self) -> MachineSpec:
        return self.universe.machine

    @property
    def engine(self) -> Engine:
        return self.universe.engine

    def get_parent(self) -> Optional[IntercommHandle]:
        """``MPI_Comm_get_parent``: the intercommunicator to the spawning
        job, or None for processes started by the initial launch."""
        if self._parent_state is None:
            return None
        return IntercommHandle(self._parent_state, self.proc)

    def set_parent_null(self) -> None:
        """Convert this (spawned) process into an ordinary parent — the
        paper's Fig. 3 l.32 assignment of ``MPI_COMM_NULL`` to the parent
        communicator after the child has rejoined."""
        self._parent_state = None

    def wtime(self) -> float:
        """``MPI_Wtime`` — current virtual time."""
        return self.universe.engine.now

    def span(self, phase: str, **labels):
        """Open a recovery-phase span for this rank (context manager).

        Spans accumulate in ``universe.obs`` per actor and label (e.g.
        ``technique``, ``gid``); see :mod:`repro.obs.spans`.
        """
        return self.universe.obs.span(self.proc.name, phase, **labels)

    # -- virtual costs ---------------------------------------------------
    async def compute(self, seconds: float = 0.0, *, flops: float = 0.0):
        """Charge computation to the virtual clock."""
        total = seconds + (self.machine.compute_cost(flops) if flops else 0.0)
        if total > 0:
            await Sleep(total)

    async def disk_write(self, nbytes: int):
        """Charge one checkpoint-style disk write (latency T_I/O + stream)."""
        cost = self.machine.disk_write_cost(nbytes)
        if cost > 0:
            await Sleep(cost)
        return cost

    async def disk_read(self, nbytes: int):
        cost = self.machine.disk_read_cost(nbytes)
        if cost > 0:
            await Sleep(cost)
        return cost


class Job:
    """A set of processes launched together (an ``mpirun`` invocation or one
    ``spawn_multiple`` call)."""

    def __init__(self, name: str, procs: List[Proc], world_state: CommState,
                 entry: Callable, argv: tuple):
        self.name = name
        self.procs = procs
        self.world_state = world_state
        self.entry = entry
        self.argv = argv
        self.contexts: List[RankContext] = []

    def results(self) -> List[Any]:
        """Per-rank coroutine return values (None for dead/unfinished ranks)."""
        return [p.task.result if p.task is not None else None for p in self.procs]

    def __repr__(self) -> str:  # pragma: no cover
        return f"Job({self.name!r}, n={len(self.procs)})"


class Universe:
    """Top-level simulation container."""

    def __init__(self, machine: MachineSpec = OPL, *,
                 hostfile: Optional[Hostfile] = None,
                 engine: Optional[Engine] = None,
                 diagnostics: bool = False,
                 batch: Optional[bool] = None):
        self.machine = machine
        self.engine = engine or Engine()
        self.hostfile = hostfile
        self.jobs: List[Job] = []
        self.all_procs: Dict[int, Proc] = {}
        #: observability bundle: metrics registry + recovery-phase spans
        #: (closing a span also lands in ``tracer`` when one is attached)
        self.obs = Observability(self.engine.stamp, self.trace)
        self.stats = CommStats(self.obs.registry)
        #: optional MPI-level event recorder (see repro.mpi.tracing)
        self.tracer = None
        #: when True, communicators attach per-operation debugging
        #: bookkeeping (future labels and ``waits_for`` annotations).  The
        #: default is False — the deadlock explainer reconstructs wait info
        #: from the message boards and open rendezvous on demand, so plain
        #: runs pay zero per-message overhead.  Tracing bookkeeping is
        #: independently free whenever ``tracer`` is None: call sites check
        #: before building detail strings.
        self.diagnostics = diagnostics
        #: batch-vectorised fast path for failure-free collective rounds
        #: and fused halo exchanges (bit-identical to the event path; see
        #: repro.mpi.batchcoll).  On by default; ``batch=False`` — or the
        #: ``REPRO_BATCH=0`` environment kill switch — forces every
        #: operation through the per-rank event path.
        if batch is None:
            batch = os.environ.get("REPRO_BATCH", "1") != "0"
        self.batch = bool(batch)

    def trace(self, actor: str, kind: str, detail: str) -> None:
        if self.tracer is not None:
            self.tracer.record(self.engine.now, actor, kind, detail)

    # ------------------------------------------------------------------
    # launch & spawn
    # ------------------------------------------------------------------
    def _ensure_hostfile(self, n_ranks: int) -> Hostfile:
        if self.hostfile is None:
            self.hostfile = Hostfile.for_ranks(
                n_ranks, slots=self.machine.cores_per_node)
        return self.hostfile

    def launch(self, n: int, entry: Callable, argv: Sequence = (),
               name: str = "") -> Job:
        """Launch ``n`` ranks running ``entry(ctx)``, placed block-by-slot on
        the hostfile (rank r goes to host r // slots, as the paper assumes)."""
        hostfile = self._ensure_hostfile(n)
        slots = hostfile[0].slots
        name = name or f"job{next(_job_ids)}"
        procs = []
        for r in range(n):
            host = hostfile.host_of_rank(r, slots)
            if host.free_slots <= 0:
                raise RuntimeError(f"no free slot on {host.name} for rank {r}")
            proc = Proc(f"{name}.{r}", host)
            host.occupied += 1
            procs.append(proc)
            self.all_procs[proc.uid] = proc
        world = CommState(self, procs, name=f"{name}.world")
        job = Job(name, procs, world, entry, tuple(argv))
        for proc in procs:
            proc.job = job
            ctx = RankContext(self, proc, world, tuple(argv))
            job.contexts.append(ctx)
            proc.task = self.engine.spawn(entry(ctx), name=proc.name)
            proc.task.meta["proc"] = proc
            proc.task.done_future.add_done_callback(
                lambda _f, p=proc: p.release_slot())
        self.jobs.append(job)
        return job

    def create_spawned_job(self, parent_state: CommState, count: int,
                           entry: Callable, argv: Sequence,
                           host_names: Optional[Sequence[str]],
                           start_at: Optional[float] = None) -> IntercommState:
        """Service one ``spawn_multiple``: place and start ``count`` new
        processes and build the parent/child intercommunicator."""
        hostfile = self._ensure_hostfile(count)
        name = f"spawn{next(_job_ids)}"
        by_name = {h.name: h for h in hostfile}
        procs = []
        for i in range(count):
            # select and reserve one slot at a time so successive first-fit
            # picks see the updated occupancy
            if host_names:
                host = by_name.get(host_names[i])
                if host is None:
                    raise RuntimeError(f"unknown host {host_names[i]!r}")
            else:
                host = hostfile.first_fit()
            if host.free_slots <= 0:
                raise RuntimeError(f"no free slot on {host.name} for spawn")
            proc = Proc(f"{name}.{i}", host)
            proc.spawned = True
            host.occupied += 1
            procs.append(proc)
            self.all_procs[proc.uid] = proc
        child_world = CommState(self, procs, name=f"{name}.world")
        inter = IntercommState(self, parent_state.procs, procs,
                               name=f"{name}.bridge")
        self.stats.spawns += 1
        self.stats.procs_spawned += count
        self.trace(name, "spawn", f"{count} proc(s) for {parent_state.name}")
        job = Job(name, procs, child_world, entry, tuple(argv))
        for proc in procs:
            proc.job = job
            ctx = RankContext(self, proc, child_world, tuple(argv),
                              parent_state=inter)
            job.contexts.append(ctx)
            proc.task = self.engine.spawn(entry(ctx), name=proc.name,
                                          at=start_at)
            proc.task.meta["proc"] = proc
            proc.task.done_future.add_done_callback(
                lambda _f, p=proc: p.release_slot())
        self.jobs.append(job)
        return inter

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def kill_proc(self, proc: Proc, at: Optional[float] = None) -> None:
        """Fail-stop kill of one process (SIGKILL analogue)."""
        if at is None or at <= self.engine.now:
            self._do_kill(proc)
        else:
            self.engine.call_at(at, self._do_kill, proc)

    def kill_rank(self, job_or_comm, rank: int, at: Optional[float] = None) -> None:
        state = job_or_comm.world_state if isinstance(job_or_comm, Job) \
            else getattr(job_or_comm, "state", job_or_comm)
        self.kill_proc(state.procs[rank], at=at)

    def _do_kill(self, proc: Proc) -> None:
        if proc.dead:
            return
        now = self.engine.now
        self.stats.kills += 1
        self.trace(proc.name, "kill", f"fail-stop on {proc.host.name if proc.host else '?'}")
        proc.dead = True
        proc.death_time = now
        proc.release_slot()
        if proc.task is not None:
            self.engine.kill(proc.task)
        for state in list(proc.comm_states):
            state.on_proc_death(proc, now)

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            raise_task_failures: bool = True) -> float:
        return self.engine.run(until=until,
                               raise_task_failures=raise_task_failures)


def run_ranks(n: int, entry: Callable, *, machine: Optional[MachineSpec] = None,
              argv: Sequence = ()) -> List[Any]:
    """Convenience for tests and examples: run ``entry(ctx)`` on ``n`` ranks
    to completion and return the per-rank results."""
    from ..machine.presets import IDEAL
    uni = Universe(machine or IDEAL)
    job = uni.launch(n, entry, argv)
    uni.run()
    return job.results()
