"""Observability: metrics registry, recovery-phase spans, timeline export.

The paper's headline artifacts are *timing breakdowns* of the
fault-handling pipeline; this package is the layer that produces them:

* :class:`MetricsRegistry` — labelled counters/gauges/histograms every
  subsystem reports into (``repro.mpi.stats.CommStats`` is a facade over
  one);
* :class:`SpanRecorder` / :class:`Observability` — per-rank phase timers
  (detect, agree, shrink, spawn, merge, data recovery, ...) accumulated
  per rank and per grid, surfaced as ``RunMetrics.phase_breakdown``;
* :func:`chrome_trace` / :func:`export_timeline` — Chrome ``trace_event``
  export of a recorded run (``python -m repro timeline``), viewable in
  Perfetto;
* :mod:`repro.obs.schema` — validators for the machine-readable outputs
  (CI gates on them).
"""

from .registry import (Counter, DEFAULT_BUCKETS, Gauge, Histogram,
                       MetricsRegistry)
from .schema import (EXPERIMENT_SCHEMA_VERSION, SchemaError,
                     validate_chrome_trace, validate_experiment_doc,
                     validate_phase_breakdown)
from .spans import Observability, PHASES, Span, SpanRecorder
from .timeline import chrome_trace, export_timeline

__all__ = [
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "DEFAULT_BUCKETS",
    "Observability", "SpanRecorder", "Span", "PHASES",
    "chrome_trace", "export_timeline",
    "SchemaError", "EXPERIMENT_SCHEMA_VERSION",
    "validate_phase_breakdown", "validate_experiment_doc",
    "validate_chrome_trace",
]
