"""Labelled metrics registry — counters, gauges and histograms.

The registry is the single store every layer reports into: the MPI
substrate's traffic counters (:class:`repro.mpi.stats.CommStats` is a thin
facade over one), the fault-tolerance pipeline's per-phase timings (via
:mod:`repro.obs.spans`), and anything an experiment harness wants to track.

Design points:

* an *instrument* is identified by ``(name, labels)`` — requesting the same
  pair twice returns the same object, so call sites can cache the handle
  and mutate ``.value`` directly on hot paths (no dict lookup per event);
* labels are plain ``str -> str/int`` pairs, e.g. ``technique="RC"``,
  ``phase="reconstruct"`` — the axes the paper's Figs. 8-11 break down by;
* everything snapshots to plain JSON (:meth:`MetricsRegistry.to_dict`),
  the format the ``--json`` experiment outputs embed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value.  ``value`` is public: hot paths may
    cache the instrument and do ``c.value += n`` directly."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def to_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels),
                "value": self.value}


class Gauge:
    """Point-in-time value (may go up or down)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount

    def to_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels),
                "value": self.value}


#: default histogram buckets — virtual seconds, log-spaced to cover both
#: Raijin-class microsecond ops and OPL-class minute-long spawns
DEFAULT_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0,
                   1000.0)


class Histogram:
    """Cumulative-bucket histogram plus running sum/min/max.

    Buckets follow the Prometheus convention: ``bucket_counts[i]`` counts
    observations ``<= buckets[i]``, with an implicit +Inf bucket equal to
    ``count``.
    """

    __slots__ = ("name", "labels", "buckets", "bucket_counts", "count",
                 "sum", "min", "max")

    def __init__(self, name: str, labels: LabelKey,
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                self.bucket_counts[i] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels),
                "count": self.count, "sum": self.sum,
                "min": self.min, "max": self.max,
                "buckets": {str(e): c for e, c in
                            zip(self.buckets, self.bucket_counts)}}


class MetricsRegistry:
    """Store of labelled instruments, keyed ``(name, sorted labels)``."""

    def __init__(self):
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(name, key[1])
        return inst

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(name, key[1])
        return inst

    def histogram(self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(name, key[1], buckets)
        return inst

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def counters(self, name: Optional[str] = None) -> List[Counter]:
        return [c for (n, _), c in sorted(self._counters.items())
                if name is None or n == name]

    def histograms(self, name: Optional[str] = None) -> List[Histogram]:
        return [h for (n, _), h in sorted(self._histograms.items())
                if name is None or n == name]

    def counter_total(self, name: str) -> int:
        """Sum of one counter family across every label combination."""
        return sum(c.value for c in self.counters(name))

    def to_dict(self) -> dict:
        return {
            "counters": [c.to_dict() for c in self.counters()],
            "gauges": [g.to_dict() for _, g in sorted(self._gauges.items())],
            "histograms": [h.to_dict() for h in self.histograms()],
        }
