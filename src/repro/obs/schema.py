"""Schema validation for the machine-readable observability outputs.

CI runs an instrumented experiment, exports a timeline, and feeds both
through these validators (``scripts/validate_obs.py``) — a schema break in
``--json`` output or the Chrome trace fails the build rather than the
next person's plotting script.

All validators raise :class:`SchemaError` with a path-ish message on the
first problem and return the document unchanged on success.
"""

from __future__ import annotations

from .spans import PHASES


class SchemaError(ValueError):
    """A document does not match the published observability schema."""


#: bump when the --json experiment document layout changes incompatibly
EXPERIMENT_SCHEMA_VERSION = 1


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise SchemaError(msg)


def validate_phase_breakdown(d, where: str = "phases") -> dict:
    """A phase breakdown is ``{phase name: non-negative seconds}``."""
    _require(isinstance(d, dict), f"{where}: expected an object, got "
                                  f"{type(d).__name__}")
    for phase, dur in d.items():
        _require(phase in PHASES,
                 f"{where}: unknown phase {phase!r} (known: {PHASES})")
        _require(isinstance(dur, (int, float)) and not isinstance(dur, bool),
                 f"{where}.{phase}: expected a number, got {dur!r}")
        _require(dur >= 0.0, f"{where}.{phase}: negative duration {dur}")
    return d


def validate_experiment_doc(doc) -> dict:
    """The ``--json`` output of every ``experiments/fig*.py`` / ``table1.py``."""
    _require(isinstance(doc, dict), "document: expected an object")
    for key in ("experiment", "schema_version", "points"):
        _require(key in doc, f"document: missing key {key!r}")
    _require(doc["schema_version"] == EXPERIMENT_SCHEMA_VERSION,
             f"document: schema_version {doc['schema_version']!r} != "
             f"{EXPERIMENT_SCHEMA_VERSION}")
    _require(isinstance(doc["experiment"], str) and doc["experiment"],
             "document: experiment must be a non-empty string")
    points = doc["points"]
    _require(isinstance(points, list) and points,
             "document: points must be a non-empty list")
    for i, pt in enumerate(points):
        _require(isinstance(pt, dict), f"points[{i}]: expected an object")
        if "phases" in pt:
            validate_phase_breakdown(pt["phases"], f"points[{i}].phases")
    return doc


def validate_chrome_trace(doc) -> dict:
    """Minimal structural check of a Chrome ``trace_event`` document."""
    _require(isinstance(doc, dict), "trace: expected an object")
    _require("traceEvents" in doc, "trace: missing traceEvents")
    events = doc["traceEvents"]
    _require(isinstance(events, list), "trace: traceEvents must be a list")
    seen_complete = False
    for i, ev in enumerate(events):
        _require(isinstance(ev, dict), f"traceEvents[{i}]: expected object")
        for key in ("name", "ph", "pid"):
            _require(key in ev, f"traceEvents[{i}]: missing key {key!r}")
        ph = ev["ph"]
        _require(ph in ("X", "i", "M", "B", "E"),
                 f"traceEvents[{i}]: unknown phase type {ph!r}")
        if ph in ("X", "i"):
            _require("ts" in ev and isinstance(ev["ts"], (int, float)),
                     f"traceEvents[{i}]: missing numeric ts")
        if ph == "X":
            seen_complete = True
            _require("dur" in ev and ev["dur"] >= 0,
                     f"traceEvents[{i}]: complete event needs dur >= 0")
    _require(seen_complete,
             "trace: no complete ('X') phase spans — was the run "
             "instrumented?")
    return doc
