"""Recovery-phase spans — timed intervals over the fault-handling pipeline.

A *span* is one rank's traversal of one phase: opened when the phase
starts (e.g. at failure detection), closed when it completes, stamped with
virtual start/end times and an engine sequence number so spans sharing a
virtual timestamp still have a deterministic order.  The span set is the
machine-readable form of the paper's timing breakdowns (Figs. 8-11,
Table I): detection, communicator reconstruction (ack/agree, revoke+shrink,
spawn+merge+split) and per-technique data recovery.

Spans accumulate into the owning :class:`~repro.obs.registry.MetricsRegistry`
(histogram ``phase_seconds`` labelled by phase/technique) and, when a
:class:`~repro.mpi.tracing.Tracer` is attached, also land in the event
stream (kind ``span``) so ``python -m repro timeline`` can render them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .registry import MetricsRegistry

#: canonical phase names, in pipeline order (the timeline exporter and the
#: experiment JSON schema validate against this list)
PHASES = (
    "solve",             # failure-free stepping
    "detect",            # failed-process list creation (Fig. 8a)
    "agree",             # OMPI_Comm_agree round (Table I)
    "shrink",            # revoke + OMPI_Comm_shrink (Table I)
    "spawn",             # MPI_Comm_spawn_multiple (Table I)
    "merge",             # MPI_Intercomm_merge + re-order split (Table I)
    "reconstruct",       # whole Fig. 3/5 repair (Fig. 8b)
    "checkpoint_write",  # CR periodic writes
    "checkpoint_read",   # CR restore reads
    "recompute",         # CR lost-step recomputation
    "recovery",          # technique data-recovery window (Fig. 9a)
    "combine",           # gather-scatter combination
    "redistribute",      # shrink-in-place: survivor re-decomposition + migration
    "rebuild",           # non-collective repair of one sub-grid communicator
)


@dataclass(frozen=True)
class Span:
    """One closed phase interval on one rank."""

    actor: str                 #: process name, e.g. ``job0.5``
    phase: str
    t_start: float
    t_end: float
    seq: int = 0               #: engine stamp — deterministic tie-break
    labels: Dict[str, str] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        return {"actor": self.actor, "phase": self.phase,
                "t_start": self.t_start, "t_end": self.t_end,
                "seq": self.seq, "labels": dict(self.labels)}

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        return cls(d["actor"], d["phase"], float(d["t_start"]),
                   float(d["t_end"]), int(d.get("seq", 0)),
                   dict(d.get("labels", {})))


class _OpenSpan:
    """Context manager returned by :meth:`SpanRecorder.span`."""

    __slots__ = ("recorder", "actor", "phase", "labels", "t_start", "seq")

    def __init__(self, recorder: "SpanRecorder", actor: str, phase: str,
                 labels: Dict[str, str]):
        self.recorder = recorder
        self.actor = actor
        self.phase = phase
        self.labels = labels

    def __enter__(self) -> "_OpenSpan":
        self.t_start, self.seq = self.recorder.stamp()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # close even on error: a phase aborted by a further failure still
        # consumed its time (the paper's retried repairs accumulate too)
        self.recorder.close(self)
        return None


class SpanRecorder:
    """Collects spans; aggregates per phase / per rank / per label.

    ``stamp`` is a callable returning a monotone ``(virtual_time, seq)``
    pair — normally :meth:`repro.simkernel.Engine.stamp`.
    """

    def __init__(self, stamp: Callable[[], tuple],
                 registry: Optional[MetricsRegistry] = None,
                 trace_sink: Optional[Callable[[str, str, str], None]] = None,
                 max_spans: int = 100_000):
        self.stamp = stamp
        self.registry = registry if registry is not None else MetricsRegistry()
        #: ``trace_sink(actor, kind, detail)`` — normally ``Universe.trace``
        self.trace_sink = trace_sink
        self.spans: List[Span] = []
        self.max_spans = max_spans
        self.dropped = 0

    # ------------------------------------------------------------------
    def span(self, actor: str, phase: str, **labels) -> _OpenSpan:
        """Open a phase span; use as a context manager."""
        return _OpenSpan(self, actor, phase,
                         {k: str(v) for k, v in labels.items()})

    def close(self, open_span: _OpenSpan) -> Optional[Span]:
        t_end, _ = self.stamp()
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return None
        s = Span(open_span.actor, open_span.phase, open_span.t_start, t_end,
                 open_span.seq, open_span.labels)
        self.spans.append(s)
        self.registry.histogram(
            "phase_seconds", phase=s.phase,
            technique=s.labels.get("technique", "")).observe(s.duration)
        if self.trace_sink is not None:
            extra = "".join(f" {k}={v}" for k, v in sorted(s.labels.items()))
            self.trace_sink(
                s.actor, "span",
                f"{s.phase} start={s.t_start:.9f} dur={s.duration:.9f}"
                f"{extra}")
        return s

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def phase_totals(self, reduce: str = "max") -> Dict[str, float]:
        """Per-phase time, reduced across actors.

        ``reduce="max"`` (default) gives the wall-clock view: ranks run a
        phase concurrently, so the slowest rank's accumulated time is the
        run's cost — the same convention the paper's figures use.
        ``reduce="sum"`` gives total process-time (the Fig. 9b currency).
        """
        if reduce not in ("max", "sum"):
            raise ValueError(f"reduce must be 'max' or 'sum', got {reduce!r}")
        per_actor = self.by_actor()
        totals: Dict[str, float] = {}
        for phases in per_actor.values():
            for phase, dur in phases.items():
                if reduce == "sum":
                    totals[phase] = totals.get(phase, 0.0) + dur
                else:
                    totals[phase] = max(totals.get(phase, 0.0), dur)
        return totals

    def by_actor(self) -> Dict[str, Dict[str, float]]:
        """actor -> phase -> accumulated seconds."""
        out: Dict[str, Dict[str, float]] = {}
        for s in self.spans:
            out.setdefault(s.actor, {})
            out[s.actor][s.phase] = \
                out[s.actor].get(s.phase, 0.0) + s.duration
        return out

    def by_label(self, key: str) -> Dict[str, Dict[str, float]]:
        """label value -> phase -> accumulated seconds (spans lacking the
        label are skipped); e.g. ``by_label("gid")`` for per-grid totals."""
        out: Dict[str, Dict[str, float]] = {}
        for s in self.spans:
            val = s.labels.get(key)
            if val is None:
                continue
            out.setdefault(val, {})
            out[val][s.phase] = out[val].get(s.phase, 0.0) + s.duration
        return out

    def to_dicts(self) -> List[dict]:
        return [s.to_dict() for s in self.spans]

    def __len__(self) -> int:
        return len(self.spans)


class Observability:
    """Bundle of one simulation's registry + span recorder.

    Owned by :class:`repro.mpi.universe.Universe`; ranks reach it through
    ``ctx.span(...)`` / ``ctx.universe.obs``.
    """

    def __init__(self, stamp: Callable[[], tuple],
                 trace_sink: Optional[Callable[[str, str, str], None]] = None):
        self.registry = MetricsRegistry()
        self.spans = SpanRecorder(stamp, self.registry, trace_sink)

    def span(self, actor: str, phase: str, **labels) -> _OpenSpan:
        return self.spans.span(actor, phase, **labels)

    def phase_totals(self, reduce: str = "max") -> Dict[str, float]:
        return self.spans.phase_totals(reduce)

    def to_dict(self) -> dict:
        return {"metrics": self.registry.to_dict(),
                "spans": self.spans.to_dicts()}
