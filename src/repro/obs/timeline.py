"""Per-rank timeline export — Chrome ``trace_event`` JSON.

Converts a recorded :class:`~repro.mpi.tracing.Tracer` stream (the JSONL
written by ``python -m repro run --trace FILE``), including the recovery
phase spans :mod:`repro.obs.spans` injects into it, into the Chrome
tracing format::

    python -m repro timeline trace.jsonl -o timeline.json

The output loads in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``: one row per simulated process, phase spans as
duration bars, point events (sends, collectives, kills, spawns, revokes)
as instants — the fault-handling pipeline laid out exactly as the paper's
Fig. 8/9 phases.

Virtual seconds map to trace microseconds (``ts = t * 1e6``).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from .spans import Span

#: ts/dur unit conversion: virtual seconds -> trace microseconds
US_PER_SECOND = 1e6


def _parse_span_detail(detail: str) -> Optional[dict]:
    """Parse a ``span`` event detail: ``PHASE start=T dur=D [k=v ...]``."""
    tokens = detail.split()
    if not tokens:
        return None
    out = {"phase": tokens[0], "labels": {}}
    for tok in tokens[1:]:
        if "=" not in tok:
            continue
        k, v = tok.split("=", 1)
        if k in ("start", "dur"):
            try:
                out[k] = float(v)
            except ValueError:
                return None
        else:
            out["labels"][k] = v
    if "start" not in out or "dur" not in out:
        return None
    return out


def chrome_trace(events: Iterable = (), spans: Iterable[Span] = (),
                 *, pid: int = 0) -> dict:
    """Build a Chrome ``trace_event`` document.

    ``events`` are :class:`~repro.mpi.tracing.TraceEvent` records (span
    events are recognised by ``kind == "span"`` and rendered as duration
    bars); ``spans`` are live :class:`Span` objects (e.g. straight from a
    :class:`~repro.obs.spans.SpanRecorder`), for callers that never went
    through a trace file.
    """
    trace_events: List[dict] = []
    tids: Dict[str, int] = {}

    def tid_of(actor: str) -> int:
        tid = tids.get(actor)
        if tid is None:
            tid = tids[actor] = len(tids)
        return tid

    for e in events:
        tid = tid_of(e.actor)
        if e.kind == "span":
            parsed = _parse_span_detail(e.detail)
            if parsed is not None:
                trace_events.append({
                    "name": parsed["phase"], "cat": "phase", "ph": "X",
                    "pid": pid, "tid": tid,
                    "ts": parsed["start"] * US_PER_SECOND,
                    "dur": parsed["dur"] * US_PER_SECOND,
                    "args": parsed["labels"],
                })
                continue
            # fall through: a malformed span renders as an instant so the
            # event is still visible rather than silently dropped
        trace_events.append({
            "name": e.kind, "cat": "mpi", "ph": "i", "s": "t",
            "pid": pid, "tid": tid, "ts": e.time * US_PER_SECOND,
            "args": {"detail": e.detail},
        })

    for s in spans:
        trace_events.append({
            "name": s.phase, "cat": "phase", "ph": "X",
            "pid": pid, "tid": tid_of(s.actor),
            "ts": s.t_start * US_PER_SECOND,
            "dur": s.duration * US_PER_SECOND,
            "args": dict(s.labels),
        })

    meta: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid,
        "args": {"name": "repro simulation"},
    }]
    for actor in sorted(tids, key=tids.get):
        meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                     "tid": tids[actor], "args": {"name": actor}})
        meta.append({"name": "thread_sort_index", "ph": "M", "pid": pid,
                     "tid": tids[actor], "args": {"sort_index": tids[actor]}})

    return {"traceEvents": meta + trace_events, "displayTimeUnit": "ms"}


def export_timeline(trace_path, out_path, *, spans: Iterable[Span] = ()) -> dict:
    """Load a Tracer JSONL file and write the Chrome trace next to it.

    Returns the document (callers may want event counts).
    """
    from ..mpi.tracing import Tracer
    tracer = Tracer.load(trace_path)
    doc = chrome_trace(tracer.events, spans)
    with open(out_path, "w") as fh:
        json.dump(doc, fh)
    return doc
