"""2D advection PDE solver: serial reference and domain-decomposed MPI version."""

from .advection import (AdvectionProblem, DiffusionProblem, gaussian_hump,
                        sinusoid)
from .decomposition import SlabDecomposition, choose_axis
from .lax_wendroff import (FLOPS_PER_POINT, SerialAdvectionSolver,
                           courant_numbers, lw_step_interior,
                           lw_step_periodic, nodal_view, periodic_from_initial,
                           periodic_from_nodal)
from .norms import l1, l2, linf
from .parallel_solver import DistributedAdvectionSolver
from .parallel_solver2d import Distributed2DAdvectionSolver, choose_dims
from .verification import (convergence_study, observed_orders,
                           richardson_error_estimate)

__all__ = [
    "AdvectionProblem", "DiffusionProblem", "sinusoid", "gaussian_hump",
    "SerialAdvectionSolver", "DistributedAdvectionSolver",
    "Distributed2DAdvectionSolver", "choose_dims",
    "SlabDecomposition", "choose_axis",
    "convergence_study", "observed_orders", "richardson_error_estimate",
    "lw_step_periodic", "lw_step_interior", "nodal_view",
    "periodic_from_nodal", "periodic_from_initial", "courant_numbers",
    "FLOPS_PER_POINT",
    "l1", "l2", "linf",
]
