"""The model problem: 2D scalar advection with a known analytic solution.

The paper solves the constant-coefficient scalar advection equation

.. math:: u_t + a\\,u_x + b\\,u_y = 0

on the unit square with periodic boundaries, so the exact solution is the
initial condition transported by ``(a, b) t`` — which is what makes the
accuracy study of Fig. 10 possible (error = combined solution vs the
analytic solution computed from the initial conditions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np


def sinusoid(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Default initial condition: a smooth periodic product of sines."""
    return np.sin(2.0 * np.pi * x) * np.sin(2.0 * np.pi * y)


def gaussian_hump(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """A periodised Gaussian hump (sharper features than the sinusoid)."""
    out = np.zeros(np.broadcast(x, y).shape, dtype=float)
    for sx in (-1.0, 0.0, 1.0):
        for sy in (-1.0, 0.0, 1.0):
            out += np.exp(-(((x - 0.5 + sx) ** 2 + (y - 0.5 + sy) ** 2) / 0.01))
    return out


@dataclass(frozen=True)
class AdvectionProblem:
    """Problem definition: velocity, initial condition, domain [0,1]^2.

    Implements the generic problem interface the solvers consume:
    ``initial`` / ``exact`` / ``stable_dt`` plus the stencil kernels
    ``step_periodic`` (whole array, wrap-around) and ``step_interior``
    (halo-padded block).  The scheme is 2D Lax–Wendroff.
    """

    velocity: Tuple[float, float] = (1.0, 0.5)
    initial: Callable[[np.ndarray, np.ndarray], np.ndarray] = sinusoid

    def initial_on(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Initial condition sampled on the tensor grid ``xs × ys``."""
        return self.initial(xs[:, None], ys[None, :])

    def exact(self, xs: np.ndarray, ys: np.ndarray, t: float) -> np.ndarray:
        """Analytic solution at time ``t`` on the tensor grid ``xs × ys``."""
        a, b = self.velocity
        x = np.mod(xs - a * t, 1.0)
        y = np.mod(ys - b * t, 1.0)
        return self.initial(x[:, None], y[None, :])

    def stable_dt(self, max_level: int, cfl: float = 0.4) -> float:
        """A timestep stable on the *finest* grid in the scheme.

        The paper uses one fixed dt across all sub-grids for stability, set
        by the most refined axis (``2^max_level`` cells).
        """
        a, b = self.velocity
        h = 1.0 / (1 << max_level)
        speed = abs(a) + abs(b)
        if speed == 0.0:
            return cfl * h
        return cfl * h / speed

    # -- stencil kernels (generic solver interface) ----------------------
    #: solvers check this before passing out/work/scratch buffers; problem
    #: objects without the allocation-free kernel variants omit it
    inplace_kernels = True

    def _courant(self, level_x: int, level_y: int, dt: float):
        a, b = self.velocity
        return a * dt * (1 << level_x), b * dt * (1 << level_y)

    def step_periodic(self, u: np.ndarray, level_x: int, level_y: int,
                      dt: float, *, out: np.ndarray = None,
                      work: np.ndarray = None,
                      scratch: np.ndarray = None) -> np.ndarray:
        """One periodic step; bit-identical with or without buffers.

        When ``out``/``work``/``scratch`` are given (shapes ``u.shape``,
        ``u.shape + 2`` and ``u.shape``), the step allocates nothing and
        writes the result into ``out``.
        """
        cx, cy = self._courant(level_x, level_y, dt)
        if out is None:
            from .lax_wendroff import lw_step_periodic
            return lw_step_periodic(u, cx, cy)
        from .lax_wendroff import lw_step_periodic_into
        return lw_step_periodic_into(u, cx, cy, out, work, scratch)

    def step_interior(self, w: np.ndarray, level_x: int, level_y: int,
                      dt: float, transposed: bool = False, *,
                      out: np.ndarray = None,
                      scratch: np.ndarray = None) -> np.ndarray:
        """Stencil update of a halo-padded block.

        ``transposed=True`` means the block's axis 0 is the physical y
        axis (the slab solver decomposing along y presents its data
        transposed), so the two Courant numbers swap roles.  With
        ``out``/``scratch`` (interior-shaped) the update is allocation-free
        and bit-identical to the expression kernel.
        """
        cx, cy = self._courant(level_x, level_y, dt)
        if transposed:
            cx, cy = cy, cx
        if out is None:
            from .lax_wendroff import lw_step_interior
            return lw_step_interior(w, cx, cy)
        from .lax_wendroff import lw_step_interior_into
        return lw_step_interior_into(w, cx, cy, out, scratch)


@dataclass(frozen=True)
class DiffusionProblem:
    """2D heat equation ``u_t = kappa (u_xx + u_yy)`` on [0,1]^2, periodic.

    With the product-of-sines initial condition the exact solution is a
    decaying mode, so accuracy experiments work unchanged.  The scheme is
    explicit FTCS (first order in time, second in space) — a second,
    genuinely different PDE exercising the same solver / combination /
    fault-recovery machinery (the combination technique is not specific to
    advection, and neither is this library).
    """

    kappa: float = 0.05
    kx: int = 1
    ky: int = 1

    def initial(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.sin(2 * np.pi * self.kx * x) * \
            np.sin(2 * np.pi * self.ky * y)

    def initial_on(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        return self.initial(xs[:, None], ys[None, :])

    def exact(self, xs: np.ndarray, ys: np.ndarray, t: float) -> np.ndarray:
        decay = np.exp(-self.kappa * (2 * np.pi) ** 2 *
                       (self.kx ** 2 + self.ky ** 2) * t)
        return decay * self.initial(xs[:, None], ys[None, :])

    def stable_dt(self, max_level: int, cfl: float = 0.4) -> float:
        """FTCS stability: ``kappa dt (1/dx^2 + 1/dy^2) <= 1/2``; sized for
        the finest (isotropic) grid, scaled by the safety factor ``cfl``."""
        h = 1.0 / (1 << max_level)
        return cfl * 0.25 * h * h / self.kappa

    inplace_kernels = True

    def _fourier(self, level_x: int, level_y: int, dt: float):
        rx = self.kappa * dt * float(1 << level_x) ** 2
        ry = self.kappa * dt * float(1 << level_y) ** 2
        return rx, ry

    @staticmethod
    def _ftcs_into(w: np.ndarray, rx: float, ry: float,
                   out: np.ndarray, scratch: np.ndarray) -> np.ndarray:
        """Allocation-free FTCS update of the interior of ``w``; same
        left-to-right association as the expression form, so bit-identical."""
        u = w[1:-1, 1:-1]
        t = scratch
        np.multiply(2.0, u, out=t)
        np.subtract(w[2:, 1:-1], t, out=t)
        t += w[:-2, 1:-1]
        t *= rx
        np.add(u, t, out=out)
        np.multiply(2.0, u, out=t)
        np.subtract(w[1:-1, 2:], t, out=t)
        t += w[1:-1, :-2]
        t *= ry
        out += t
        return out

    def step_periodic(self, u: np.ndarray, level_x: int, level_y: int,
                      dt: float, *, out: np.ndarray = None,
                      work: np.ndarray = None,
                      scratch: np.ndarray = None) -> np.ndarray:
        rx, ry = self._fourier(level_x, level_y, dt)
        if out is None:
            return (u
                    + rx * (np.roll(u, -1, 0) - 2.0 * u + np.roll(u, 1, 0))
                    + ry * (np.roll(u, -1, 1) - 2.0 * u + np.roll(u, 1, 1)))
        from .lax_wendroff import fill_periodic_halo
        fill_periodic_halo(u, work)
        return self._ftcs_into(work, rx, ry, out, scratch)

    def step_interior(self, w: np.ndarray, level_x: int, level_y: int,
                      dt: float, transposed: bool = False, *,
                      out: np.ndarray = None,
                      scratch: np.ndarray = None) -> np.ndarray:
        rx, ry = self._fourier(level_x, level_y, dt)
        if transposed:
            rx, ry = ry, rx
        if out is None:
            u = w[1:-1, 1:-1]
            return (u
                    + rx * (w[2:, 1:-1] - 2.0 * u + w[:-2, 1:-1])
                    + ry * (w[1:-1, 2:] - 2.0 * u + w[1:-1, :-2]))
        return self._ftcs_into(w, rx, ry, out, scratch)
