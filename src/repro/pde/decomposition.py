"""1D (slab) domain decomposition with periodic neighbours.

Each sub-grid's process group decomposes its array along the axis with the
most points; the other axis stays local, so the Lax–Wendroff corner
couplings wrap locally and halo exchange needs only two messages per step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class SlabDecomposition:
    """Balanced contiguous split of ``n_points`` (periodic) into ``n_parts``."""

    n_points: int
    n_parts: int
    axis: int

    def __post_init__(self):
        if self.n_parts < 1:
            raise ValueError("need at least one part")
        if self.n_points < self.n_parts:
            raise ValueError(
                f"cannot split {self.n_points} points into {self.n_parts} slabs")

    def bounds(self, part: int) -> Tuple[int, int]:
        """Half-open [start, stop) owned by ``part``."""
        if not (0 <= part < self.n_parts):
            raise IndexError(f"part {part} out of range")
        base, rem = divmod(self.n_points, self.n_parts)
        start = part * base + min(part, rem)
        stop = start + base + (1 if part < rem else 0)
        return start, stop

    def sizes(self) -> List[int]:
        return [b - a for a, b in (self.bounds(p) for p in range(self.n_parts))]

    def owner_of(self, index: int) -> int:
        base, rem = divmod(self.n_points, self.n_parts)
        big = (base + 1) * rem  # points covered by the rem larger parts
        if index < big:
            return index // (base + 1)
        return rem + (index - big) // base if base else rem

    def neighbours(self, part: int) -> Tuple[int, int]:
        """(previous, next) part in the periodic direction."""
        return ((part - 1) % self.n_parts, (part + 1) % self.n_parts)


def choose_axis(level_x: int, level_y: int) -> int:
    """Decompose along the axis with more points (ties -> x)."""
    return 0 if level_x >= level_y else 1


def rebalance(decomp: SlabDecomposition, n_parts: int) -> SlabDecomposition:
    """The same domain re-split over a different part count.

    The shrink-in-place recovery mode re-decomposes a grid over its
    surviving processes; the balanced contiguous rule is what makes the
    result independent of *which* ranks died."""
    return SlabDecomposition(decomp.n_points, n_parts, decomp.axis)


def migration_plan(old: SlabDecomposition,
                   new: SlabDecomposition) -> List[List[Tuple[int, int, int]]]:
    """Which old slabs each new part must read to assemble its slab.

    Returns, for each new part, the list of ``(old_part, start, stop)``
    half-open global index intervals covering the new part's bounds, in
    ascending order.  Used by the shrink-in-place checkpoint restore: each
    surviving rank reads exactly the overlapping regions of the old ranks'
    checkpoints, so the migration is fully distributed.
    """
    if old.n_points != new.n_points or old.axis != new.axis:
        raise ValueError(
            f"cannot migrate between decompositions of different domains "
            f"({old.n_points}@axis{old.axis} vs {new.n_points}@axis{new.axis})")
    plan: List[List[Tuple[int, int, int]]] = []
    for p in range(new.n_parts):
        lo, hi = new.bounds(p)
        pieces: List[Tuple[int, int, int]] = []
        for q in range(old.owner_of(lo), old.owner_of(hi - 1) + 1):
            a, b = old.bounds(q)
            s, e = max(a, lo), min(b, hi)
            if s < e:
                pieces.append((q, s, e))
        plan.append(pieces)
    return plan
