"""Vectorised 2D Lax–Wendroff stepper for constant-coefficient advection.

The scheme is second order in space and time:

.. math::

    u^{n+1} = u - \\tfrac{c_x}{2}\\delta_x u - \\tfrac{c_y}{2}\\delta_y u
            + \\tfrac{c_x^2}{2}\\delta_x^2 u + \\tfrac{c_y^2}{2}\\delta_y^2 u
            + \\tfrac{c_x c_y}{4}\\delta_{xy} u

with Courant numbers :math:`c_x = a\\,\\Delta t/\\Delta x`,
:math:`c_y = b\\,\\Delta t/\\Delta y`.  Periodic arrays are stored *without*
the duplicated right/top boundary (shape ``2^i × 2^j``); ``nodal_view``
re-attaches it for the combination technique, whose nodal grids are
``(2^i+1) × (2^j+1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: flop estimate per grid point per step, used by the virtual-time model
FLOPS_PER_POINT = 24.0


def periodic_from_initial(problem, level_x: int, level_y: int) -> np.ndarray:
    """Initial condition as a periodic array of shape ``(2^i, 2^j)``."""
    nx, ny = 1 << level_x, 1 << level_y
    xs = np.arange(nx) / nx
    ys = np.arange(ny) / ny
    return problem.initial(xs[:, None], ys[None, :])


def nodal_view(u: np.ndarray) -> np.ndarray:
    """Append the wrapped boundary: ``(nx, ny)`` -> ``(nx+1, ny+1)``."""
    out = np.empty((u.shape[0] + 1, u.shape[1] + 1), dtype=u.dtype)
    out[:-1, :-1] = u
    out[-1, :-1] = u[0, :]
    out[:-1, -1] = u[:, 0]
    out[-1, -1] = u[0, 0]
    return out


def periodic_from_nodal(nodal: np.ndarray) -> np.ndarray:
    """Inverse of :func:`nodal_view` (drops the duplicated boundary)."""
    return np.ascontiguousarray(nodal[:-1, :-1])


def courant_numbers(velocity: Tuple[float, float], level_x: int, level_y: int,
                    dt: float) -> Tuple[float, float]:
    a, b = velocity
    return a * dt * (1 << level_x), b * dt * (1 << level_y)


def lw_step_periodic(u: np.ndarray, cx: float, cy: float) -> np.ndarray:
    """One Lax–Wendroff step on a fully periodic array (no halos)."""
    uxp = np.roll(u, -1, axis=0)
    uxm = np.roll(u, 1, axis=0)
    uyp = np.roll(u, -1, axis=1)
    uym = np.roll(u, 1, axis=1)
    uxpyp = np.roll(uxp, -1, axis=1)
    uxpym = np.roll(uxp, 1, axis=1)
    uxmyp = np.roll(uxm, -1, axis=1)
    uxmym = np.roll(uxm, 1, axis=1)
    return (u
            - 0.5 * cx * (uxp - uxm)
            - 0.5 * cy * (uyp - uym)
            + 0.5 * cx * cx * (uxp - 2.0 * u + uxm)
            + 0.5 * cy * cy * (uyp - 2.0 * u + uym)
            + 0.25 * cx * cy * (uxpyp - uxpym - uxmyp + uxmym))


def lw_step_interior(w: np.ndarray, cx: float, cy: float) -> np.ndarray:
    """One step on the interior of a halo-padded block ``w``.

    ``w`` has one ghost layer on every side (already exchanged); the result
    has shape ``w.shape - 2`` and is the update of ``w[1:-1, 1:-1]``.
    """
    u = w[1:-1, 1:-1]
    uxp = w[2:, 1:-1]
    uxm = w[:-2, 1:-1]
    uyp = w[1:-1, 2:]
    uym = w[1:-1, :-2]
    uxpyp = w[2:, 2:]
    uxpym = w[2:, :-2]
    uxmyp = w[:-2, 2:]
    uxmym = w[:-2, :-2]
    return (u
            - 0.5 * cx * (uxp - uxm)
            - 0.5 * cy * (uyp - uym)
            + 0.5 * cx * cx * (uxp - 2.0 * u + uxm)
            + 0.5 * cy * cy * (uyp - 2.0 * u + uym)
            + 0.25 * cx * cy * (uxpyp - uxpym - uxmyp + uxmym))


# ----------------------------------------------------------------------
# allocation-free kernel variants
#
# The expression kernels above allocate ~10 temporaries per step (8 of them
# from np.roll in the periodic case).  The ``*_into`` variants below write
# into caller-owned buffers instead, so a time loop allocates nothing.
# They are *bit-identical* to the expression kernels: every elementwise
# operation is issued in the same left-to-right association as the original
# expression, so IEEE-754 rounding happens in exactly the same order.
# ----------------------------------------------------------------------
def fill_periodic_halo(u: np.ndarray, work: np.ndarray) -> np.ndarray:
    """Copy ``u`` into the interior of the ``(nx+2, ny+2)`` buffer ``work``
    and fill the ghost layer (corners included) by periodic wrap-around."""
    work[1:-1, 1:-1] = u
    work[0, 1:-1] = u[-1, :]
    work[-1, 1:-1] = u[0, :]
    work[:, 0] = work[:, -2]
    work[:, -1] = work[:, 1]
    return work


def lw_step_interior_into(w: np.ndarray, cx: float, cy: float,
                          out: np.ndarray, scratch: np.ndarray) -> np.ndarray:
    """Allocation-free :func:`lw_step_interior`.

    ``out`` and ``scratch`` have the interior shape ``w.shape - 2`` and are
    overwritten; ``out`` is returned.  ``out``/``scratch`` must not overlap
    ``w`` (``out`` *may* alias the array the caller copied into ``w``).
    Results are bit-identical to :func:`lw_step_interior`.
    """
    u = w[1:-1, 1:-1]
    uxp = w[2:, 1:-1]
    uxm = w[:-2, 1:-1]
    uyp = w[1:-1, 2:]
    uym = w[1:-1, :-2]
    ax = 0.5 * cx
    ay = 0.5 * cy
    axx = 0.5 * cx * cx
    ayy = 0.5 * cy * cy
    axy = 0.25 * cx * cy
    t = scratch
    # u - 0.5*cx*(uxp - uxm)
    np.subtract(uxp, uxm, out=t)
    t *= ax
    np.subtract(u, t, out=out)
    # ... - 0.5*cy*(uyp - uym)
    np.subtract(uyp, uym, out=t)
    t *= ay
    out -= t
    # ... + 0.5*cx*cx*(uxp - 2.0*u + uxm)
    np.multiply(2.0, u, out=t)
    np.subtract(uxp, t, out=t)
    t += uxm
    t *= axx
    out += t
    # ... + 0.5*cy*cy*(uyp - 2.0*u + uym)
    np.multiply(2.0, u, out=t)
    np.subtract(uyp, t, out=t)
    t += uym
    t *= ayy
    out += t
    # ... + 0.25*cx*cy*(uxpyp - uxpym - uxmyp + uxmym)
    np.subtract(w[2:, 2:], w[2:, :-2], out=t)
    t -= w[:-2, 2:]
    t += w[:-2, :-2]
    t *= axy
    out += t
    return out


def lw_step_periodic_into(u: np.ndarray, cx: float, cy: float,
                          out: np.ndarray, work: np.ndarray,
                          scratch: np.ndarray) -> np.ndarray:
    """Allocation-free :func:`lw_step_periodic`.

    ``work`` is a ``(nx+2, ny+2)`` halo buffer; ``out`` and ``scratch``
    have the shape of ``u``.  ``out`` may alias ``u`` (the state is staged
    through ``work`` before ``out`` is written).  Bit-identical to
    :func:`lw_step_periodic`.
    """
    fill_periodic_halo(u, work)
    return lw_step_interior_into(work, cx, cy, out, scratch)


@dataclass
class SerialAdvectionSolver:
    """Single-process reference solver on one anisotropic sub-grid.

    Despite the historical name this solver is problem-generic: it drives
    whatever ``step_periodic`` kernel the problem object provides
    (Lax–Wendroff advection, FTCS diffusion, ...).
    """

    problem: object
    level_x: int
    level_y: int
    dt: float

    def __post_init__(self):
        self.u = periodic_from_initial(self.problem, self.level_x, self.level_y)
        self.step_count = 0
        # persistent buffers for the allocation-free kernel path (lazily
        # sized on first step; unused for problems without into-kernels)
        self._buf_a = self._buf_b = self._work = self._scratch = None

    @property
    def time(self) -> float:
        return self.step_count * self.dt

    def step(self, n: int = 1) -> None:
        if getattr(self.problem, "inplace_kernels", False):
            if self._buf_a is None:
                nx, ny = self.u.shape
                self._buf_a = np.empty_like(self.u)
                self._buf_b = np.empty_like(self.u)
                self._work = np.empty((nx + 2, ny + 2), dtype=self.u.dtype)
                self._scratch = np.empty_like(self.u)
            for _ in range(n):
                # double buffer: write into whichever private buffer the
                # state does not currently occupy (never into a caller-
                # assigned array)
                out = self._buf_b if self.u is self._buf_a else self._buf_a
                self.problem.step_periodic(
                    self.u, self.level_x, self.level_y, self.dt,
                    out=out, work=self._work, scratch=self._scratch)
                self.u = out
                self.step_count += 1
            return
        for _ in range(n):
            self.u = self.problem.step_periodic(
                self.u, self.level_x, self.level_y, self.dt)
            self.step_count += 1

    def nodal(self) -> np.ndarray:
        return nodal_view(self.u)

    def exact_nodal(self) -> np.ndarray:
        nx, ny = 1 << self.level_x, 1 << self.level_y
        xs = np.arange(nx + 1) / nx
        ys = np.arange(ny + 1) / ny
        return self.problem.exact(xs, ys, self.time)
