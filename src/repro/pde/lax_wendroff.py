"""Vectorised 2D Lax–Wendroff stepper for constant-coefficient advection.

The scheme is second order in space and time:

.. math::

    u^{n+1} = u - \\tfrac{c_x}{2}\\delta_x u - \\tfrac{c_y}{2}\\delta_y u
            + \\tfrac{c_x^2}{2}\\delta_x^2 u + \\tfrac{c_y^2}{2}\\delta_y^2 u
            + \\tfrac{c_x c_y}{4}\\delta_{xy} u

with Courant numbers :math:`c_x = a\\,\\Delta t/\\Delta x`,
:math:`c_y = b\\,\\Delta t/\\Delta y`.  Periodic arrays are stored *without*
the duplicated right/top boundary (shape ``2^i × 2^j``); ``nodal_view``
re-attaches it for the combination technique, whose nodal grids are
``(2^i+1) × (2^j+1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: flop estimate per grid point per step, used by the virtual-time model
FLOPS_PER_POINT = 24.0


def periodic_from_initial(problem, level_x: int, level_y: int) -> np.ndarray:
    """Initial condition as a periodic array of shape ``(2^i, 2^j)``."""
    nx, ny = 1 << level_x, 1 << level_y
    xs = np.arange(nx) / nx
    ys = np.arange(ny) / ny
    return problem.initial(xs[:, None], ys[None, :])


def nodal_view(u: np.ndarray) -> np.ndarray:
    """Append the wrapped boundary: ``(nx, ny)`` -> ``(nx+1, ny+1)``."""
    out = np.empty((u.shape[0] + 1, u.shape[1] + 1), dtype=u.dtype)
    out[:-1, :-1] = u
    out[-1, :-1] = u[0, :]
    out[:-1, -1] = u[:, 0]
    out[-1, -1] = u[0, 0]
    return out


def periodic_from_nodal(nodal: np.ndarray) -> np.ndarray:
    """Inverse of :func:`nodal_view` (drops the duplicated boundary)."""
    return np.ascontiguousarray(nodal[:-1, :-1])


def courant_numbers(velocity: Tuple[float, float], level_x: int, level_y: int,
                    dt: float) -> Tuple[float, float]:
    a, b = velocity
    return a * dt * (1 << level_x), b * dt * (1 << level_y)


def lw_step_periodic(u: np.ndarray, cx: float, cy: float) -> np.ndarray:
    """One Lax–Wendroff step on a fully periodic array (no halos)."""
    uxp = np.roll(u, -1, axis=0)
    uxm = np.roll(u, 1, axis=0)
    uyp = np.roll(u, -1, axis=1)
    uym = np.roll(u, 1, axis=1)
    uxpyp = np.roll(uxp, -1, axis=1)
    uxpym = np.roll(uxp, 1, axis=1)
    uxmyp = np.roll(uxm, -1, axis=1)
    uxmym = np.roll(uxm, 1, axis=1)
    return (u
            - 0.5 * cx * (uxp - uxm)
            - 0.5 * cy * (uyp - uym)
            + 0.5 * cx * cx * (uxp - 2.0 * u + uxm)
            + 0.5 * cy * cy * (uyp - 2.0 * u + uym)
            + 0.25 * cx * cy * (uxpyp - uxpym - uxmyp + uxmym))


def lw_step_interior(w: np.ndarray, cx: float, cy: float) -> np.ndarray:
    """One step on the interior of a halo-padded block ``w``.

    ``w`` has one ghost layer on every side (already exchanged); the result
    has shape ``w.shape - 2`` and is the update of ``w[1:-1, 1:-1]``.
    """
    u = w[1:-1, 1:-1]
    uxp = w[2:, 1:-1]
    uxm = w[:-2, 1:-1]
    uyp = w[1:-1, 2:]
    uym = w[1:-1, :-2]
    uxpyp = w[2:, 2:]
    uxpym = w[2:, :-2]
    uxmyp = w[:-2, 2:]
    uxmym = w[:-2, :-2]
    return (u
            - 0.5 * cx * (uxp - uxm)
            - 0.5 * cy * (uyp - uym)
            + 0.5 * cx * cx * (uxp - 2.0 * u + uxm)
            + 0.5 * cy * cy * (uyp - 2.0 * u + uym)
            + 0.25 * cx * cy * (uxpyp - uxpym - uxmyp + uxmym))


@dataclass
class SerialAdvectionSolver:
    """Single-process reference solver on one anisotropic sub-grid.

    Despite the historical name this solver is problem-generic: it drives
    whatever ``step_periodic`` kernel the problem object provides
    (Lax–Wendroff advection, FTCS diffusion, ...).
    """

    problem: object
    level_x: int
    level_y: int
    dt: float

    def __post_init__(self):
        self.u = periodic_from_initial(self.problem, self.level_x, self.level_y)
        self.step_count = 0

    @property
    def time(self) -> float:
        return self.step_count * self.dt

    def step(self, n: int = 1) -> None:
        for _ in range(n):
            self.u = self.problem.step_periodic(
                self.u, self.level_x, self.level_y, self.dt)
            self.step_count += 1

    def nodal(self) -> np.ndarray:
        return nodal_view(self.u)

    def exact_nodal(self) -> np.ndarray:
        nx, ny = 1 << self.level_x, 1 << self.level_y
        xs = np.arange(nx + 1) / nx
        ys = np.arange(ny + 1) / ny
        return self.problem.exact(xs, ys, self.time)
