"""Grid-function norms used for the accuracy experiments (Fig. 10)."""

from __future__ import annotations

import numpy as np


def l1(a: np.ndarray, b: np.ndarray = None) -> float:
    """Grid-averaged l1 norm of ``a`` (or of ``a - b``).

    The paper reports "the average of the l1-norm of the difference between
    the combined grid solution and exact analytical solution".
    """
    d = a if b is None else a - b
    return float(np.mean(np.abs(d)))


def l2(a: np.ndarray, b: np.ndarray = None) -> float:
    d = a if b is None else a - b
    return float(np.sqrt(np.mean(d * d)))


def linf(a: np.ndarray, b: np.ndarray = None) -> float:
    d = a if b is None else a - b
    return float(np.max(np.abs(d)))
