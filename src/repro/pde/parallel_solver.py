"""Domain-decomposed Lax–Wendroff solver running over a simulated MPI group.

One instance lives on each rank of a sub-grid's process group.  State is a
slab of the periodic array; each step exchanges one halo row with each
periodic neighbour, computes the stencil on the padded block, and charges
the virtual-time cost of the flops.

The solver also provides the state-motion primitives the recovery
techniques need: ``gather_full`` (root assembles the whole sub-grid),
``scatter_full`` (root redistributes a replacement state, e.g. after
restart or resampling), and ``snapshot``/``restore`` of the local slab for
checkpointing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .decomposition import SlabDecomposition, choose_axis
from .lax_wendroff import (FLOPS_PER_POINT, nodal_view,
                           periodic_from_initial)

_HALO_TAG_UP = 101
_HALO_TAG_DOWN = 102


class DistributedAdvectionSolver:
    """Solver for one anisotropic sub-grid on one process group."""

    def __init__(self, ctx, comm, problem, level_x: int, level_y: int,
                 dt: float, compute_scale: float = 1.0):
        self.ctx = ctx
        self.comm = comm
        self.problem = problem
        self.level_x = level_x
        self.level_y = level_y
        self.dt = dt
        #: multiplier on the virtual compute cost per step — models more
        #: expensive per-cell physics (or a finer grid) without changing
        #: the actual numerics; see DESIGN.md on timing-scale substitution
        self.compute_scale = compute_scale
        self.axis = choose_axis(level_x, level_y)
        n_axis = 1 << (level_x if self.axis == 0 else level_y)
        self.decomp = SlabDecomposition(n_axis, comm.size, self.axis)
        self.step_count = 0
        lo, hi = self.decomp.bounds(comm.rank)
        full = periodic_from_initial(problem, level_x, level_y)
        self.u = np.ascontiguousarray(
            full[lo:hi, :] if self.axis == 0 else full[:, lo:hi])
        # persistent step buffers (lazily sized; only used when the problem
        # provides allocation-free kernels)
        self._w = self._buf_a = self._buf_b = self._ti = self._scratch = None

    # ------------------------------------------------------------------
    @property
    def time(self) -> float:
        return self.step_count * self.dt

    @property
    def shape(self):
        return (1 << self.level_x, 1 << self.level_y)

    def _slab(self, arr: np.ndarray) -> np.ndarray:
        """My slab of a full periodic array."""
        lo, hi = self.decomp.bounds(self.comm.rank)
        return np.ascontiguousarray(
            arr[lo:hi, :] if self.axis == 0 else arr[:, lo:hi])

    # ------------------------------------------------------------------
    # time stepping
    # ------------------------------------------------------------------
    async def exchange_halos(self) -> np.ndarray:
        """Return the padded block (one ghost layer on all four sides).

        The padded buffer is persistent (every cell is overwritten each
        call).  Halo rows are sent with ``copy=False``: the ``.copy()``
        here already transfers ownership of a private row, so the MPI layer
        need not clone it again (the receiver gets a read-only view).
        """
        comm = self.comm
        u = self.u if self.axis == 0 else self.u.T
        prev_r, next_r = self.decomp.neighbours(comm.rank)
        if comm.size == 1:
            lo_ghost, hi_ghost = u[-1, :], u[0, :]
        else:
            lo_ghost, hi_ghost = await comm.exchange(
                ((prev_r, _HALO_TAG_UP, u[0, :].copy()),
                 (next_r, _HALO_TAG_DOWN, u[-1, :].copy())),
                ((prev_r, _HALO_TAG_DOWN), (next_r, _HALO_TAG_UP)),
                copy=False)
        nloc, ny = u.shape
        w = self._w
        if w is None or w.shape != (nloc + 2, ny + 2):
            w = self._w = np.empty((nloc + 2, ny + 2), dtype=u.dtype)
        w[1:-1, 1:-1] = u
        w[0, 1:-1] = lo_ghost
        w[-1, 1:-1] = hi_ghost
        # periodic wrap in the non-decomposed axis (corners included)
        w[:, 0] = w[:, -2]
        w[:, -1] = w[:, 1]
        return w

    async def step(self, n: int = 1) -> None:
        transposed = self.axis == 1
        inplace = getattr(self.problem, "inplace_kernels", False)
        for _ in range(n):
            w = await self.exchange_halos()
            if inplace:
                if self._buf_a is None or self._buf_a.shape != self.u.shape:
                    self._buf_a = np.empty_like(self.u)
                    self._buf_b = np.empty_like(self.u)
                    interior = (w.shape[0] - 2, w.shape[1] - 2)
                    self._scratch = np.empty(interior, dtype=self.u.dtype)
                    self._ti = (None if not transposed
                                else np.empty(interior, dtype=self.u.dtype))
                # double buffer: write into whichever private buffer the
                # state does not currently occupy
                out = self._buf_b if self.u is self._buf_a else self._buf_a
                if transposed:
                    unew = self.problem.step_interior(
                        w, self.level_x, self.level_y, self.dt,
                        transposed=True, out=self._ti, scratch=self._scratch)
                    np.copyto(out, unew.T)
                else:
                    self.problem.step_interior(
                        w, self.level_x, self.level_y, self.dt,
                        transposed=False, out=out, scratch=self._scratch)
                self.u = out
            else:
                unew = self.problem.step_interior(
                    w, self.level_x, self.level_y, self.dt,
                    transposed=transposed)
                self.u = unew if self.axis == 0 \
                    else np.ascontiguousarray(unew.T)
            self.step_count += 1
            await self.ctx.compute(
                flops=FLOPS_PER_POINT * self.u.size * self.compute_scale)

    def rebind(self, new_comm) -> None:
        """Swap in a replacement communicator after reconstruction.

        The repaired communicator preserves size and rank order, so the
        decomposition (and this rank's slab) stays valid.
        """
        if new_comm.size != self.comm.size or new_comm.rank != self.comm.rank:
            raise ValueError(
                "replacement communicator must preserve size and rank "
                f"(got rank {new_comm.rank}/{new_comm.size}, had "
                f"{self.comm.rank}/{self.comm.size})")
        self.comm = new_comm

    # ------------------------------------------------------------------
    # state motion
    # ------------------------------------------------------------------
    async def gather_full(self, root: int = 0) -> Optional[np.ndarray]:
        """Assemble the whole periodic array on ``root`` (None elsewhere)."""
        parts = await self.comm.gather(self.u, root=root)
        if parts is None:
            return None
        return np.concatenate(parts, axis=self.axis)

    async def gather_nodal(self, root: int = 0) -> Optional[np.ndarray]:
        full = await self.gather_full(root)
        return None if full is None else nodal_view(full)

    async def scatter_full(self, full: Optional[np.ndarray], root: int = 0,
                           step_count: Optional[int] = None) -> None:
        """Replace the state from a full periodic array held by ``root``."""
        if self.comm.rank == root:
            chunks = []
            for p in range(self.comm.size):
                lo, hi = self.decomp.bounds(p)
                chunks.append(full[lo:hi, :] if self.axis == 0
                              else np.ascontiguousarray(full[:, lo:hi]))
        else:
            chunks = None
        self.u = await self.comm.scatter(chunks, root=root)
        if step_count is not None:
            self.step_count = step_count

    # ------------------------------------------------------------------
    # checkpoint support (local slab only; the Disk charges I/O cost)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {"u": self.u.copy(), "step_count": self.step_count,
                "level_x": self.level_x, "level_y": self.level_y}

    def restore(self, snap: dict) -> None:
        if (snap["level_x"], snap["level_y"]) != (self.level_x, self.level_y):
            raise ValueError("checkpoint is for a different sub-grid")
        self.u = snap["u"].copy()
        self.step_count = snap["step_count"]
