"""Domain-decomposed Lax–Wendroff solver running over a simulated MPI group.

One instance lives on each rank of a sub-grid's process group.  State is a
slab of the periodic array; each step exchanges one halo row with each
periodic neighbour, computes the stencil on the padded block, and charges
the virtual-time cost of the flops.

The solver also provides the state-motion primitives the recovery
techniques need: ``gather_full`` (root assembles the whole sub-grid),
``scatter_full`` (root redistributes a replacement state, e.g. after
restart or resampling), and ``snapshot``/``restore`` of the local slab for
checkpointing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .decomposition import SlabDecomposition, choose_axis
from .lax_wendroff import (FLOPS_PER_POINT, nodal_view,
                           periodic_from_initial)

_HALO_TAG_UP = 101
_HALO_TAG_DOWN = 102


class DistributedAdvectionSolver:
    """Solver for one anisotropic sub-grid on one process group."""

    def __init__(self, ctx, comm, problem, level_x: int, level_y: int,
                 dt: float, compute_scale: float = 1.0):
        self.ctx = ctx
        self.comm = comm
        self.problem = problem
        self.level_x = level_x
        self.level_y = level_y
        self.dt = dt
        #: multiplier on the virtual compute cost per step — models more
        #: expensive per-cell physics (or a finer grid) without changing
        #: the actual numerics; see DESIGN.md on timing-scale substitution
        self.compute_scale = compute_scale
        self.axis = choose_axis(level_x, level_y)
        n_axis = 1 << (level_x if self.axis == 0 else level_y)
        self.decomp = SlabDecomposition(n_axis, comm.size, self.axis)
        self.step_count = 0
        lo, hi = self.decomp.bounds(comm.rank)
        full = periodic_from_initial(problem, level_x, level_y)
        self.u = np.ascontiguousarray(
            full[lo:hi, :] if self.axis == 0 else full[:, lo:hi])

    # ------------------------------------------------------------------
    @property
    def time(self) -> float:
        return self.step_count * self.dt

    @property
    def shape(self):
        return (1 << self.level_x, 1 << self.level_y)

    def _slab(self, arr: np.ndarray) -> np.ndarray:
        """My slab of a full periodic array."""
        lo, hi = self.decomp.bounds(self.comm.rank)
        return np.ascontiguousarray(
            arr[lo:hi, :] if self.axis == 0 else arr[:, lo:hi])

    # ------------------------------------------------------------------
    # time stepping
    # ------------------------------------------------------------------
    async def exchange_halos(self) -> np.ndarray:
        """Return the padded block (one ghost layer on all four sides)."""
        comm = self.comm
        u = self.u if self.axis == 0 else self.u.T
        prev_r, next_r = self.decomp.neighbours(comm.rank)
        if comm.size == 1:
            lo_ghost, hi_ghost = u[-1, :].copy(), u[0, :].copy()
        else:
            req_a = comm.isend(u[0, :].copy(), dest=prev_r, tag=_HALO_TAG_UP)
            req_b = comm.isend(u[-1, :].copy(), dest=next_r, tag=_HALO_TAG_DOWN)
            lo_ghost = await comm.recv(source=prev_r, tag=_HALO_TAG_DOWN)
            hi_ghost = await comm.recv(source=next_r, tag=_HALO_TAG_UP)
            await req_a.wait()
            await req_b.wait()
        nloc, ny = u.shape
        w = np.empty((nloc + 2, ny + 2), dtype=u.dtype)
        w[1:-1, 1:-1] = u
        w[0, 1:-1] = lo_ghost
        w[-1, 1:-1] = hi_ghost
        # periodic wrap in the non-decomposed axis (corners included)
        w[:, 0] = w[:, -2]
        w[:, -1] = w[:, 1]
        return w

    async def step(self, n: int = 1) -> None:
        transposed = self.axis == 1
        for _ in range(n):
            w = await self.exchange_halos()
            unew = self.problem.step_interior(
                w, self.level_x, self.level_y, self.dt,
                transposed=transposed)
            self.u = unew if self.axis == 0 else np.ascontiguousarray(unew.T)
            self.step_count += 1
            await self.ctx.compute(
                flops=FLOPS_PER_POINT * self.u.size * self.compute_scale)

    def rebind(self, new_comm) -> None:
        """Swap in a replacement communicator after reconstruction.

        The repaired communicator preserves size and rank order, so the
        decomposition (and this rank's slab) stays valid.
        """
        if new_comm.size != self.comm.size or new_comm.rank != self.comm.rank:
            raise ValueError(
                "replacement communicator must preserve size and rank "
                f"(got rank {new_comm.rank}/{new_comm.size}, had "
                f"{self.comm.rank}/{self.comm.size})")
        self.comm = new_comm

    # ------------------------------------------------------------------
    # state motion
    # ------------------------------------------------------------------
    async def gather_full(self, root: int = 0) -> Optional[np.ndarray]:
        """Assemble the whole periodic array on ``root`` (None elsewhere)."""
        parts = await self.comm.gather(self.u, root=root)
        if parts is None:
            return None
        return np.concatenate(parts, axis=self.axis)

    async def gather_nodal(self, root: int = 0) -> Optional[np.ndarray]:
        full = await self.gather_full(root)
        return None if full is None else nodal_view(full)

    async def scatter_full(self, full: Optional[np.ndarray], root: int = 0,
                           step_count: Optional[int] = None) -> None:
        """Replace the state from a full periodic array held by ``root``."""
        if self.comm.rank == root:
            chunks = []
            for p in range(self.comm.size):
                lo, hi = self.decomp.bounds(p)
                chunks.append(full[lo:hi, :] if self.axis == 0
                              else np.ascontiguousarray(full[:, lo:hi]))
        else:
            chunks = None
        self.u = await self.comm.scatter(chunks, root=root)
        if step_count is not None:
            self.step_count = step_count

    # ------------------------------------------------------------------
    # checkpoint support (local slab only; the Disk charges I/O cost)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {"u": self.u.copy(), "step_count": self.step_count,
                "level_x": self.level_x, "level_y": self.level_y}

    def restore(self, snap: dict) -> None:
        if (snap["level_x"], snap["level_y"]) != (self.level_x, self.level_y):
            raise ValueError("checkpoint is for a different sub-grid")
        self.u = snap["u"].copy()
        self.step_count = snap["step_count"]
