"""2D-block domain-decomposed Lax–Wendroff solver.

The alternative to the slab solver: the sub-grid is split over a Cartesian
``px x py`` process grid.  Halos (including the corner values the cross
term needs) are exchanged with the standard two-phase scheme: first along
x with interior columns, then along y with full rows — the second phase
carries the freshly received x-ghosts, so corners arrive without diagonal
messages.

Exposes the same interface as
:class:`~repro.pde.parallel_solver.DistributedAdvectionSolver` so the
application can switch decompositions via configuration.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..mpi.cart import CartHandle, create_cart, dims_create
from .decomposition import SlabDecomposition
from .lax_wendroff import (FLOPS_PER_POINT, nodal_view,
                           periodic_from_initial)

_TAG_XLO = 201
_TAG_XHI = 202
_TAG_YLO = 203
_TAG_YHI = 204


def choose_dims(n_procs: int, level_x: int, level_y: int) -> Tuple[int, int]:
    """Process-grid shape: balanced factors, the larger along the larger
    grid axis, clipped so no axis is over-decomposed."""
    px, py = dims_create(n_procs, 2)
    if (level_x >= level_y) != (px >= py):
        px, py = py, px
    # never split an axis into more parts than it has points
    nx, ny = 1 << level_x, 1 << level_y
    while px > nx:
        if px % 2:
            raise ValueError(f"cannot fit {n_procs} procs on grid "
                             f"({level_x},{level_y})")
        px //= 2
        py *= 2
    while py > ny:
        if py % 2:
            raise ValueError(f"cannot fit {n_procs} procs on grid "
                             f"({level_x},{level_y})")
        py //= 2
        px *= 2
    return px, py


class Distributed2DAdvectionSolver:
    """Block-decomposed solver over a Cartesian process grid."""

    def __init__(self, ctx, cart: CartHandle, problem, level_x: int,
                 level_y: int, dt: float, compute_scale: float = 1.0):
        self.ctx = ctx
        self.comm = cart
        self.problem = problem
        self.level_x = level_x
        self.level_y = level_y
        self.dt = dt
        self.compute_scale = compute_scale
        px, py = cart.dims
        self.decomp_x = SlabDecomposition(1 << level_x, px, 0)
        self.decomp_y = SlabDecomposition(1 << level_y, py, 1)
        self.step_count = 0
        cx_, cy_ = cart.coords
        self._xlo, self._xhi = self.decomp_x.bounds(cx_)
        self._ylo, self._yhi = self.decomp_y.bounds(cy_)
        full = periodic_from_initial(problem, level_x, level_y)
        self.u = np.ascontiguousarray(
            full[self._xlo:self._xhi, self._ylo:self._yhi])
        # persistent step buffers (lazily sized; only used when the problem
        # provides allocation-free kernels)
        self._w = self._buf_a = self._buf_b = self._scratch = None

    # ------------------------------------------------------------------
    @classmethod
    async def create(cls, ctx, comm, problem, level_x: int, level_y: int,
                     dt: float, compute_scale: float = 1.0
                     ) -> "Distributed2DAdvectionSolver":
        """Build the Cartesian topology and the solver (collective)."""
        dims = choose_dims(comm.size, level_x, level_y)
        cart = await create_cart(comm, dims, (True, True))
        return cls(ctx, cart, problem, level_x, level_y, dt, compute_scale)

    @property
    def time(self) -> float:
        return self.step_count * self.dt

    @property
    def shape(self):
        return (1 << self.level_x, 1 << self.level_y)

    def _slab(self, arr: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(
            arr[self._xlo:self._xhi, self._ylo:self._yhi])

    # ------------------------------------------------------------------
    async def exchange_halos(self) -> np.ndarray:
        """Two-phase halo exchange into a persistent padded buffer.

        Halo rows/columns are sent with ``copy=False``: the ``.copy()``
        already hands over a private buffer, so the MPI layer skips its
        own clone (the receiver sees a read-only view).
        """
        comm = self.comm
        u = self.u
        nxl, nyl = u.shape
        w = self._w
        if w is None or w.shape != (nxl + 2, nyl + 2):
            w = self._w = np.empty((nxl + 2, nyl + 2), dtype=u.dtype)
        w[1:-1, 1:-1] = u
        px, py = comm.dims

        # phase 1: x-direction, interior columns only
        prev_x, next_x = comm.shift(0, 1)
        if px == 1:
            w[0, 1:-1] = u[-1, :]
            w[-1, 1:-1] = u[0, :]
        else:
            ghosts = await comm.exchange(
                ((prev_x, _TAG_XLO, u[0, :].copy()),
                 (next_x, _TAG_XHI, u[-1, :].copy())),
                ((prev_x, _TAG_XHI), (next_x, _TAG_XLO)),
                copy=False)
            w[0, 1:-1] = ghosts[0]
            w[-1, 1:-1] = ghosts[1]

        # phase 2: y-direction, full rows (including x-ghosts -> corners)
        prev_y, next_y = comm.shift(1, 1)
        if py == 1:
            w[:, 0] = w[:, -2]
            w[:, -1] = w[:, 1]
        else:
            ghosts = await comm.exchange(
                ((prev_y, _TAG_YLO, w[:, 1].copy()),
                 (next_y, _TAG_YHI, w[:, -2].copy())),
                ((prev_y, _TAG_YHI), (next_y, _TAG_YLO)),
                copy=False)
            w[:, 0] = ghosts[0]
            w[:, -1] = ghosts[1]
        return w

    async def step(self, n: int = 1) -> None:
        inplace = getattr(self.problem, "inplace_kernels", False)
        for _ in range(n):
            w = await self.exchange_halos()
            if inplace:
                if self._buf_a is None or self._buf_a.shape != self.u.shape:
                    self._buf_a = np.empty_like(self.u)
                    self._buf_b = np.empty_like(self.u)
                    self._scratch = np.empty_like(self.u)
                # double buffer: write into whichever private buffer the
                # state does not currently occupy
                out = self._buf_b if self.u is self._buf_a else self._buf_a
                self.problem.step_interior(w, self.level_x, self.level_y,
                                           self.dt, out=out,
                                           scratch=self._scratch)
                self.u = out
            else:
                self.u = self.problem.step_interior(w, self.level_x,
                                                    self.level_y, self.dt)
            self.step_count += 1
            await self.ctx.compute(
                flops=FLOPS_PER_POINT * self.u.size * self.compute_scale)

    # ------------------------------------------------------------------
    # state motion (same interface as the slab solver)
    # ------------------------------------------------------------------
    def _block_of(self, full: np.ndarray, rank: int) -> np.ndarray:
        cx_, cy_ = self.comm.coords_of(rank)
        xlo, xhi = self.decomp_x.bounds(cx_)
        ylo, yhi = self.decomp_y.bounds(cy_)
        return np.ascontiguousarray(full[xlo:xhi, ylo:yhi])

    async def gather_full(self, root: int = 0) -> Optional[np.ndarray]:
        parts = await self.comm.gather(self.u, root=root)
        if parts is None:
            return None
        nx, ny = self.shape
        full = np.empty((nx, ny), dtype=self.u.dtype)
        for rank, block in enumerate(parts):
            cx_, cy_ = self.comm.coords_of(rank)
            xlo, xhi = self.decomp_x.bounds(cx_)
            ylo, yhi = self.decomp_y.bounds(cy_)
            full[xlo:xhi, ylo:yhi] = block
        return full

    async def gather_nodal(self, root: int = 0) -> Optional[np.ndarray]:
        full = await self.gather_full(root)
        return None if full is None else nodal_view(full)

    async def scatter_full(self, full: Optional[np.ndarray], root: int = 0,
                           step_count: Optional[int] = None) -> None:
        if self.comm.rank == root:
            chunks = [self._block_of(full, r) for r in range(self.comm.size)]
        else:
            chunks = None
        self.u = await self.comm.scatter(chunks, root=root)
        if step_count is not None:
            self.step_count = step_count

    def rebind(self, new_comm) -> None:
        if new_comm.size != self.comm.size or new_comm.rank != self.comm.rank:
            raise ValueError("replacement communicator must preserve "
                             "size and rank")
        if isinstance(new_comm, CartHandle):
            self.comm = new_comm
        else:
            self.comm = CartHandle(new_comm.state, new_comm.proc,
                                   self.comm.dims, self.comm.periods)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {"u": self.u.copy(), "step_count": self.step_count,
                "level_x": self.level_x, "level_y": self.level_y}

    def restore(self, snap: dict) -> None:
        if (snap["level_x"], snap["level_y"]) != (self.level_x, self.level_y):
            raise ValueError("checkpoint is for a different sub-grid")
        self.u = snap["u"].copy()
        self.step_count = snap["step_count"]
