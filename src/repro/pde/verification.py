"""Numerical verification utilities: convergence orders and extrapolation.

Used by tests and by anyone extending the solver: a second-order scheme
must demonstrably converge at second order, and the combination technique's
accuracy gain must be measurable against single-grid solves.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from .advection import AdvectionProblem
from .lax_wendroff import SerialAdvectionSolver
from .norms import l1


def observed_orders(errors: Sequence[float], ratio: float = 2.0
                    ) -> List[float]:
    """Convergence orders from successive errors at refinement ``ratio``."""
    out = []
    for a, b in zip(errors, errors[1:]):
        if a <= 0 or b <= 0:
            raise ValueError("errors must be positive")
        out.append(math.log(a / b) / math.log(ratio))
    return out


def convergence_study(problem: AdvectionProblem, levels: Sequence[int],
                      t_end: float, cfl: float = 0.4
                      ) -> List[Tuple[int, float]]:
    """Solve to ``t_end`` on square grids of the given levels; returns
    (level, l1 error) pairs.  The timestep halves with each refinement, so
    the observed order includes both space and time accuracy."""
    out = []
    for lev in levels:
        dt = problem.stable_dt(lev, cfl)
        steps = max(1, round(t_end / dt))
        solver = SerialAdvectionSolver(problem, lev, lev, t_end / steps)
        solver.step(steps)
        out.append((lev, l1(solver.nodal(), solver.exact_nodal())))
    return out


def richardson_error_estimate(coarse: float, fine: float,
                              order: int = 2, ratio: float = 2.0) -> float:
    """Richardson estimate of the fine solution's error from two values of
    a scalar functional computed at successive resolutions."""
    return abs(fine - coarse) / (ratio ** order - 1.0)
