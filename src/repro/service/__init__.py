"""The persistent results service.

Three layers turn the per-process sweep engine into a shared results
store (ROADMAP item 4, "heavy traffic from millions of users"):

* :mod:`repro.service.store` — a sharded, multi-process-safe on-disk
  blob store (the persistent layer under
  :class:`repro.sweep.cache.RunCache`);
* :mod:`repro.service.jobqueue` — a bounded worker queue that coalesces
  duplicate in-flight requests (N identical misses -> 1 execution);
* :mod:`repro.service.server` / :mod:`repro.service.client` — a small
  stdlib HTTP API (``python -m repro serve``) that serves experiment and
  run JSON straight from cache and schedules misses in the background
  with 202 + poll semantics.
"""

from .client import ServiceClient, ServiceError
from .jobqueue import Job, JobQueue, QueueFull
from .store import SharedStore, StoreStats

__all__ = [
    "Job", "JobQueue", "QueueFull",
    "ServiceClient", "ServiceError",
    "ServiceState", "create_server", "serve",
    "SharedStore", "StoreStats",
]

_SERVER_NAMES = ("ServiceState", "create_server", "serve")


def __getattr__(name):
    # the server module imports the sweep engine, which itself uses
    # .store as its disk layer — resolve server names lazily so the
    # package import graph stays acyclic
    if name in _SERVER_NAMES:
        from . import server
        return getattr(server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
