"""Stdlib HTTP client for the results service.

Wraps the 202-poll-200 protocol so callers just ask for a document::

    client = ServiceClient("http://127.0.0.1:8642")
    doc = client.experiment("fig9")          # polls until computed
    stats = client.cache_stats()

Built on ``urllib.request`` only — usable from CI shells, benchmarks
and notebooks without installing anything.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional, Tuple

from .jobqueue import wall_now

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A non-retryable service answer (4xx/5xx, or poll timeout)."""

    def __init__(self, status: int, payload):
        self.status = status
        self.payload = payload
        detail = payload.get("error") if isinstance(payload, dict) \
            else payload
        super().__init__(f"HTTP {status}: {detail}")


def _sleep(seconds: float) -> None:
    time.sleep(seconds)  # noqa: ULF002 host-side client poll pacing, not simulated time


class ServiceClient:
    """Minimal blocking client; one instance per base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def get(self, path: str) -> Tuple[int, dict]:
        """One GET; returns (status, decoded JSON) without raising on
        4xx/5xx (the poll loop needs the status)."""
        url = f"{self.base_url}{path}"
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as resp:
                return resp.status, json.loads(resp.read().decode())
        except urllib.error.HTTPError as err:
            body = err.read().decode()
            try:
                payload = json.loads(body)
            except (ValueError, TypeError):
                payload = {"error": body or str(err)}
            return err.code, payload

    def _expect(self, path: str, ok=(200,)) -> dict:
        status, payload = self.get(path)
        if status not in ok:
            raise ServiceError(status, payload)
        return payload

    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._expect("/healthz")

    def wait_healthy(self, timeout: float = 10.0,
                     interval: float = 0.05) -> dict:
        """Poll ``/healthz`` until the server answers (startup races)."""
        deadline = wall_now() + timeout
        while True:
            try:
                return self.healthz()
            except (ServiceError, OSError):
                if wall_now() >= deadline:
                    raise
                _sleep(interval)

    def cache_stats(self) -> dict:
        return self._expect("/v1/cache/stats")

    def run(self, key: str) -> dict:
        return self._expect(f"/v1/run/{key}")

    def job(self, job_id: str) -> dict:
        return self._expect(f"/v1/job/{job_id}")

    # ------------------------------------------------------------------
    def experiment_once(self, name: str,
                        quick: bool = True) -> Tuple[int, dict]:
        """One non-waiting request: (200, doc) warm, (202, ticket) cold,
        or whatever error the service answered."""
        return self.get(f"/v1/experiment/{name}?quick={1 if quick else 0}")

    def experiment(self, name: str, quick: bool = True,
                   poll_interval: float = 0.1,
                   timeout: Optional[float] = 300.0) -> dict:
        """The experiment document, polling through any 202s.

        503 (queue full) is retried like 202 — backpressure is an
        invitation to wait, not an error; anything else raises
        :class:`ServiceError`, as does exceeding ``timeout``.
        """
        deadline = None if timeout is None else wall_now() + timeout
        while True:
            status, payload = self.experiment_once(name, quick)
            if status == 200:
                return payload
            if status not in (202, 503):
                raise ServiceError(status, payload)
            if deadline is not None and wall_now() >= deadline:
                raise ServiceError(
                    status, {"error": f"experiment {name!r} still "
                                      f"{payload.get('status', 'pending')} "
                                      f"after {timeout}s"})
            _sleep(poll_interval)
