"""Coalescing background job queue with bounded workers.

The service's miss path: a request for a result that is not in the
store schedules a job here and immediately returns 202.  Three
properties make this safe to expose to many clients at once:

* **coalescing** — jobs are keyed (by the result's content
  fingerprint); while a job for a key is pending or running, further
  submissions for the same key attach to it instead of executing again.
  N concurrent identical requests cost exactly one execution — the
  dedup semantics the sweep engine already guarantees within one batch,
  extended across clients;
* **bounded workers + backpressure** — a fixed worker-thread pool
  drains a bounded pending queue; submitting past the bound raises
  :class:`QueueFull` (the HTTP layer turns that into 503), so a
  traffic spike degrades into explicit retries, not unbounded memory;
* **per-job status** — every job carries a stable id, state, timing and
  error string, served by ``/v1/job/<id>`` and ``wait()``-able by
  embedded users (the benchmark drives the queue directly).

Metrics flow into a :class:`repro.obs.registry.MetricsRegistry`:
``service_jobs`` counters (``event=executed|deduped|failed|rejected``),
a ``service_queue_depth`` gauge, and a ``service_job_seconds``
histogram.
"""

from __future__ import annotations

import queue as _stdqueue
import threading
import time
from typing import Callable, Dict, List, Optional

from ..obs.registry import MetricsRegistry

__all__ = ["Job", "JobQueue", "QueueFull", "wall_now",
           "PENDING", "RUNNING", "DONE", "FAILED"]

PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: finished jobs kept around for /v1/job/<id> status queries
_FINISHED_KEEP = 256


def wall_now() -> float:
    """Host wall clock for service latencies — the service layer is
    host-side infrastructure, never simulated code."""
    return time.monotonic()  # noqa: ULF002 host-side service timing, not simulated time


class QueueFull(Exception):
    """The pending queue is at capacity; retry after a drain."""


class Job:
    """One keyed unit of background work."""

    __slots__ = ("id", "key", "label", "state", "result", "error",
                 "waiters", "created", "started", "finished", "_event")

    def __init__(self, job_id: str, key: str, label: str):
        self.id = job_id
        self.key = key
        self.label = label
        self.state = PENDING
        self.result = None
        self.error: Optional[str] = None
        self.waiters = 1
        self.created = wall_now()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self._event = threading.Event()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes (True) or ``timeout`` elapses."""
        return self._event.wait(timeout)

    @property
    def done(self) -> bool:
        return self.state in (DONE, FAILED)

    def describe(self) -> dict:
        d = {"job": self.id, "key": self.key, "label": self.label,
             "status": self.state, "waiters": self.waiters}
        if self.started is not None and self.finished is not None:
            d["seconds"] = round(self.finished - self.started, 6)
        if self.error is not None:
            d["error"] = self.error
        return d


class JobQueue:
    """Bounded worker pool executing keyed, coalesced jobs."""

    def __init__(self, workers: int = 2, max_pending: int = 32,
                 registry: Optional[MetricsRegistry] = None):
        if workers < 1:
            raise ValueError("JobQueue needs at least one worker")
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._lock = threading.Lock()
        # holds (job, fn) tuples, or None as a worker shutdown sentinel
        self._pending: _stdqueue.Queue = _stdqueue.Queue(
            maxsize=max_pending)
        self._by_key: Dict[str, Job] = {}     # in-flight only
        self._jobs: Dict[str, Job] = {}       # incl. recent finished
        self._order: List[str] = []           # finished-job trim order
        self._next_id = 0
        self._depth = self.registry.gauge("service_queue_depth")
        self._seconds = self.registry.histogram("service_job_seconds")
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"repro-job-worker-{i}")
            for i in range(workers)]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    def _count(self, event: str) -> None:
        self.registry.counter("service_jobs", event=event).inc()

    def submit(self, key: str, fn: Callable[[], object],
               label: str = "") -> Job:
        """Schedule ``fn`` under ``key``; coalesce onto an in-flight job
        for the same key if one exists.  Raises :class:`QueueFull` when
        the pending queue is at capacity."""
        with self._lock:
            existing = self._by_key.get(key)
            if existing is not None and not existing.done:
                existing.waiters += 1
                self._count("deduped")
                return existing
            self._next_id += 1
            job = Job(f"job-{self._next_id}", key, label or key[:12])
            try:
                self._pending.put_nowait((job, fn))
            except _stdqueue.Full:
                self._count("rejected")
                raise QueueFull(
                    f"job queue at capacity "
                    f"({self._pending.maxsize} pending)") from None
            self._by_key[key] = job
            self._jobs[job.id] = job
            self._depth.inc()
            return job

    def job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def inflight(self, key: str) -> Optional[Job]:
        """The pending/running job for ``key``, if any."""
        with self._lock:
            job = self._by_key.get(key)
            return job if job is not None and not job.done else None

    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            item = self._pending.get()
            if item is None:
                return
            job, fn = item
            self._depth.dec()
            job.started = wall_now()
            job.state = RUNNING
            try:
                job.result = fn()
            except Exception as exc:   # jobs must never kill a worker
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = FAILED
                self._count("failed")
            else:
                job.state = DONE
                self._count("executed")
            job.finished = wall_now()
            self._seconds.observe(job.finished - job.started)
            with self._lock:
                if self._by_key.get(job.key) is job:
                    del self._by_key[job.key]
                self._order.append(job.id)
                while len(self._order) > _FINISHED_KEEP:
                    self._jobs.pop(self._order.pop(0), None)
            job._event.set()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            inflight = len(self._by_key)
        totals = {c.labels[0][1]: c.value
                  for c in self.registry.counters("service_jobs")}
        return {
            "inflight": inflight,
            "depth": int(self._depth.value),
            "executed": totals.get("executed", 0),
            "deduped": totals.get("deduped", 0),
            "failed": totals.get("failed", 0),
            "rejected": totals.get("rejected", 0),
        }

    def shutdown(self, wait: bool = True) -> None:
        for _ in self._threads:
            self._pending.put(None)
        if wait:
            for t in self._threads:
                t.join(timeout=10)
