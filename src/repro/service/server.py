"""``python -m repro serve`` — the results service HTTP API.

A small stdlib server (``http.server.ThreadingHTTPServer``, no new
dependencies) in front of the shared run cache and the coalescing job
queue:

========================  =============================================
``GET /healthz``          liveness: ``{"status": "ok", ...}``
``GET /v1/cache/stats``   store + cache + queue + service metrics
``GET /v1/experiment/N``  the experiment document for ``N`` (``table1``,
                          ``fig8`` ... ``modes``).  Served straight from
                          the cache when warm (200); a miss schedules a
                          background job and answers **202** with a job
                          id — poll the same URL until it flips to 200.
                          ``?quick=0`` requests the full (paper-scale)
                          variant; the default is the quick one.
``GET /v1/run/KEY``       one cached run's metrics by content key (the
                          fingerprints ``repro.sweep.cache.run_key``
                          assigns); 404 when not cached — a key alone
                          cannot be recomputed.
``GET /v1/job/ID``        status of one background job.
========================  =============================================

Overload answers **503** (queue at capacity, with ``Retry-After``), and
an experiment whose computation failed answers **500** with the error
until ``?retry=1`` resubmits it.

Experiment documents are deterministic — they embed no wall-clock or
worker-count params — and are persisted in the same shared store as the
individual runs, keyed by a content fingerprint of ``(name, quick,
schema version)``: a warm document survives restarts, and a cold
document's underlying runs are themselves cached, fleet-wide, so even a
"cold" document after a restart only re-aggregates warm runs.
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..obs.registry import MetricsRegistry
from .jobqueue import JobQueue, QueueFull, wall_now

__all__ = ["ServiceState", "create_server", "serve"]

#: /v1/run keys are hex fingerprints; /v1/job ids are job-<n>
_KEY_RE = re.compile(r"^[0-9a-f]{6,64}$")
_JOB_RE = re.compile(r"^job-\d+$")

#: request-latency buckets — host milliseconds, not virtual seconds
_REQUEST_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0,
                    5.0, 30.0)


class ServiceState:
    """Everything the handlers share: cache, queue, metrics, doc keys."""

    def __init__(self, cache=None, queue_workers: int = 2,
                 max_pending: int = 32, sweep_workers: int = 1,
                 registry: Optional[MetricsRegistry] = None):
        from ..sweep import RunCache
        self.cache = cache if cache is not None else RunCache()
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.queue = JobQueue(workers=queue_workers,
                              max_pending=max_pending,
                              registry=self.registry)
        self.sweep_workers = sweep_workers
        self.started = wall_now()
        self._failures: dict = {}   # doc key -> last job error

    # ------------------------------------------------------------------
    def _count_lookup(self, kind: str, result: str) -> None:
        self.registry.counter("service_cache", kind=kind,
                              result=result).inc()

    @staticmethod
    def experiment_key(name: str, quick: bool) -> str:
        """Content key of one experiment document (the unit the queue
        coalesces on and the store persists)."""
        from ..obs.schema import EXPERIMENT_SCHEMA_VERSION
        from ..sweep.cache import fingerprint
        return fingerprint(("experiment-doc", name, bool(quick),
                            EXPERIMENT_SCHEMA_VERSION))

    def _compute_experiment(self, name: str, quick: bool, key: str):
        """The job body: run the experiment through the shared cache and
        persist the validated document under ``key``."""
        from ..experiments.registry import run_experiment
        from ..experiments.report import experiment_json
        from ..obs.schema import validate_experiment_doc
        from ..sweep import SweepRunner

        runner = SweepRunner(workers=self.sweep_workers, cache=self.cache)
        points = run_experiment(name, quick, runner)
        doc = experiment_json(name, points, params={"quick": bool(quick)})
        validate_experiment_doc(doc)
        self.cache.put(key, doc)
        self._failures.pop(key, None)
        return doc

    # ------------------------------------------------------------------
    # endpoint bodies: (http status, payload)
    # ------------------------------------------------------------------
    def healthz(self) -> Tuple[int, dict]:
        return 200, {"status": "ok",
                     "uptime_s": round(wall_now() - self.started, 3)}

    def cache_stats(self) -> Tuple[int, dict]:
        store = self.cache.store
        return 200, {
            "cache": self.cache.stats(),
            "store": store.stats().to_dict() if store is not None else None,
            "queue": self.queue.stats(),
            "metrics": self.registry.to_dict(),
        }

    def experiment(self, name: str, quick: bool,
                   retry: bool) -> Tuple[int, dict]:
        from ..experiments.registry import EXPERIMENTS
        if name not in EXPERIMENTS:
            return 404, {"error": f"unknown experiment {name!r}",
                         "known": sorted(EXPERIMENTS)}
        key = self.experiment_key(name, quick)
        doc = self.cache.load(key)
        if doc is not None:
            self._count_lookup("experiment", "hit")
            return 200, doc
        self._count_lookup("experiment", "miss")
        if retry:
            self._failures.pop(key, None)
        error = self._failures.get(key)
        if error is not None and self.queue.inflight(key) is None:
            return 500, {"error": error, "experiment": name,
                         "hint": "append ?retry=1 to recompute"}

        def body(name=name, quick=quick, key=key):
            try:
                return self._compute_experiment(name, quick, key)
            except Exception as exc:
                # remembered so pollers see a 500, not an endless 202
                self._failures[key] = f"{type(exc).__name__}: {exc}"
                raise

        try:
            job = self.queue.submit(key, body,
                                    label=f"experiment:{name}"
                                          f"{'' if quick else ':full'}")
        except QueueFull as exc:
            return 503, {"error": str(exc), "retry_after_s": 1}
        return 202, {"status": job.state, "job": job.id,
                     "experiment": name, "quick": bool(quick),
                     "key": key,
                     "poll": f"/v1/experiment/{name}?quick="
                             f"{1 if quick else 0}"}

    def run(self, key: str) -> Tuple[int, dict]:
        if not _KEY_RE.match(key):
            return 400, {"error": f"malformed run key {key!r} "
                                  "(expected a hex fingerprint)"}
        value = self.cache.load(key)
        if value is None:
            self._count_lookup("run", "miss")
            return 404, {"error": f"no cached run {key}",
                         "hint": "runs are keyed by content fingerprint; "
                                 "a key alone cannot be recomputed"}
        self._count_lookup("run", "hit")
        payload = value.to_dict() if hasattr(value, "to_dict") else value
        return 200, {"key": key, "metrics": payload}

    def job(self, job_id: str) -> Tuple[int, dict]:
        if not _JOB_RE.match(job_id):
            return 400, {"error": f"malformed job id {job_id!r}"}
        job = self.queue.job(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id} "
                                  "(finished jobs are kept briefly)"}
        return 200, job.describe()


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    #: set by create_server on the handler class
    state: ServiceState = None
    quiet = True

    def log_message(self, fmt, *args):  # noqa: A003 - stdlib signature
        if not self.quiet:
            super().log_message(fmt, *args)

    # ------------------------------------------------------------------
    def _dispatch(self, path: str, query: dict) -> Tuple[str, int, dict]:
        """(endpoint label, status, payload) for one GET."""
        state = self.state
        if path in ("/healthz", "/health"):
            return ("healthz", *state.healthz())
        if path == "/v1/cache/stats":
            return ("cache_stats", *state.cache_stats())
        m = re.match(r"^/v1/experiment/([A-Za-z0-9_.-]+)$", path)
        if m:
            quick = _flag(query, "quick", default=True)
            retry = _flag(query, "retry", default=False)
            return ("experiment", *state.experiment(m.group(1), quick,
                                                    retry))
        m = re.match(r"^/v1/run/([A-Za-z0-9]+)$", path)
        if m:
            return ("run", *state.run(m.group(1)))
        m = re.match(r"^/v1/job/([A-Za-z0-9-]+)$", path)
        if m:
            return ("job", *state.job(m.group(1)))
        return "unknown", 404, {"error": f"no such endpoint {path}"}

    def do_GET(self):  # noqa: N802 - stdlib dispatch name
        t0 = wall_now()
        url = urlparse(self.path)
        try:
            endpoint, status, payload = self._dispatch(
                url.path, parse_qs(url.query))
        except Exception as exc:   # a handler bug must not kill the server
            endpoint, status = "internal", 500
            payload = {"error": f"{type(exc).__name__}: {exc}"}
        body = json.dumps(payload, default=str).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status == 503:
            self.send_header("Retry-After", "1")
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass                    # client went away; nothing to serve
        reg = self.state.registry
        reg.counter("service_requests", endpoint=endpoint,
                    status=status).inc()
        reg.histogram("service_request_seconds",
                      buckets=_REQUEST_BUCKETS,
                      endpoint=endpoint).observe(wall_now() - t0)


def _flag(query: dict, name: str, default: bool) -> bool:
    vals = query.get(name)
    if not vals:
        return default
    return vals[-1].strip().lower() not in ("0", "false", "no", "")


def create_server(host: str = "127.0.0.1", port: int = 0,
                  cache_dir: Optional[str] = None,
                  queue_workers: int = 2, max_pending: int = 32,
                  sweep_workers: int = 1,
                  quiet: bool = True) -> ThreadingHTTPServer:
    """A ready-to-run server; ``port=0`` binds an ephemeral port
    (``server.server_address[1]`` reports it).  The caller owns the
    lifecycle: ``serve_forever()`` / ``shutdown()`` / ``server_close()``,
    plus ``server.state.queue.shutdown()`` for the workers."""
    from ..sweep import RunCache
    state = ServiceState(cache=RunCache(directory=cache_dir),
                         queue_workers=queue_workers,
                         max_pending=max_pending,
                         sweep_workers=sweep_workers)
    handler = type("BoundHandler", (_Handler,),
                   {"state": state, "quiet": quiet})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    server.state = state
    return server


def serve(host: str = "127.0.0.1", port: int = 8642,
          cache_dir: Optional[str] = None, queue_workers: int = 2,
          max_pending: int = 32, sweep_workers: int = 1,
          quiet: bool = False) -> int:
    """Blocking entry point behind ``python -m repro serve``."""
    import sys
    server = create_server(host, port, cache_dir=cache_dir,
                           queue_workers=queue_workers,
                           max_pending=max_pending,
                           sweep_workers=sweep_workers, quiet=quiet)
    bound = server.server_address
    where = cache_dir if cache_dir \
        else "in-memory only; pass --cache DIR to persist"
    print(f"repro serve: listening on http://{bound[0]}:{bound[1]} "
          f"(cache: {where})", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        server.state.queue.shutdown(wait=False)
    return 0
