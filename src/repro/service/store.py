"""Sharded, multi-process-safe on-disk blob store.

This is the persistent layer under :class:`repro.sweep.cache.RunCache`
and the HTTP service: one pickle blob per content key, laid out in
fingerprint-prefix shard subdirectories (``<dir>/<key[:2]>/<key>.pkl``)
so directory listings stay cheap past a few thousand entries — a flat
directory degrades linearly in entry count on every lookup-by-listing
and every ``stats()`` scan.

Concurrency model (no locks, no daemons):

* **writes are atomic** — each ``put`` writes a private tmp file in the
  destination shard and publishes it with :func:`os.replace`, so a
  reader can never observe a truncated blob and a crashed writer leaves
  only an ignorable ``*.tmp`` file (``gc`` sweeps those);
* **reads are lock-free last-writer-wins** — keys are content
  addresses, so two writers racing on one key are writing the same
  bytes; whichever rename lands last simply refreshes the mtime;
* **corrupt blobs are quarantined, never trusted** — a blob that fails
  to load is renamed to ``<key>.corrupt`` (kept for post-mortems,
  invisible to lookups) and the key reads as a miss.

The store also reads the flat ``<key>.pkl`` layout that pre-dated
sharding; ``gc`` migrates such entries into their shards.
"""

from __future__ import annotations

import json
import os
import pickle
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional

__all__ = ["SharedStore", "StoreStats", "STORE_FORMAT_VERSION"]

#: bumped when the on-disk layout changes incompatibly
STORE_FORMAT_VERSION = 1

#: shard = this many leading key characters (256 shards for hex keys)
_SHARD_CHARS = 2

_META_NAME = "STORE_META.json"
_BLOB_SUFFIX = ".pkl"
_CORRUPT_SUFFIX = ".corrupt"
_TMP_SUFFIX = ".tmp"


def _check_key(key: str) -> str:
    """Keys are content fingerprints: non-empty, alphanumeric (hex in
    practice).  Anything else could escape the store directory."""
    if not key or not key.isalnum():
        raise ValueError(f"invalid store key {key!r} "
                         "(expected an alphanumeric fingerprint)")
    return key


@dataclass(frozen=True)
class StoreStats:
    """One ``stats()`` snapshot (all counts from a directory scan)."""

    entries: int
    bytes: int
    shards: int
    corrupt: int
    legacy_flat: int
    tmp_files: int
    format_version: int

    def to_dict(self) -> dict:
        return {
            "entries": self.entries, "bytes": self.bytes,
            "shards": self.shards, "corrupt": self.corrupt,
            "legacy_flat": self.legacy_flat, "tmp_files": self.tmp_files,
            "format_version": self.format_version,
        }


class SharedStore:
    """Content-keyed blob store over one directory tree.

    Safe for concurrent use from multiple threads *and* multiple
    processes pointed at the same directory; see the module docstring
    for the exact guarantees.
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._write_meta_if_absent()

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------
    def shard_dir(self, key: str) -> Path:
        return self.directory / _check_key(key)[:_SHARD_CHARS]

    def path_for(self, key: str) -> Path:
        """The sharded blob path (where ``put`` writes)."""
        return self.shard_dir(key) / f"{key}{_BLOB_SUFFIX}"

    def _legacy_path(self, key: str) -> Path:
        return self.directory / f"{key}{_BLOB_SUFFIX}"

    def _find(self, key: str) -> Optional[Path]:
        """The existing blob file for ``key`` — sharded first, then the
        pre-sharding flat layout."""
        path = self.path_for(key)
        if path.is_file():
            return path
        legacy = self._legacy_path(key)
        if legacy.is_file():
            return legacy
        return None

    def _write_meta_if_absent(self) -> None:
        meta = self.directory / _META_NAME
        if meta.is_file():
            return
        payload = json.dumps({"format_version": STORE_FORMAT_VERSION,
                              "shard_chars": _SHARD_CHARS}) + "\n"
        self._atomic_write(meta, payload.encode())

    def format_version(self) -> int:
        meta = self.directory / _META_NAME
        try:
            return int(json.loads(meta.read_text())["format_version"])
        except (OSError, ValueError, KeyError, TypeError):
            return STORE_FORMAT_VERSION

    # ------------------------------------------------------------------
    # blob I/O
    # ------------------------------------------------------------------
    @staticmethod
    def _atomic_write(dest: Path, blob: bytes) -> None:
        """Write-then-rename: ``dest`` either keeps its old content or
        holds all of ``blob`` — never a prefix.  The tmp name is unique
        per (process, thread), so concurrent writers cannot collide on
        it; ``os.replace`` is atomic on POSIX and Windows."""
        tmp = dest.parent / (
            f".{dest.name}.{os.getpid()}.{threading.get_ident()}"
            f"{_TMP_SUFFIX}")
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, dest)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise

    def get(self, key: str) -> Optional[bytes]:
        """The blob for ``key``, or ``None``.  A file that vanishes
        mid-read (a concurrent ``gc``) reads as a miss."""
        path = self._find(key)
        if path is None:
            return None
        try:
            return path.read_bytes()
        except OSError:
            return None

    def put(self, key: str, blob: bytes) -> None:
        dest = self.path_for(key)
        dest.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(dest, blob)

    def delete(self, key: str) -> bool:
        removed = False
        for path in (self.path_for(key), self._legacy_path(key)):
            try:
                path.unlink()
                removed = True
            except OSError:
                pass
        return removed

    def quarantine(self, key: str) -> Optional[Path]:
        """Move ``key``'s blob aside as ``<key>.corrupt`` (kept for
        post-mortems, invisible to every lookup).  Returns the new path,
        or ``None`` when the blob is already gone."""
        path = self._find(key)
        if path is None:
            return None
        dest = path.with_suffix(_CORRUPT_SUFFIX)
        try:
            os.replace(path, dest)
        except OSError:
            return None
        return dest

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def _blob_files(self) -> Iterator[Path]:
        root = self.directory
        if not root.is_dir():
            return
        for entry in sorted(root.iterdir()):
            if entry.is_file():
                if entry.suffix == _BLOB_SUFFIX:
                    yield entry                      # legacy flat layout
            elif entry.is_dir():
                for blob in sorted(entry.glob(f"*{_BLOB_SUFFIX}")):
                    if blob.is_file():
                        yield blob

    def keys(self) -> List[str]:
        return [p.stem for p in self._blob_files()]

    def __contains__(self, key: str) -> bool:
        return self._find(key) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self._blob_files())

    def index(self) -> List[dict]:
        """Per-entry metadata: key, byte size, mtime, shard."""
        out = []
        for path in self._blob_files():
            try:
                st = path.stat()
            except OSError:
                continue                             # raced with a gc
            shard = path.parent.name if path.parent != self.directory \
                else ""
            out.append({"key": path.stem, "size": st.st_size,
                        "mtime": st.st_mtime, "shard": shard})
        return out

    def stats(self) -> StoreStats:
        entries = n_bytes = legacy = 0
        shards = set()
        for path in self._blob_files():
            try:
                n_bytes += path.stat().st_size
            except OSError:
                continue
            entries += 1
            if path.parent == self.directory:
                legacy += 1
            else:
                shards.add(path.parent.name)
        corrupt = sum(1 for _ in self.directory.rglob(
            f"*{_CORRUPT_SUFFIX}"))
        tmp = sum(1 for _ in self.directory.rglob(f"*{_TMP_SUFFIX}"))
        return StoreStats(entries=entries, bytes=n_bytes,
                          shards=len(shards), corrupt=corrupt,
                          legacy_flat=legacy, tmp_files=tmp,
                          format_version=self.format_version())

    # ------------------------------------------------------------------
    # maintenance (the ``repro cache`` subcommands)
    # ------------------------------------------------------------------
    def verify(self,
               loads: Callable[[bytes], object] = pickle.loads,
               quarantine: bool = False) -> Dict[str, List[str]]:
        """Load every blob; report (optionally quarantine) the corrupt
        ones.  Returns ``{"ok": [...keys], "corrupt": [...keys]}``."""
        ok: List[str] = []
        corrupt: List[str] = []
        for path in list(self._blob_files()):
            key = path.stem
            try:
                loads(path.read_bytes())
            except Exception:  # noqa: ULF001 - any load failure means corrupt, not MPI
                corrupt.append(key)
                if quarantine:
                    self.quarantine(key)
            else:
                ok.append(key)
        return {"ok": ok, "corrupt": corrupt}

    def gc(self) -> dict:
        """Housekeeping: drop leftover tmp files and quarantined blobs,
        migrate legacy flat entries into their shards.  Returns counts
        of each action."""
        tmp_removed = corrupt_removed = migrated = 0
        for path in list(self.directory.rglob(f"*{_TMP_SUFFIX}")):
            try:
                path.unlink()
                tmp_removed += 1
            except OSError:
                pass
        for path in list(self.directory.rglob(f"*{_CORRUPT_SUFFIX}")):
            try:
                path.unlink()
                corrupt_removed += 1
            except OSError:
                pass
        for path in list(self.directory.glob(f"*{_BLOB_SUFFIX}")):
            if not path.is_file():
                continue
            dest = self.path_for(path.stem)
            dest.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.replace(path, dest)
                migrated += 1
            except OSError:
                pass
        return {"tmp_removed": tmp_removed,
                "corrupt_removed": corrupt_removed,
                "migrated": migrated}
