"""Deterministic discrete-event simulation kernel.

This package is the foundation of the reproduction: every simulated MPI rank
is a coroutine scheduled by :class:`Engine` in virtual time.  See DESIGN.md
section 3.
"""

from .engine import Engine
from .errors import DeadlockError, SimError, SimulationLimitError, TaskFailedError
from .task import Task, TaskState
from .traps import SimFuture, Sleep

__all__ = [
    "Engine",
    "Task",
    "TaskState",
    "SimFuture",
    "Sleep",
    "SimError",
    "DeadlockError",
    "TaskFailedError",
    "SimulationLimitError",
]
