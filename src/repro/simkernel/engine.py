"""Deterministic discrete-event engine driving coroutine tasks in virtual time.

The engine is a priority queue of ``(time, seq, action)`` events.  ``seq`` is
a monotonically increasing tiebreaker, so two runs of the same program with
the same inputs produce the *identical* event order — a property the test
suite checks and which the fault-tolerance experiments rely on for
reproducible failure timing.

Virtual time is completely decoupled from wall-clock time: a task only
advances the clock by awaiting :class:`~repro.simkernel.traps.Sleep` (the
machine model charges compute/IO/network costs this way) or by blocking on a
:class:`~repro.simkernel.traps.SimFuture` resolved at a later time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Coroutine, Iterable, Optional

from .errors import DeadlockError, SimulationLimitError, TaskFailedError
from .task import Task, TaskState
from .traps import SimFuture, Sleep


class Engine:
    """Virtual-time coroutine scheduler."""

    def __init__(self, *, trace: bool = False, max_events: int = 50_000_000):
        self.now: float = 0.0
        self._seq = itertools.count()
        self._queue: list = []  # heap of (time, seq, kind, payload)
        self._tasks: dict[int, Task] = {}
        self._tid = itertools.count()
        self.max_events = max_events
        self.events_processed = 0
        self.trace_enabled = trace
        self.trace: list[tuple] = []
        self.failed_tasks: list[Task] = []

    # ------------------------------------------------------------------
    # task management
    # ------------------------------------------------------------------
    def spawn(self, coro: Coroutine, name: str = "", *, at: Optional[float] = None) -> Task:
        """Create a task and schedule its first step at ``at`` (default: now)."""
        task = Task(self, next(self._tid), name or f"task{len(self._tasks)}", coro)
        self._tasks[task.tid] = task
        task.state = TaskState.READY
        start = self.now if at is None else max(at, self.now)
        task.started_at = start
        self._schedule(start, ("resume", task, None, None))
        return task

    def create_future(self, label: str = "") -> SimFuture:
        return SimFuture(self, label)

    def kill(self, task: Task) -> None:
        """Fail-stop termination: the task never runs again.

        Kill hooks fire first (so the MPI layer can fail pending partners),
        then the coroutine is closed, raising ``GeneratorExit`` at its
        current suspension point so ``finally`` blocks still run.
        """
        if not task.alive:
            return
        if task.blocked and isinstance(task.waiting_on, SimFuture):
            task.waiting_on.discard_waiter(task)
        task.state = TaskState.KILLED
        task.finished_at = self.now
        for hook in list(task.kill_hooks):
            hook(task)
        task.kill_hooks.clear()
        try:
            task.coro.close()
        except RuntimeError:  # pragma: no cover - coroutine being stepped
            pass
        if not task.done_future.done:
            task.done_future.set_exception(TaskFailedError(task, GeneratorExit("killed")))

    def tasks(self) -> Iterable[Task]:
        return self._tasks.values()

    # ------------------------------------------------------------------
    # event queue
    # ------------------------------------------------------------------
    def _schedule(self, time: float, event: tuple) -> None:
        heapq.heappush(self._queue, (time, next(self._seq), event))

    def call_at(self, time: float, fn, *args) -> None:
        """Run ``fn(*args)`` at virtual time ``time`` (>= now)."""
        self._schedule(max(time, self.now), ("call", fn, args, None))

    def call_later(self, delay: float, fn, *args) -> None:
        self.call_at(self.now + delay, fn, *args)

    def _wake_from_future(self, task: Task, fut: SimFuture) -> None:
        """Called by SimFuture when it resolves with ``task`` blocked on it."""
        if not task.alive:
            return
        task.state = TaskState.READY
        task.waiting_on = None
        when = max(fut.resolution_time, self.now)
        if fut.exception() is not None:
            self._schedule(when, ("resume", task, None, fut.exception()))
        else:
            self._schedule(when, ("resume", task, fut._result, None))

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, *, until: Optional[float] = None, raise_task_failures: bool = True) -> float:
        """Process events until the queue drains (or virtual time ``until``).

        Returns the final virtual time.  Raises :class:`DeadlockError` if the
        queue drains while live tasks are still blocked, and
        :class:`TaskFailedError` for the first task that died with an
        unhandled exception (unless ``raise_task_failures=False``).
        """
        while self._queue:
            time, _seq, event = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self.events_processed += 1
            if self.events_processed > self.max_events:
                raise SimulationLimitError(
                    f"exceeded {self.max_events} events at t={self.now:g}")
            self.now = max(self.now, time)
            kind = event[0]
            if kind == "resume":
                _, task, value, exc = event
                self._step(task, value, exc)
            elif kind == "call":
                _, fn, args, _ = event
                fn(*args)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {kind!r}")

        if raise_task_failures and self.failed_tasks:
            t = self.failed_tasks[0]
            raise TaskFailedError(t, t.exception) from t.exception
        blocked = [t for t in self._tasks.values() if t.alive and t.blocked]
        if blocked and until is None:
            try:  # best effort: explain who waits on whom (and any cycle)
                from ..analysis.races import format_wait_for_graph
                wait_graph = format_wait_for_graph(blocked)
            except Exception:  # noqa: ULF001 - never mask the deadlock
                wait_graph = ""
            raise DeadlockError(blocked, wait_graph=wait_graph)
        return self.now

    def _step(self, task: Task, value: Any, exc: Optional[BaseException]) -> None:
        if not task.alive or task.state is not TaskState.READY:
            return
        task.state = TaskState.RUNNING
        if self.trace_enabled:
            self.trace.append((self.now, task.name, "step"))
        try:
            if exc is not None:
                trap = task.coro.throw(exc)
            else:
                trap = task.coro.send(value)
        except StopIteration as stop:
            task.state = TaskState.DONE
            task.result = stop.value
            task.finished_at = self.now
            task.done_future.set_result(stop.value)
            return
        except BaseException as err:  # task died with unhandled exception
            task.state = TaskState.FAILED
            task.exception = err
            task.finished_at = self.now
            self.failed_tasks.append(task)
            task.done_future.set_exception(TaskFailedError(task, err))
            return

        if isinstance(trap, Sleep):
            task.state = TaskState.READY
            task.waiting_on = trap
            self._schedule(self.now + trap.duration, ("resume", task, None, None))
        elif isinstance(trap, SimFuture):
            if trap.done:
                task.state = TaskState.READY
                self._wake_from_future(task, trap)
            else:
                task.state = TaskState.WAITING
                task.waiting_on = trap
                trap._waiters.append(task)
        else:
            raise RuntimeError(
                f"task {task.name} awaited unsupported object {trap!r}; "
                "only Sleep and SimFuture are legal traps")
