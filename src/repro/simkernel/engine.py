"""Deterministic discrete-event engine driving coroutine tasks in virtual time.

The engine keeps two event stores that together behave exactly like one
priority queue ordered by ``(time, seq)``:

* a binary heap of slotted :class:`_Event` records for events scheduled at a
  *future* virtual time, tie-broken by a monotonically increasing ``seq``;
* a FIFO deque for events scheduled at the *current* virtual time (zero-
  duration sleeps, already-resolved futures, ``call_at(now)``).

The split is safe because ``seq`` is global and monotone: every heap entry
at time ``T`` was necessarily pushed before the clock reached ``T`` (an
event scheduled once ``now == T`` goes to the deque instead), so all heap
entries at ``T`` precede all deque entries in ``seq`` order, and the deque
itself is FIFO.  Draining heap entries at ``now`` first, then the deque,
therefore reproduces the exact ``(time, seq)`` order of a single heap —
two runs of the same program produce the *identical* event order, a
property the test suite checks and which the fault-tolerance experiments
rely on for reproducible failure timing.

Virtual time is completely decoupled from wall-clock time: a task only
advances the clock by awaiting :class:`~repro.simkernel.traps.Sleep` (the
machine model charges compute/IO/network costs this way) or by blocking on a
:class:`~repro.simkernel.traps.SimFuture` resolved at a later time.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Coroutine, Iterable, Optional

from .errors import DeadlockError, SimulationLimitError, TaskFailedError
from .task import Task, TaskState
from .traps import _TRAP_FUTURE, _TRAP_SLEEP, SimFuture, Sleep

#: event kinds (int tags — compared with ``==`` in the hot loop)
_EV_RESUME = 0
_EV_CALL = 1
_EV_BATCH = 2

#: upper bound on recycled ``_Event`` records kept per engine; beyond this
#: the allocator churn being avoided is already amortised and holding more
#: would only pin memory after a burst (e.g. a wide collective round)
_EVENT_POOL_CAP = 4096

#: pre-bound enum members — saves an attribute hop per state transition
_READY = TaskState.READY
_RUNNING = TaskState.RUNNING
_WAITING = TaskState.WAITING
_DONE = TaskState.DONE
_FAILED = TaskState.FAILED
_KILLED = TaskState.KILLED


class _Event:
    """Slotted scheduler record.

    ``kind`` selects the payload interpretation:

    * ``_EV_RESUME`` — ``a`` is the task, ``b`` the send value, ``c`` the
      exception to throw (or None);
    * ``_EV_CALL`` — ``a`` is the callable, ``b`` its argument tuple;
    * ``_EV_BATCH`` — ``a`` is a list of tasks resumed back-to-back (in list
      order) with the shared send value ``b``.  One heap/deque entry stands
      in for ``len(a)`` consecutive ``_EV_RESUME`` events with consecutive
      seqs, which is exactly what makes the batch fast path bit-identical
      to the per-task event path (see ``Engine.schedule_future_batch``).
    """

    __slots__ = ("time", "seq", "kind", "a", "b", "c")

    def __init__(self, time: float, seq: int, kind: int, a, b, c):
        self.time = time
        self.seq = seq
        self.kind = kind
        self.a = a
        self.b = b
        self.c = c

    def __lt__(self, other: "_Event") -> bool:
        st, ot = self.time, other.time
        return st < ot or (st == ot and self.seq < other.seq)


class Engine:
    """Virtual-time coroutine scheduler."""

    def __init__(self, *, trace: bool = False, max_events: int = 50_000_000):
        self.now: float = 0.0
        self._seq = 0
        self._queue: list[_Event] = []          # heap: events at future times
        self._immediate: deque[_Event] = deque()  # FIFO: events at time `now`
        self._tasks: dict[int, Task] = {}
        self._tid = 0
        self.max_events = max_events
        self.events_processed = 0
        self._pool: list[_Event] = []           # recycled _Event records
        self.trace_enabled = trace
        self.trace: list[tuple] = []
        self.failed_tasks: list[Task] = []

    # ------------------------------------------------------------------
    # task management
    # ------------------------------------------------------------------
    def spawn(self, coro: Coroutine, name: str = "", *, at: Optional[float] = None) -> Task:
        """Create a task and schedule its first step at ``at`` (default: now)."""
        self._tid += 1
        task = Task(self, self._tid, name or f"task{len(self._tasks)}", coro)
        self._tasks[task.tid] = task
        task.state = TaskState.READY
        start = self.now if at is None else max(at, self.now)
        task.started_at = start
        self._schedule(start, _EV_RESUME, task, None, None)
        return task

    def create_future(self, label: str = "") -> SimFuture:
        return SimFuture(self, label)

    def kill(self, task: Task) -> None:
        """Fail-stop termination: the task never runs again.

        Kill hooks fire first (so the MPI layer can fail pending partners),
        then the coroutine is closed, raising ``GeneratorExit`` at its
        current suspension point so ``finally`` blocks still run.
        """
        if not task.alive:
            return
        if task.blocked and isinstance(task.waiting_on, SimFuture):
            task.waiting_on.discard_waiter(task)
        task.state = TaskState.KILLED
        task.finished_at = self.now
        for hook in list(task.kill_hooks):
            hook(task)
        task.kill_hooks.clear()
        try:
            task.coro.close()
        except RuntimeError:  # pragma: no cover - coroutine being stepped
            pass
        if not task.done_future.done:
            task.done_future.set_exception(TaskFailedError(task, GeneratorExit("killed")))

    def tasks(self) -> Iterable[Task]:
        return self._tasks.values()

    # ------------------------------------------------------------------
    # event queue
    # ------------------------------------------------------------------
    def _schedule(self, time: float, kind: int, a, b, c) -> None:
        """Queue an event at virtual time ``time`` (must be >= now).

        Events at exactly ``now`` take the O(1) deque fast path; their FIFO
        position encodes the same ordering a heap push with the next global
        seq would produce (see module docstring).

        Records are checked out of a free list when available: the run loop
        recycles every dispatched event, so steady-state scheduling does no
        allocation at all.
        """
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.kind = kind
            ev.a = a
            ev.b = b
            ev.c = c
            if time <= self.now:
                ev.time = self.now
                ev.seq = 0
                self._immediate.append(ev)
            else:
                self._seq += 1
                ev.time = time
                ev.seq = self._seq
                heapq.heappush(self._queue, ev)
            return
        if time <= self.now:
            self._immediate.append(_Event(self.now, 0, kind, a, b, c))
        else:
            self._seq += 1
            heapq.heappush(self._queue, _Event(time, self._seq, kind, a, b, c))

    def stamp(self) -> tuple:
        """Monotone ``(now, seq)`` pair for observability ordering.

        Span recorders need a deterministic order for intervals that open
        or close at the same virtual instant; the scheduler's global
        sequence counter provides exactly that tie-break.  Consuming a seq
        here is safe: scheduling only requires ``seq`` to be monotone, not
        dense.
        """
        self._seq += 1
        return (self.now, self._seq)

    def call_at(self, time: float, fn, *args) -> None:
        """Run ``fn(*args)`` at virtual time ``time`` (>= now)."""
        self._schedule(max(time, self.now), _EV_CALL, fn, args, None)

    def call_later(self, delay: float, fn, *args) -> None:
        self.call_at(self.now + delay, fn, *args)

    def _wake_from_future(self, task: Task, fut: SimFuture) -> None:
        """Called by SimFuture when it resolves with ``task`` blocked on it."""
        s = task.state
        if s is _DONE or s is _FAILED or s is _KILLED:  # task.alive, inlined
            return
        task.state = _READY
        task.waiting_on = None
        when = fut._time
        if when < self.now:
            when = self.now
        self._schedule(when, _EV_RESUME, task, fut._result, fut._exception)

    def schedule_future_batch(self, fut: SimFuture, value: Any,
                              at: Optional[float] = None) -> float:
        """Resolve ``fut`` with ``value``, waking all parked waiters through
        a *single* batched resume event instead of one event each.

        Bit-identity with the per-waiter path: ``set_result`` would schedule
        one ``_EV_RESUME`` per waiter, in waiter-list (= park) order, with
        consecutive seqs — and nothing can interleave with those seqs,
        because they are claimed inside one uninterrupted call.  A single
        ``_EV_BATCH`` carrying the same list therefore dispatches the same
        steps in the same order at the same virtual time.  Returns the
        resolution time.
        """
        waiters = fut.take_waiters(value, at)
        when = fut._time
        if waiters:
            for task in waiters:
                task.state = _READY
                task.waiting_on = None
            if len(waiters) == 1:
                self._schedule(when, _EV_RESUME, waiters[0], value, None)
            else:
                self._schedule(when, _EV_BATCH, waiters, value, None)
        return when

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, *, until: Optional[float] = None, raise_task_failures: bool = True) -> float:
        """Process events until the queue drains (or virtual time ``until``).

        Returns the final virtual time.  When ``until`` is given and the
        queue did not drain first, the clock is advanced to ``until`` on
        return, so deadlines scheduled afterwards via :meth:`call_later`
        are relative to the requested horizon.  Raises
        :class:`DeadlockError` if the queue drains while live tasks are
        still blocked, and :class:`TaskFailedError` for the first task that
        died with an unhandled exception (unless
        ``raise_task_failures=False``).
        """
        queue = self._queue
        immediate = self._immediate
        heappop = heapq.heappop
        step = self._step
        pool = self._pool
        processed = self.events_processed
        limit = self.max_events
        try:
            while True:
                if queue and queue[0].time <= self.now:
                    # heap entries at the current time predate every deque entry
                    if until is not None and queue[0].time > until:
                        break
                    ev = heappop(queue)
                elif immediate:
                    if until is not None and immediate[0].time > until:
                        break
                    ev = immediate.popleft()
                elif queue:
                    t = queue[0].time
                    if until is not None and t > until:
                        break
                    ev = heappop(queue)
                    self.now = t
                else:
                    break
                processed += 1
                if processed > limit:
                    raise SimulationLimitError(
                        f"exceeded {limit} events at t={self.now:g}")
                kind = ev.kind
                a, b, c = ev.a, ev.b, ev.c
                # recycle before dispatch: the step may schedule new events,
                # and handing it this (already-popped) record is safe
                if len(pool) < _EVENT_POOL_CAP:
                    ev.a = ev.b = ev.c = None
                    pool.append(ev)
                if kind == _EV_RESUME:
                    step(a, b, c)
                elif kind == _EV_CALL:
                    a(*b)
                elif kind == _EV_BATCH:
                    # count every logical resume so events/s stays comparable
                    # between the batch and per-task paths
                    processed += len(a) - 1
                    for task in a:
                        step(task, b, None)
                else:  # pragma: no cover - defensive
                    raise RuntimeError(f"unknown event kind {kind!r}")
        finally:
            # the counter lives in a local inside the loop; publish it even
            # when an event raises so observers always see the true count
            self.events_processed = processed

        if until is not None and until > self.now:
            self.now = until
        if raise_task_failures and self.failed_tasks:
            t = self.failed_tasks[0]
            raise TaskFailedError(t, t.exception) from t.exception
        if until is None:
            blocked = [t for t in self._tasks.values() if t.alive and t.blocked]
            if blocked:
                try:  # best effort: explain who waits on whom (and any cycle)
                    from ..analysis.races import format_wait_for_graph
                    wait_graph = format_wait_for_graph(blocked)
                except Exception:  # noqa: ULF001 - never mask the deadlock
                    wait_graph = ""
                raise DeadlockError(blocked, wait_graph=wait_graph)
        return self.now

    def _step(self, task: Task, value: Any, exc: Optional[BaseException]) -> None:
        if task.state is not _READY:
            return
        task.state = _RUNNING
        if self.trace_enabled:
            self.trace.append((self.now, task.name, "step"))
        try:
            if exc is not None:
                trap = task.coro.throw(exc)
            else:
                trap = task.coro.send(value)
        except StopIteration as stop:
            task.state = _DONE
            task.result = stop.value
            task.finished_at = self.now
            task.done_future.set_result(stop.value)
            return
        except BaseException as err:  # task died with unhandled exception
            task.state = _FAILED
            task.exception = err
            task.finished_at = self.now
            self.failed_tasks.append(task)
            task.done_future.set_exception(TaskFailedError(task, err))
            return

        # type-tag dispatch: cheaper than an isinstance chain, and subclasses
        # of Sleep/SimFuture inherit the tag so they stay legal traps
        try:
            tag = trap._trap_tag
        except AttributeError:
            raise RuntimeError(
                f"task {task.name} awaited unsupported object {trap!r}; "
                "only Sleep and SimFuture are legal traps") from None
        if tag == _TRAP_SLEEP:
            task.state = _READY
            task.waiting_on = trap
            self._schedule(self.now + trap.duration, _EV_RESUME, task, None, None)
        elif tag == _TRAP_FUTURE:
            if trap._done:
                task.state = _READY
                self._wake_from_future(task, trap)
            else:
                task.state = _WAITING
                task.waiting_on = trap
                trap._waiters.append(task)
        else:  # pragma: no cover - defensive
            raise RuntimeError(
                f"task {task.name} awaited object with bad trap tag {tag!r}")
