"""Exceptions raised by the discrete-event simulation kernel."""

from __future__ import annotations


class SimError(Exception):
    """Base class for simulation kernel errors."""


class DeadlockError(SimError):
    """Raised when the event queue drains while tasks are still waiting.

    The message lists every blocked task and what it is waiting on, which is
    usually enough to diagnose a mismatched send/recv or a collective that a
    participant never entered.
    """

    def __init__(self, blocked, wait_graph: str = ""):
        self.blocked = list(blocked)
        self.wait_graph = wait_graph
        lines = ", ".join(f"{t.name}(waiting on {t.waiting_on!r})" for t in self.blocked)
        msg = f"simulation deadlock: {len(self.blocked)} task(s) blocked: {lines}"
        if wait_graph:
            msg = f"{msg}\n{wait_graph}"
        super().__init__(msg)


class TaskFailedError(SimError):
    """Raised by :meth:`Engine.run` when a task died with an unhandled exception."""

    def __init__(self, task, exc):
        self.task = task
        self.original = exc
        super().__init__(f"task {task.name} failed with {exc!r}")


class SimulationLimitError(SimError):
    """Raised when the engine exceeds its configured event budget."""
