"""Task objects wrapping rank coroutines."""

from __future__ import annotations

import enum
from typing import Any, Callable, Coroutine, Optional


class TaskState(enum.Enum):
    CREATED = "created"
    READY = "ready"       # resume event queued
    RUNNING = "running"   # currently being stepped
    WAITING = "waiting"   # blocked on a SimFuture
    DONE = "done"         # coroutine returned
    FAILED = "failed"     # coroutine raised
    KILLED = "killed"     # externally terminated (fail-stop)


class Task:
    """A coroutine scheduled on the engine.

    ``meta`` is a free-form dict used by higher layers (the MPI layer stores
    the owning simulated process there).  ``kill_hooks`` are callbacks run
    when the task is killed, letting the MPI layer fail communication
    partners of a dead rank.
    """

    __slots__ = (
        "tid", "name", "coro", "state", "result", "exception",
        "waiting_on", "meta", "kill_hooks", "done_future",
        "started_at", "finished_at", "engine",
    )

    def __init__(self, engine, tid: int, name: str, coro: Coroutine):
        self.engine = engine
        self.tid = tid
        self.name = name
        self.coro = coro
        self.state = TaskState.CREATED
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self.waiting_on = None  # SimFuture | Sleep | None
        self.meta: dict = {}
        self.kill_hooks: list[Callable[["Task"], None]] = []
        self.done_future = engine.create_future(label=f"join:{name}")
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    @property
    def alive(self) -> bool:
        return self.state not in (TaskState.DONE, TaskState.FAILED, TaskState.KILLED)

    @property
    def blocked(self) -> bool:
        return self.state is TaskState.WAITING

    def add_kill_hook(self, hook: Callable[["Task"], None]) -> None:
        self.kill_hooks.append(hook)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.name!r}, {self.state.value})"
