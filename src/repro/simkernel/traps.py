"""Awaitable primitives understood by the simulation engine.

Rank programs are ordinary ``async def`` coroutines.  Whenever they ``await``
one of the objects defined here, control returns to the
:class:`~repro.simkernel.engine.Engine`, which decides when (in *virtual*
time) the coroutine resumes and with what value.  Only two primitives exist:

* :class:`Sleep` — advance this task's clock by a fixed amount of virtual
  time (used by the machine model to charge compute / I/O costs).
* :class:`SimFuture` — a one-shot synchronisation cell.  Every higher-level
  operation (message arrival, collective completion, task join) is built
  from futures by the MPI layer.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

#: trap type tags — the engine's hot loop dispatches on these class
#: attributes instead of an ``isinstance`` chain; subclasses inherit them
_TRAP_SLEEP = 1
_TRAP_FUTURE = 2


class Sleep:
    """Awaitable that suspends the current task for ``duration`` virtual seconds."""

    __slots__ = ("duration",)

    _trap_tag = _TRAP_SLEEP

    def __init__(self, duration: float):
        if duration < 0:
            raise ValueError(f"negative sleep duration: {duration}")
        self.duration = float(duration)

    def __await__(self):
        yield self
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sleep({self.duration:g})"


class SimFuture:
    """A one-shot result cell resolved at a specific virtual time.

    Unlike :class:`asyncio.Future`, resolution carries a *time*: waiters are
    resumed at ``max(resolution_time, now)``, which is how communication
    latency is modelled — the producer resolves the future "in the future".
    """

    __slots__ = ("engine", "label", "_done", "_result", "_exception", "_time",
                 "_waiters", "_callbacks", "waits_for")

    _trap_tag = _TRAP_FUTURE

    def __init__(self, engine, label: str = ""):
        # NB: ``_result``/``_exception``/``_time`` are written by
        # ``_resolve`` before anything reads them, and ``waits_for`` is an
        # optional annotation higher layers attach (read back with
        # ``getattr(..., None)``) — leaving all four unset keeps future
        # creation, a per-message cost, to the minimum number of stores.
        self.engine = engine
        self.label = label
        self._done = False
        self._waiters: list = []  # Tasks blocked on this future
        self._callbacks: Optional[list] = None  # lazily allocated

    # -- inspection -------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done

    @property
    def resolution_time(self) -> float:
        if not self._done:
            raise RuntimeError("future not resolved")
        return self._time

    def result(self) -> Any:
        if not self._done:
            raise RuntimeError("future not resolved")
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self) -> Optional[BaseException]:
        if not self._done:
            raise RuntimeError("future not resolved")
        return self._exception

    # -- resolution -------------------------------------------------------
    def set_result(self, value: Any = None, at: Optional[float] = None) -> None:
        self._resolve(value, None, at)

    def set_exception(self, exc: BaseException, at: Optional[float] = None) -> None:
        self._resolve(None, exc, at)

    def _resolve(self, value: Any, exc: Optional[BaseException], at: Optional[float]) -> None:
        if self._done:
            raise RuntimeError(f"future {self.label!r} already resolved")
        self._done = True
        self._result = value
        self._exception = exc
        self._time = self.engine.now if at is None else max(at, self.engine.now)
        waiters = self._waiters
        if waiters:
            self._waiters = []
            wake = self.engine._wake_from_future
            for task in waiters:
                wake(task, self)
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = None
            for cb in callbacks:
                cb(self)

    def take_waiters(self, value: Any, at: Optional[float] = None) -> list:
        """Mark resolved (like ``set_result``) but *return* the parked waiter
        tasks instead of scheduling one wake-up each.

        This is the engine's batched-resume entry point
        (:meth:`~repro.simkernel.engine.Engine.schedule_future_batch` flips
        the returned tasks to READY and issues a single resume event for the
        lot).  Only bare rendezvous futures qualify: done-callbacks would
        observe a different scheduling order, so their presence is an error.
        """
        if self._done:
            raise RuntimeError(f"future {self.label!r} already resolved")
        if self._callbacks:
            raise RuntimeError(
                f"future {self.label!r} has done-callbacks; batched "
                "resolution would reorder them relative to the wake-ups")
        self._done = True
        self._result = value
        self._exception = None
        self._time = self.engine.now if at is None else max(at, self.engine.now)
        waiters = self._waiters
        self._waiters = []
        return waiters

    def recycle(self) -> None:
        """Reset to pristine-unresolved so the cell can be reused.

        Only safe once every consumer has taken its result — the batch
        collectives layer tracks a read countdown for exactly this purpose.
        """
        self._done = False
        self._result = self._exception = None
        self._waiters = []
        self._callbacks = None

    def add_done_callback(self, cb: Callable[["SimFuture"], None]) -> None:
        """Run ``cb(self)`` when resolved (immediately if already done)."""
        if self._done:
            cb(self)
        elif self._callbacks is None:
            self._callbacks = [cb]
        else:
            self._callbacks.append(cb)

    def discard_waiter(self, task) -> None:
        """Forget a blocked task (used when the task is killed)."""
        try:
            self._waiters.remove(task)
        except ValueError:
            pass

    def __await__(self):
        result = yield self
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else f"pending({len(self._waiters)} waiters)"
        return f"SimFuture({self.label!r}, {state})"
