"""Sparse grid combination technique: schemes, coefficients, resampling."""

from .coefficients import (classic_coefficients, coefficient_support_ok,
                           dominates, downset, downset_coefficients,
                           is_downset, maximal_elements, meet,
                           truncated_coefficients)
from .combine import (CombinationPlan, clear_plan_caches,
                      combination_interpolant, combination_plan,
                      combine_nodal, combine_nodal_reference)
from .gcp import (RecoveryInfeasibleError, alternate_coefficients,
                  alternate_coefficients_for, scheme_floor, survivors)
from .hierarchy import (combination_at_points, full_grid_point_count,
                        hierarchical_surplus_1d, union_point_count,
                        union_points)
from .index import (ROLE_DIAGONAL, ROLE_DUPLICATE, ROLE_EXTRA, ROLE_LOWER,
                    CombinationScheme, SchemeGrid, cached_scheme,
                    layer_indices)
from .interpolation import axis_points, nodal_of, resample
from .parallel_combine import combine_on_root, scatter_samples

__all__ = [
    "CombinationScheme", "SchemeGrid", "cached_scheme", "layer_indices",
    "ROLE_DIAGONAL", "ROLE_LOWER", "ROLE_DUPLICATE", "ROLE_EXTRA",
    "classic_coefficients", "downset_coefficients", "truncated_coefficients",
    "downset", "is_downset", "maximal_elements", "meet", "dominates",
    "coefficient_support_ok",
    "alternate_coefficients", "alternate_coefficients_for",
    "scheme_floor", "survivors", "RecoveryInfeasibleError",
    "combine_nodal", "combine_nodal_reference", "combination_interpolant",
    "CombinationPlan", "combination_plan", "clear_plan_caches",
    "union_points", "union_point_count", "full_grid_point_count",
    "hierarchical_surplus_1d", "combination_at_points",
    "resample", "nodal_of", "axis_points",
    "combine_on_root", "scatter_samples",
]
