"""Serial combination of sub-grid solutions onto a target grid."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .interpolation import resample

GridIx = Tuple[int, int]


def combine_nodal(parts: Dict[GridIx, np.ndarray],
                  coeffs: Dict[GridIx, float],
                  target: GridIx) -> np.ndarray:
    """``sum_k c_k P_target(u_k)`` — the sparse grid combination (Eq. 1).

    ``parts`` maps grid index -> nodal values; every index with a non-zero
    coefficient must be present.
    """
    out: Optional[np.ndarray] = None
    for ix, c in coeffs.items():
        if c == 0.0:
            continue
        if ix not in parts:
            raise KeyError(f"combination needs grid {ix} but it is missing")
        term = resample(parts[ix], ix, target)
        out = c * term if out is None else out + c * term
    if out is None:
        raise ValueError("no non-zero coefficients")
    return out


def combination_interpolant(fn, coeffs: Dict[GridIx, float],
                            target: GridIx) -> np.ndarray:
    """Combination of *interpolants of a function* (used by tests: for
    f in the union sparse-grid space the result is exact on target nodes)."""
    from .interpolation import nodal_of
    parts = {ix: nodal_of(fn, ix) for ix in coeffs}
    return combine_nodal(parts, coeffs, target)
