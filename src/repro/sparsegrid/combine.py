"""Serial combination of sub-grid solutions onto a target grid.

The combination is a hot path: every run ends in `combine_nodal`, and a
sweep executes thousands of runs whose combinations share the same
``(source indices, target)`` shape.  :class:`CombinationPlan` therefore
precomputes, once per shape, the stacked resampling operators (index
open-grids and 2D bilinear weight grids, built on the memoised axis
weights of :mod:`.interpolation`) plus a preallocated accumulation
buffer; `combine_nodal` fetches plans from a bounded cache.  The plan
issues every elementwise operation in the same left-to-right association
as the original expression form, so results are bit-identical.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional, Tuple

import numpy as np

from .interpolation import _axis_resample_weights, resample

GridIx = Tuple[int, int]


class _ResampleOp:
    """``values`` on grid ``src`` -> resampled onto ``target``.

    Precomputes what :func:`.interpolation.resample` rebuilds per call:
    the corner index open-grids and the four 2D bilinear weight grids.
    ``apply`` reproduces `resample`'s arithmetic expression-for-expression
    (same broadcasts, same association) so the output is bit-identical.
    """

    __slots__ = ("src", "shape", "_interp", "_o00", "_o10", "_o01", "_o11",
                 "_w00", "_w10", "_w01", "_w11")

    def __init__(self, src: GridIx, target: GridIx):
        fx, fy = src
        tx, ty = target
        self.src = src
        self.shape = ((1 << fx) + 1, (1 << fy) + 1)
        ix0, ix1, wx = _axis_resample_weights(fx, tx)
        iy0, iy1, wy = _axis_resample_weights(fy, ty)
        self._interp = bool(wx.any() or wy.any())
        self._o00 = np.ix_(ix0, iy0)
        if self._interp:
            self._o10 = np.ix_(ix1, iy0)
            self._o01 = np.ix_(ix0, iy1)
            self._o11 = np.ix_(ix1, iy1)
            wxc = wx[:, None]
            wyc = wy[None, :]
            self._w00 = (1 - wxc) * (1 - wyc)
            self._w10 = wxc * (1 - wyc)
            self._w01 = (1 - wxc) * wyc
            self._w11 = wxc * wyc
            for w in (self._w00, self._w10, self._w01, self._w11):
                w.flags.writeable = False

    def apply(self, values: np.ndarray) -> np.ndarray:
        """A fresh array holding ``values`` resampled onto the target."""
        if values.shape != self.shape:
            raise ValueError(
                f"values shape {values.shape} does not match index "
                f"{self.src}")
        v00 = values[self._o00]
        if not self._interp:
            return v00
        v10 = values[self._o10]
        v01 = values[self._o01]
        v11 = values[self._o11]
        return (self._w00 * v00 + self._w10 * v10 +
                self._w01 * v01 + self._w11 * v11)


@lru_cache(maxsize=32)
def _resample_op(src: GridIx, target: GridIx) -> _ResampleOp:
    return _ResampleOp(src, target)


class CombinationPlan:
    """Precomputed combination for one ``(sources, target)`` shape.

    Holds one :class:`_ResampleOp` per source index plus two preallocated
    target-shaped buffers (accumulator and per-term scratch), so the
    accumulation allocates only the returned array.  Coefficients stay a
    per-call input — the AC technique changes them with every lost-grid
    set while the operator shapes stay fixed.
    """

    def __init__(self, sources: Tuple[GridIx, ...], target: GridIx):
        self.sources = tuple(sources)
        self.target = target
        self._ops = {ix: _resample_op(ix, target) for ix in self.sources}
        shape = ((1 << target[0]) + 1, (1 << target[1]) + 1)
        self._acc = np.empty(shape)
        self._term = np.empty(shape)

    def combine(self, parts: Dict[GridIx, np.ndarray],
                coeffs: Dict[GridIx, float]) -> np.ndarray:
        """``sum_k c_k P_target(u_k)`` — returns an owned array.

        Mirrors the pre-plan loop exactly: iterate ``coeffs`` in order,
        skip zero coefficients, require a part for every non-zero one.
        """
        acc = self._acc
        first = True
        for ix, c in coeffs.items():
            if c == 0.0:
                continue
            if ix not in parts:
                raise KeyError(f"combination needs grid {ix} but it is "
                               f"missing")
            op = self._ops.get(ix)
            if op is None:      # coefficient outside the planned sources
                op = _resample_op(ix, self.target)
            term = op.apply(parts[ix])
            if first:
                np.multiply(term, c, out=acc)
                first = False
            else:
                np.multiply(term, c, out=self._term)
                acc += self._term
        if first:
            raise ValueError("no non-zero coefficients")
        return acc.copy()


@lru_cache(maxsize=8)
def _plan(sources: Tuple[GridIx, ...], target: GridIx) -> CombinationPlan:
    return CombinationPlan(sources, target)


def combination_plan(sources, target: GridIx) -> CombinationPlan:
    """The cached plan for the given source indices (order-insensitive)."""
    return _plan(tuple(sorted(set(sources))), target)


def clear_plan_caches() -> None:
    """Drop the plan/operator caches (tests, or to release the buffers)."""
    _plan.cache_clear()
    _resample_op.cache_clear()


def combine_nodal(parts: Dict[GridIx, np.ndarray],
                  coeffs: Dict[GridIx, float],
                  target: GridIx) -> np.ndarray:
    """``sum_k c_k P_target(u_k)`` — the sparse grid combination (Eq. 1).

    ``parts`` maps grid index -> nodal values; every index with a non-zero
    coefficient must be present.  Returns a fresh array the caller owns.
    """
    sources = [ix for ix, c in coeffs.items() if c != 0.0]
    if not sources:
        raise ValueError("no non-zero coefficients")
    return combination_plan(sources, target).combine(parts, coeffs)


def combine_nodal_reference(parts: Dict[GridIx, np.ndarray],
                            coeffs: Dict[GridIx, float],
                            target: GridIx) -> np.ndarray:
    """The plan-free combination loop (kept as the oracle the plan must
    match bit-for-bit; see ``tests/sparsegrid/test_combine.py``)."""
    out: Optional[np.ndarray] = None
    for ix, c in coeffs.items():
        if c == 0.0:
            continue
        if ix not in parts:
            raise KeyError(f"combination needs grid {ix} but it is missing")
        term = resample(parts[ix], ix, target)
        out = c * term if out is None else out + c * term
    if out is None:
        raise ValueError("no non-zero coefficients")
    return out


def combination_interpolant(fn, coeffs: Dict[GridIx, float],
                            target: GridIx) -> np.ndarray:
    """Combination of *interpolants of a function* (used by tests: for
    f in the union sparse-grid space the result is exact on target nodes)."""
    from .interpolation import nodal_of
    parts = {ix: nodal_of(fn, ix) for ix in coeffs}
    return combine_nodal(parts, coeffs, target)
