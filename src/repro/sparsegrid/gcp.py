"""Alternate-combination coefficients after grid loss (the paper's [15]).

When sub-grids are lost, the Alternate Combination technique assigns *new*
coefficients to all surviving sub-grids — including the extra coarse layers
— so that the combination remains a valid sparse-grid interpolant over the
surviving index downset.

The algorithm:

1. take the surviving indices (scheme bands minus lost grids),
2. compute Möbius coefficients on the downset they generate (truncated at
   the scheme floor ``n - l + 1`` ... relaxed layer-by-layer for extra
   layers),
3. if some non-zero coefficient lands on an index that did *not* survive
   (possible when more adjacent grids are lost than extra layers can
   cover), greedily drop the coarsest offending maximal grid and repeat.

Step 3 is a deterministic greedy solution of the General Coefficient
Problem; with the paper's two extra layers it never triggers for up to two
*adjacent* diagonal losses, and the tests cover the fallback explicitly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from .coefficients import (coefficient_support_ok, maximal_elements, meet,
                           truncated_coefficients)

GridIx = Tuple[int, int]


class RecoveryInfeasibleError(RuntimeError):
    """No consistent combination exists over the surviving grids."""


def alternate_coefficients(available: Iterable[GridIx], floor: GridIx
                           ) -> Dict[GridIx, float]:
    """New combination coefficients over the surviving grid indices.

    ``floor`` is the truncation corner of the scheme's index region: for the
    paper's arrangement with ``extra_layers`` layers, indices never go below
    ``n - l + 1 - 0`` in each axis on the diagonal band, but extra layers
    keep ``i, j >= n - l + 1`` as well, so the floor is simply
    ``(n - l + 1, n - l + 1)`` reduced by nothing.  Pass the smallest
    component values present in the scheme.
    """
    avail: Set[GridIx] = set(available)
    if not avail:
        raise RecoveryInfeasibleError("no surviving grids")
    work = set(avail)
    while work:
        coeffs = truncated_coefficients(work, floor)
        live = {k: c for k, c in coeffs.items() if c}
        if coefficient_support_ok(live, work):
            return live
        # find offending indices: non-zero coefficient but not survived
        offending = sorted(k for k in live if k not in work)
        # each offender is the meet of adjacent maxima; drop the maximal
        # grid of the *smallest total level* adjacent to the first offender
        maxima = maximal_elements(work)
        off = offending[0]
        candidates = []
        for a, b in zip(maxima, maxima[1:]):
            if meet(a, b) == off:
                candidates.extend([a, b])
        if not candidates:
            # offender not a meet of adjacent maxima (degenerate); drop the
            # coarsest maximal grid overall
            candidates = maxima
        drop = min(candidates, key=lambda p: (p[0] + p[1], p[0]))
        work.discard(drop)
        if not work:
            raise RecoveryInfeasibleError(
                "greedy GCP discarded every grid; recovery impossible")
    raise RecoveryInfeasibleError("unreachable")  # pragma: no cover


def survivors(scheme, lost_gids: Iterable[int]) -> List[GridIx]:
    """Indices of scheme grids that still hold data (duplicates collapse to
    one index: the index survives if *any* copy survives)."""
    lost = set(lost_gids)
    out: Set[GridIx] = set()
    for g in scheme.grids:
        if g.gid not in lost:
            out.add(g.index)
    return sorted(out)


def scheme_floor(scheme) -> GridIx:
    """The truncation corner of the scheme's index region."""
    min_x = min(g.index[0] for g in scheme.grids)
    min_y = min(g.index[1] for g in scheme.grids)
    return (min_x, min_y)


def alternate_coefficients_for(scheme, lost_gids: Iterable[int]
                               ) -> Dict[GridIx, float]:
    """Convenience wrapper: new coefficients for a scheme after losses."""
    return alternate_coefficients(survivors(scheme, lost_gids),
                                  scheme_floor(scheme))
