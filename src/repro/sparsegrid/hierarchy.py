"""Hierarchical structure of the sparse grid: points, surpluses, sizes.

The combination technique's correctness rests on the hierarchical
decomposition of nodal spaces; this module exposes that structure directly
— the union point set of a grid family, hierarchical surpluses, and point
counts — and the tests use it to verify the classical identity that the
combination of interpolants with downset coefficients *is* the sparse grid
interpolant (exact on every union point).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

import numpy as np

GridIx = Tuple[int, int]


def grid_points_1d(level: int) -> np.ndarray:
    return np.arange((1 << level) + 1) / (1 << level)


def union_points(indices: Iterable[GridIx]) -> List[Tuple[float, float]]:
    """All nodal points of the union of the given anisotropic grids."""
    pts: Set[Tuple[float, float]] = set()
    for ix, iy in indices:
        xs = grid_points_1d(ix)
        ys = grid_points_1d(iy)
        for x in xs:
            for y in ys:
                pts.add((float(x), float(y)))
    return sorted(pts)


def union_point_count(indices: Iterable[GridIx]) -> int:
    return len(union_points(indices))


def full_grid_point_count(n: int) -> int:
    return ((1 << n) + 1) ** 2


def hierarchical_surplus_1d(values: np.ndarray) -> np.ndarray:
    """Hierarchical surpluses of 1D nodal data (levels 0..L along axis 0).

    ``out[k]`` is the surplus of node k: nodal value minus the linear
    interpolant of its hierarchical parents.  Level-0 nodes (the two
    endpoints) keep their nodal values.
    """
    n = values.shape[0] - 1
    if n == 0 or (n & (n - 1)):
        raise ValueError("need 2^L + 1 nodal values")
    level = n.bit_length() - 1
    out = values.astype(float).copy()
    # the hierarchical parents of a level-l node are its two neighbours on
    # the level-(l-1) grid, so the surplus is the value minus their mean
    for lev in range(1, level + 1):
        stride = n // (1 << lev)
        idx = np.arange(stride, n, 2 * stride)
        out[idx] = values[idx] - 0.5 * (values[idx - stride] +
                                        values[idx + stride])
    return out


def interpolate_bilinear(points_x: np.ndarray, points_y: np.ndarray,
                         values: np.ndarray, x: float, y: float) -> float:
    """Bilinear interpolation of nodal data at one point (reference
    implementation used by tests; vectorised paths live in
    :mod:`repro.sparsegrid.interpolation`)."""
    ix = int(np.clip(np.searchsorted(points_x, x, "right") - 1, 0,
                     len(points_x) - 2))
    iy = int(np.clip(np.searchsorted(points_y, y, "right") - 1, 0,
                     len(points_y) - 2))
    x0, x1 = points_x[ix], points_x[ix + 1]
    y0, y1 = points_y[iy], points_y[iy + 1]
    tx = 0.0 if x1 == x0 else (x - x0) / (x1 - x0)
    ty = 0.0 if y1 == y0 else (y - y0) / (y1 - y0)
    return float(
        (1 - tx) * (1 - ty) * values[ix, iy] +
        tx * (1 - ty) * values[ix + 1, iy] +
        (1 - tx) * ty * values[ix, iy + 1] +
        tx * ty * values[ix + 1, iy + 1])


def combination_at_points(parts: Dict[GridIx, np.ndarray],
                          coeffs: Dict[GridIx, float],
                          points: Iterable[Tuple[float, float]]
                          ) -> np.ndarray:
    """Evaluate the combination ``sum c_k I_k`` at arbitrary points."""
    points = list(points)
    out = np.zeros(len(points))
    for ix, c in coeffs.items():
        if c == 0.0:
            continue
        values = parts[ix]
        px = grid_points_1d(ix[0])
        py = grid_points_1d(ix[1])
        for j, (x, y) in enumerate(points):
            out[j] += c * interpolate_bilinear(px, py, values, x, y)
    return out
