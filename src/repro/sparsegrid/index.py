"""Combination scheme index sets: the paper's Fig. 1 grid arrangement.

For full grid size ``n`` and level ``l``, the classic combination (Eq. 1) is

.. math::

    u^s_{n,l} = \\sum_{i+j=2n-l+1,\\; i,j\\le n} u_{i,j}
              - \\sum_{i+j=2n-l,\\; i,j\\le n-1} u_{i,j}

The first sum runs over the *diagonal* sub-grids (layer 0), the second over
the *lower diagonal* (layer 1).  Fault-tolerant variants add:

* **duplicates** of every diagonal grid (IDs 7–10 in Fig. 1) — used by the
  Resampling-and-Copying technique;
* **extra layers** 2 and 3 below the lower diagonal (IDs 11–13) — used by
  the Alternate Combination technique.

Generalising Fig. 1: layer ``k`` holds the indices ``i + j = 2n - l + 1 - k``
with ``i, j <= n - k``, giving ``l - k`` grids (4/3/2/1 for ``l = 4``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

GridIx = Tuple[int, int]

ROLE_DIAGONAL = "diagonal"
ROLE_LOWER = "lower"
ROLE_DUPLICATE = "duplicate"
ROLE_EXTRA = "extra"


@dataclass(frozen=True)
class SchemeGrid:
    """One sub-grid slot in the scheme (duplicates share an index, not a gid)."""

    gid: int
    index: GridIx
    role: str
    layer: int
    coeff: float              #: classic combination coefficient (0 for spares)
    partner: Optional[int]    #: duplicate <-> original gid link

    @property
    def level_x(self) -> int:
        return self.index[0]

    @property
    def level_y(self) -> int:
        return self.index[1]

    @property
    def points(self) -> int:
        """Nodal points (the paper's (2^i+1) x (2^j+1))."""
        return ((1 << self.index[0]) + 1) * ((1 << self.index[1]) + 1)


def layer_indices(n: int, level: int, k: int) -> List[GridIx]:
    """Indices of layer ``k`` (0 = diagonal).  Empty when k >= level."""
    return [(i, 2 * n - level + 1 - k - i)
            for i in range(n - level + 1, n - k + 1)]


class CombinationScheme:
    """The full grid arrangement for one run configuration.

    ``duplicates=True`` mirrors every diagonal grid (RC technique);
    ``extra_layers=m`` adds layers 2 .. m+1 (AC technique, paper uses 2).
    """

    def __init__(self, n: int, level: int, *, duplicates: bool = False,
                 extra_layers: int = 0):
        if level < 2:
            raise ValueError("combination level must be >= 2")
        if n < level:
            raise ValueError(f"full grid size n={n} must be >= level l={level}")
        if extra_layers > level - 2:
            raise ValueError(
                f"at most {level - 2} extra layers exist for level {level}")
        self.n = n
        self.level = level
        self.duplicates = duplicates
        self.extra_layers = extra_layers

        grids: List[SchemeGrid] = []
        gid = 0
        for ix in layer_indices(n, level, 0):
            grids.append(SchemeGrid(gid, ix, ROLE_DIAGONAL, 0, +1.0, None))
            gid += 1
        for ix in layer_indices(n, level, 1):
            grids.append(SchemeGrid(gid, ix, ROLE_LOWER, 1, -1.0, None))
            gid += 1
        if duplicates:
            for d in [g for g in grids if g.role == ROLE_DIAGONAL]:
                grids.append(SchemeGrid(gid, d.index, ROLE_DUPLICATE, 0, 0.0,
                                        d.gid))
                # link the original to its duplicate
                grids[d.gid] = SchemeGrid(d.gid, d.index, d.role, d.layer,
                                          d.coeff, gid)
                gid += 1
        for k in range(2, 2 + extra_layers):
            for ix in layer_indices(n, level, k):
                grids.append(SchemeGrid(gid, ix, ROLE_EXTRA, k, 0.0, None))
                gid += 1
        self.grids: Tuple[SchemeGrid, ...] = tuple(grids)
        self._by_gid: Dict[int, SchemeGrid] = {g.gid: g for g in grids}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.grids)

    def __iter__(self):
        return iter(self.grids)

    def __getitem__(self, gid: int) -> SchemeGrid:
        return self._by_gid[gid]

    def by_role(self, role: str) -> List[SchemeGrid]:
        return [g for g in self.grids if g.role == role]

    @property
    def diagonal(self) -> List[SchemeGrid]:
        return self.by_role(ROLE_DIAGONAL)

    @property
    def lower(self) -> List[SchemeGrid]:
        return self.by_role(ROLE_LOWER)

    @property
    def duplicates_list(self) -> List[SchemeGrid]:
        return self.by_role(ROLE_DUPLICATE)

    @property
    def extra(self) -> List[SchemeGrid]:
        return self.by_role(ROLE_EXTRA)

    def classic_coefficients(self) -> Dict[int, float]:
        """gid -> coefficient of the failure-free combination (Eq. 1)."""
        return {g.gid: g.coeff for g in self.grids if g.coeff != 0.0}

    def resample_source(self, gid: int) -> Optional[int]:
        """RC technique source grid for a lost grid ``gid``.

        Diagonal <-> duplicate pairs copy exactly; a lower grid ``m`` is
        resampled from diagonal ``m+1`` (the finer grid directly above it,
        the paper's "4 from 1, 5 from 2, 6 from 3" pairing).  Returns None
        when the scheme has no duplicates or no source exists.
        """
        g = self._by_gid[gid]
        if g.role in (ROLE_DIAGONAL, ROLE_DUPLICATE):
            return g.partner
        if g.role == ROLE_LOWER:
            pos = [x.gid for x in self.lower].index(gid)
            diag = self.diagonal
            if pos + 1 < len(diag):
                return diag[pos + 1].gid
        return None

    def rc_conflict_pairs(self) -> List[Tuple[int, int]]:
        """Grid pairs that must not fail simultaneously under RC (Sec. III:
        "not ... on sub-grids 3 and 6, or 2 and 5, ... or 0 and 7, ...")."""
        pairs = []
        for g in self.grids:
            src = self.resample_source(g.gid)
            if src is not None:
                pairs.append((min(g.gid, src), max(g.gid, src)))
        return sorted(set(pairs))

    def full_index(self) -> GridIx:
        """The isotropic full grid the combination approximates."""
        return (self.n, self.n)

    def describe(self) -> str:
        lines = [f"CombinationScheme(n={self.n}, l={self.level}, "
                 f"duplicates={self.duplicates}, extra_layers={self.extra_layers})"]
        for g in self.grids:
            lines.append(f"  [{g.gid:2d}] {g.role:9s} layer={g.layer} "
                         f"index={g.index} coeff={g.coeff:+.0f}")
        return "\n".join(lines)


@lru_cache(maxsize=None)
def cached_scheme(n: int, level: int, *, duplicates: bool = False,
                  extra_layers: int = 0) -> CombinationScheme:
    """Shared scheme instances — schemes are immutable after construction
    (``grids`` is a tuple of frozen dataclasses), and every layer of a
    sweep rebuilds the same handful of shapes, so the recovery techniques
    construct through this cache.  Sharing instances also lets the layout
    cache key on scheme identity."""
    return CombinationScheme(n, level, duplicates=duplicates,
                             extra_layers=extra_layers)
