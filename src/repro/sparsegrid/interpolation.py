"""Resampling between anisotropic nodal grids.

All grids are nodal tensor grids on [0,1]^2 with ``2^i + 1`` points per
axis, so a coarser grid's nodes are a strict subset of any finer grid's
nodes — restriction is exact stride sampling, and prolongation is bilinear
interpolation with exact dyadic weights.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

GridIx = Tuple[int, int]


def axis_points(level: int) -> np.ndarray:
    n = 1 << level
    return np.arange(n + 1) / n


@lru_cache(maxsize=None)
def _axis_resample_weights(from_level: int, to_level: int):
    """(i0, i1, w) such that target[k] = (1-w)*src[i0] + w*src[i1].

    Memoised per level pair — the combine/recovery phases resample the
    same handful of dyadic level pairs thousands of times per sweep.  The
    cached arrays are frozen (``writeable=False``): every caller shares
    them, so a mutation would silently corrupt all later resamples.
    """
    n_to = (1 << to_level) + 1
    if to_level <= from_level:
        stride = 1 << (from_level - to_level)
        idx = np.arange(n_to) * stride
        out = (idx, idx, np.zeros(n_to))
    else:
        # prolongation: position of target node k on the source axis
        pos = np.arange(n_to) * (2.0 ** (from_level - to_level))
        i0 = np.floor(pos).astype(np.intp)
        n_from = 1 << from_level
        i0 = np.minimum(i0, n_from - 1)
        w = pos - i0
        out = (i0, i0 + 1, w)
    for arr in out:
        arr.flags.writeable = False
    return out


def resample(values: np.ndarray, from_ix: GridIx, to_ix: GridIx) -> np.ndarray:
    """Nodal values on grid ``from_ix`` resampled onto grid ``to_ix``.

    Exact (pure sampling) when ``to_ix <= from_ix`` component-wise; bilinear
    otherwise.  This single routine implements both the RC technique's
    restriction ("resampling a lower-resolution lost grid from the finer
    grid above it") and the prolongation used by the combination itself.
    """
    fx, fy = from_ix
    tx, ty = to_ix
    if values.shape != ((1 << fx) + 1, (1 << fy) + 1):
        raise ValueError(
            f"values shape {values.shape} does not match index {from_ix}")
    ix0, ix1, wx = _axis_resample_weights(fx, tx)
    iy0, iy1, wy = _axis_resample_weights(fy, ty)
    v00 = values[np.ix_(ix0, iy0)]
    if not wx.any() and not wy.any():
        return v00.copy()
    v10 = values[np.ix_(ix1, iy0)]
    v01 = values[np.ix_(ix0, iy1)]
    v11 = values[np.ix_(ix1, iy1)]
    wxc = wx[:, None]
    wyc = wy[None, :]
    return ((1 - wxc) * (1 - wyc) * v00 + wxc * (1 - wyc) * v10 +
            (1 - wxc) * wyc * v01 + wxc * wyc * v11)


def nodal_of(fn, ix: GridIx) -> np.ndarray:
    """Sample a function f(x, y) on the nodal grid ``ix``."""
    xs = axis_points(ix[0])
    ys = axis_points(ix[1])
    return fn(xs[:, None], ys[None, :])
