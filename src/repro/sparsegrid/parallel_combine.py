"""Gather–scatter parallel combination over simulated MPI.

The paper: "The solutions are combined in parallel using a gather-scatter
approach."  Every sub-grid's group root gathers its grid, all roots (and
idle ranks, contributing nothing) join a collective gather to the global
root, the root combines with the given coefficients, and — when recovery
needs it — samples of the combined solution are scattered back.

The root-side combination goes through :func:`.combine.combine_nodal`
and therefore reuses the cached :class:`.combine.CombinationPlan` for
its ``(sources, target)`` shape — across a sweep the stacked resampling
operators are built once per shape, not once per run.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .combine import combine_nodal
from .interpolation import resample

GridIx = Tuple[int, int]


async def combine_on_root(world, my_parts: Dict[GridIx, np.ndarray],
                          coeffs: Dict[GridIx, float], target: GridIx,
                          root: int = 0) -> Optional[np.ndarray]:
    """Collective: gather per-rank contributions and combine on ``root``.

    ``my_parts`` holds the sub-grid nodal arrays this rank contributes
    (group roots contribute their grid; everyone else passes ``{}``).
    Returns the combined array on ``root``, None elsewhere.  If several
    ranks contribute the same index (duplicated grids), the first by rank
    wins — they are replicas of the same data.
    """
    gathered = await world.gather(my_parts, root=root)
    if gathered is None:
        return None
    merged: Dict[GridIx, np.ndarray] = {}
    for contrib in gathered:
        if not contrib:
            continue
        for ix, arr in contrib.items():
            merged.setdefault(ix, arr)
    return combine_nodal(merged, coeffs, target)


async def scatter_samples(world, combined: Optional[np.ndarray],
                          target: GridIx,
                          wanted: Dict[int, GridIx],
                          root: int = 0) -> Optional[np.ndarray]:
    """Send each requesting rank a sample of the combined solution.

    ``wanted`` maps world rank -> grid index it needs (the AC technique's
    "a sample of the combined solution is used as recovered data").
    Returns this rank's sample (or None).
    """
    if world.rank == root:
        payload = [None] * world.size
        for rank, ix in wanted.items():
            payload[rank] = resample(combined, target, ix)
    else:
        payload = None
    return await world.scatter(payload, root=root)
