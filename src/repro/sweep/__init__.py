"""Parallel sweep engine with a memoised run cache.

The experiment drivers (``repro.experiments``) declare their runs as
pure lists of :class:`SweepPoint` values and hand them to a
:class:`SweepRunner`, which fans them out over a process pool
(``--workers N`` / ``REPRO_WORKERS``) and memoises repeated points in a
content-addressed :class:`RunCache` (optionally persisted with
``--cache DIR``).  ``workers=1`` is a serial fallback that is
bit-identical to the pool path.

See ``docs/performance.md`` ("The sweep engine") for cache keying rules
and the companion per-run caches in the sparse-grid layer.
"""

from .cache import RunCache, cacheable, fingerprint, run_key
from .runner import SweepPoint, SweepRunner, make_runner, resolve_workers

__all__ = [
    "RunCache", "SweepPoint", "SweepRunner", "cacheable", "fingerprint",
    "make_runner", "resolve_workers", "run_key",
]
