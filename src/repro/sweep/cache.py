"""Content-addressed memoisation of application runs.

A run is fully deterministic given ``(config, machine, kill plan,
n_spares)`` — :mod:`repro.core.runner` documents this contract — so its
:class:`~repro.core.metrics.RunMetrics` can be reused whenever the exact
same point recurs: the zero-lost baselines that Fig. 10/11 request once
per failure count, Table I / Fig. 8 sharing their two-failure CR runs,
or a ``run_fig9_paper_scale`` rerun against a warm on-disk cache.

Keys are a SHA-256 over a *canonical structural fingerprint* of the run
inputs, not over pickles: pickle bytes are not stable across dict
ordering or interpreter details, while the fingerprint recurses through
dataclasses field-by-field, sorts mappings, names functions by module
and qualname, and spells floats in hex.  Anything that changes the
simulation — a config field, the machine's cost parameters, the kill
schedule — changes the key; see ``docs/performance.md`` for the full
keying rules.

Cached values are stored as pickle blobs (never live objects) for two
reasons: a cache hit hands back an *owned* deep copy that the caller may
mutate freely, and the serial (``workers=1``) path exercises exactly the
same transport contract as the process pool, so "it only breaks under
``--workers``" bugs cannot exist.

The on-disk layer is a :class:`repro.service.store.SharedStore`:
sharded fingerprint-prefix subdirectories, atomic tmp-file +
``os.replace`` writes, and lock-free last-writer-wins reads, so any
number of processes (sweep clients, ``repro serve`` workers) may share
one ``--cache DIR``.  A blob that fails to unpickle — a crashed writer
on a pre-sharding cache, a torn copy — is quarantined on disk and the
key reads as a miss, so corruption can cost a recompute but never an
exception or a wrong result.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from dataclasses import fields, is_dataclass
from typing import Dict, Optional

from ..service.store import SharedStore

__all__ = ["RunCache", "cacheable", "fingerprint", "run_key"]


def _canonical(obj):
    """A hashable, repr-stable structure capturing ``obj``'s content."""
    if is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        return ("dc", f"{cls.__module__}.{cls.__qualname__}",
                tuple((f.name, _canonical(getattr(obj, f.name)))
                      for f in fields(obj)))
    if isinstance(obj, dict):
        return ("map", tuple(sorted(
            (repr(_canonical(k)), _canonical(v)) for k, v in obj.items())))
    if isinstance(obj, (list, tuple)):
        return ("seq", tuple(_canonical(v) for v in obj))
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(_canonical(v)) for v in obj)))
    if isinstance(obj, float):
        return ("f", obj.hex())
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return (type(obj).__name__, obj)
    try:
        import numpy as np
        if isinstance(obj, np.ndarray):
            payload = np.ascontiguousarray(obj).tobytes()
            return ("nd", str(obj.dtype), obj.shape,
                    hashlib.sha256(payload).hexdigest())
        if isinstance(obj, np.generic):
            return ("np", str(obj.dtype), repr(obj.item()))
    except ImportError:  # pragma: no cover - numpy is a hard dep in practice
        pass
    if callable(obj):
        # functions / classes are named, never serialised: the initial
        # condition callable in AdvectionProblem keys by identity-of-code
        mod = getattr(obj, "__module__", "?")
        qual = getattr(obj, "__qualname__", None) or getattr(
            obj, "__name__", None)
        if qual is not None:
            return ("fn", f"{mod}.{qual}")
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__!s} for a run-cache key")


def fingerprint(obj) -> str:
    """Stable SHA-256 hex digest of ``obj``'s canonical structure."""
    return hashlib.sha256(repr(_canonical(obj)).encode()).hexdigest()


def run_key(cfg, machine, kills=(), n_spares: int = 0) -> str:
    """The cache key of one :func:`repro.core.runner.run_app` invocation."""
    return fingerprint(("run_app", cfg, machine, tuple(kills), n_spares))


def cacheable(cfg) -> bool:
    """Only runs that own their disk are memoisable.

    A caller-supplied :class:`~repro.ft.checkpoint.Disk` carries state
    (pre-populated checkpoints) the key cannot see, and its mutations are
    an output the caller may inspect — such runs always execute, in the
    submitting process.
    """
    return cfg.disk is None


class RunCache:
    """Pickle-blob store of run metrics, in memory plus optional disk.

    The in-memory layer is always on; passing ``directory`` adds a
    write-through on-disk :class:`~repro.service.store.SharedStore`
    layer (sharded, atomic, multi-process-safe) that survives the
    process — the ``--cache DIR`` flag of the experiment drivers and the
    store behind ``repro serve``.  ``hits``/``misses`` count lookups,
    including points a :class:`~repro.sweep.runner.SweepRunner`
    deduplicated within a single batch (computed once, served twice is
    one miss plus one hit).

    All methods are thread-safe: the HTTP service shares one instance
    between its request handlers and its job-queue workers.
    """

    def __init__(self, directory: Optional[str] = None):
        self._mem: Dict[str, bytes] = {}
        self._lock = threading.RLock()
        self.store: Optional[SharedStore] = \
            SharedStore(directory) if directory else None
        self.hits = 0
        self.misses = 0

    @property
    def directory(self):
        return self.store.directory if self.store is not None else None

    # ------------------------------------------------------------------
    def _blob(self, key: str) -> Optional[bytes]:
        with self._lock:
            blob = self._mem.get(key)
        if blob is None and self.store is not None:
            blob = self.store.get(key)
            if blob is not None:
                with self._lock:
                    self._mem[key] = blob
        return blob

    def _loads(self, key: str, blob: bytes):
        """Unpickle ``blob``; a corrupt blob (torn write on a
        pre-sharding cache, bad copy) is quarantined on disk, dropped
        from memory, and reads as a miss."""
        try:
            return pickle.loads(blob)
        except Exception:  # noqa: ULF001 - any unpickle failure means corrupt, not MPI
            with self._lock:
                self._mem.pop(key, None)
            if self.store is not None:
                self.store.quarantine(key)
            return None

    # ------------------------------------------------------------------
    def get(self, key: str):
        """The cached metrics for ``key`` (an owned copy), or ``None``."""
        blob = self._blob(key)
        value = None if blob is None else self._loads(key, blob)
        with self._lock:
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
        return value

    def load(self, key: str):
        """Like :meth:`get` but without touching the hit/miss counters
        (used to fan one executed result out to deduplicated points)."""
        blob = self._blob(key)
        return None if blob is None else self._loads(key, blob)

    def put(self, key: str, metrics) -> None:
        blob = pickle.dumps(metrics)
        with self._lock:
            self._mem[key] = blob
        if self.store is not None:
            self.store.put(key, blob)

    def note_hit(self) -> None:
        """Count a point served without execution outside :meth:`get`
        (batch-internal deduplication)."""
        with self._lock:
            self.hits += 1

    # ------------------------------------------------------------------
    def _all_keys(self) -> set:
        with self._lock:
            keys = set(self._mem)
        if self.store is not None:
            keys.update(self.store.keys())
        return keys

    def __len__(self) -> int:
        """Distinct entries across both layers: a fresh process pointed
        at a warm ``--cache DIR`` counts the disk entries it can serve,
        not the none it has touched."""
        return len(self._all_keys())

    def __contains__(self, key: str) -> bool:
        return self._blob(key) is not None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            memory_entries = len(self._mem)
            hits, misses = self.hits, self.misses
        disk_entries = len(self.store) if self.store is not None else 0
        total = hits + misses
        return {"entries": len(self),
                "memory_entries": memory_entries,
                "disk_entries": disk_entries,
                "hits": hits, "misses": misses,
                "hit_rate": round(hits / total, 4) if total else 0.0}
