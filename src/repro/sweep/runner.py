"""The parallel sweep engine: fan independent runs out over processes.

Every headline experiment is a grid of *independent* simulations —
``(machine x technique x lost-count x seed)`` points that never share a
core inside the simulator.  :class:`SweepRunner` executes such a grid:

* points are declared up front as :class:`SweepPoint` values (pure data,
  picklable) and results come back in declaration order;
* ``workers > 1`` fans the points out over a ``ProcessPoolExecutor``;
  ``workers=1`` runs them inline.  The two paths are bit-identical — a
  run is fully deterministic given its point, and results always cross a
  pickle boundary (pool transport or the cache's blob store);
* identical points are computed once: the runner keys every point
  through :func:`repro.sweep.cache.run_key` and serves repeats from its
  :class:`~repro.sweep.cache.RunCache` (in-memory always; on-disk when
  the cache was built with a directory).

Worker count resolution: an explicit ``workers=`` argument wins, then
the ``REPRO_WORKERS`` environment variable, then 1 (serial).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from ..core.app import AppConfig
from ..core.runner import run_app
from ..ft.failure_injection import Kill
from ..machine import MachineSpec
from .cache import RunCache, cacheable, run_key

__all__ = ["SweepPoint", "SweepRunner", "make_runner", "resolve_workers"]

#: environment override for the default worker count
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument > ``REPRO_WORKERS`` > 1 (serial).

    On a single-CPU box a process pool only adds fork and pickle overhead,
    so the ``REPRO_WORKERS``/default paths clamp to serial when
    ``os.cpu_count() <= 1``.  An explicit ``workers`` argument (the CLI's
    ``--workers N``) is always honoured verbatim.
    """
    if workers is not None:
        return max(1, int(workers))
    if (os.cpu_count() or 1) <= 1:
        return 1
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV}={env!r} is not an integer") from None
    return 1


@dataclass(frozen=True)
class SweepPoint:
    """One independent application run: everything :func:`run_app` needs.

    Frozen and picklable — this is the unit that crosses the pool
    boundary and the unit the run cache keys.
    """

    cfg: AppConfig
    machine: MachineSpec
    kills: Tuple[Kill, ...] = ()
    n_spares: int = 0

    def key(self) -> Optional[str]:
        """Cache key, or ``None`` for uncacheable points (explicit disk)."""
        if not cacheable(self.cfg):
            return None
        return run_key(self.cfg, self.machine, self.kills, self.n_spares)


def _execute(point: SweepPoint):  # repro: cacheable
    """Run one point (also the pool's worker entry — module level so it
    pickles by reference).  Declared cacheable: the run cache replays
    its result by content key, so it must stay a pure function of the
    point (enforced statically by ULF012)."""
    cfg = point.cfg
    if cfg.disk is None:
        # run_app attaches a scratch Disk to CR configs; run on a copy so
        # the point stays pristine in the serial path (the pool path runs
        # on a pickled copy anyway).  Points with a caller-supplied disk
        # run on the original — its mutations are the caller's interface.
        cfg = replace(cfg)
    return run_app(cfg, point.machine, kills=tuple(point.kills),
                   n_spares=point.n_spares)


def _pool_context():
    """Prefer ``fork`` (cheap, inherits ``sys.path``); fall back to the
    platform default where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


@dataclass
class SweepRunner:
    """Executes batches of sweep points with memoisation and fan-out.

    One runner (and its cache) is meant to live for a whole experiment —
    or several: sharing a runner across ``run_fig8``/``run_table1``
    deduplicates their common baseline runs.
    """

    workers: Optional[int] = None
    cache: Optional[RunCache] = None

    def __post_init__(self):
        self.workers = resolve_workers(self.workers)
        if self.cache is None:
            self.cache = RunCache()

    # ------------------------------------------------------------------
    def run(self, points: Sequence[SweepPoint]) -> List:
        """Execute ``points``; returns their metrics in the same order.

        Cached points are served from the cache; repeated points within
        the batch are computed once; uncacheable points (explicit
        ``cfg.disk``) always execute, in this process, so their disk
        mutations stay visible to the caller.
        """
        points = list(points)
        results: List = [None] * len(points)
        jobs: "dict[str, List[int]]" = {}   # key -> positions awaiting it
        inline: List[int] = []              # uncacheable positions
        for i, point in enumerate(points):
            key = point.key()
            if key is None:
                inline.append(i)
                continue
            if key in jobs:                 # duplicate within this batch
                jobs[key].append(i)
                self.cache.note_hit()
                continue
            cached = self.cache.get(key)
            if cached is not None:
                results[i] = cached
            else:
                jobs[key] = [i]

        exec_keys = list(jobs)
        exec_points = [points[jobs[k][0]] for k in exec_keys]
        for key, metrics in zip(exec_keys, self._execute_batch(exec_points)):
            self.cache.put(key, metrics)
            positions = jobs[key]
            results[positions[0]] = metrics
            for pos in positions[1:]:       # owned copies for duplicates
                results[pos] = self.cache.load(key)
        for i in inline:
            results[i] = _execute(points[i])
        return results

    def run_one(self, point: SweepPoint):
        """Convenience: one point through the same cache."""
        return self.run([point])[0]

    # ------------------------------------------------------------------
    def _execute_batch(self, points: Sequence[SweepPoint]) -> List:
        if self.workers > 1 and len(points) > 1:
            n = min(self.workers, len(points))
            with ProcessPoolExecutor(max_workers=n,
                                     mp_context=_pool_context()) as pool:
                return list(pool.map(_execute, points))
        return [_execute(p) for p in points]


def make_runner(runner: Optional[SweepRunner] = None,
                workers: Optional[int] = None,
                cache: Optional[RunCache] = None) -> SweepRunner:
    """The experiment drivers' entry: reuse ``runner`` if given, else
    build one from ``workers``/``cache``."""
    if runner is not None:
        return runner
    return SweepRunner(workers=workers, cache=cache)
