"""Shared helpers: recorded recovery traces for the analyzers."""

from __future__ import annotations

import pytest

from repro.ft import ReconstructTimers, communicator_reconstruct
from repro.machine.presets import IDEAL
from repro.mpi.tracing import Tracer
from repro.mpi.universe import Universe


def traced_recovery_run(n=4, kill_ranks=(2,), kill_at=0.5):
    """Run the full Fig. 3 reconstruction protocol with tracing on.

    Returns ``(tracer, results)``: a complete event record of one
    successful revoke -> shrink -> spawn -> merge -> split recovery.
    """
    async def main(ctx):
        if not ctx.proc.spawned:
            await ctx.comm.barrier()  # every rank shows up in the trace
        await ctx.compute(1.0)
        world = await communicator_reconstruct(
            ctx, ctx.comm, entry=main, timers=ReconstructTimers())
        if world is None:
            return "orphan"
        total = await world.allreduce(1)
        return (world.rank, world.size, total)

    uni = Universe(IDEAL)
    uni.tracer = Tracer()
    job = uni.launch(n, main)
    for r in kill_ranks:
        uni.kill_rank(job, r, at=kill_at)
    uni.run(raise_task_failures=False)
    return uni.tracer, job.results()


@pytest.fixture
def good_recovery_trace():
    """A known-good trace of one single-failure recovery on 4 ranks."""
    tracer, results = traced_recovery_run()
    # sanity: the recovery actually succeeded before we bless the trace
    assert results[0] == (0, 4, 4)
    return tracer
