"""Deliberately broken module: every ULF rule must fire on this file.

Used by the lint acceptance tests — do not "fix" it.
"""

import random
import time
from multiprocessing import Pool

_runs = 0


async def swallow_failures(comm):
    try:
        await comm.barrier()
    except Exception:          # ULF001: swallows ProcFailedError
        pass


async def wall_clock_and_rng(ctx):
    started = time.time()      # ULF002: wall clock in simulated code
    jitter = random.random()   # ULF002: global unseeded RNG
    rng = random.Random()      # ULF002: unseeded Random instance
    return started + jitter + rng.random()


async def leak_communicator(comm):
    await comm.dup()           # ULF003: new communicator discarded


async def retry_inside_handler(comm):
    try:
        await comm.allreduce(1)
    except MPIError:
        await comm.barrier()   # ULF004: blocking collective in handler


async def torn_checkpoint(ctx, disk, solver):
    await write_checkpoint(ctx, disk, 0, 0, solver, None)  # ULF005


async def lopsided_barrier(comm):
    if comm.rank == 0:
        await comm.barrier()   # ULF006: only rank 0 reaches this


async def use_after_revoke(comm):
    comm.revoke()
    await comm.barrier()       # ULF007: collective on revoked comm


async def double_free(comm):
    comm.free()
    comm.free()                # ULF008: communicator already freed


async def tags_never_match(comm):
    if comm.rank == 0:
        await comm.send(b"x", dest=1, tag=11)
    else:
        await comm.recv(source=0, tag=22)  # ULF009: 22 never sent


async def _write_helper(ctx, disk, solver):
    # not flagged here: the obligation falls on the (unsynchronised) caller
    await write_checkpoint(ctx, disk, 0, 0, solver, None)


async def delegated_torn_checkpoint(ctx, disk, solver):
    # ULF010: the helper writes a checkpoint; no sync precedes this call
    await _write_helper(ctx, disk, solver)


def mutate_shared_scheme(n):
    scheme = cached_scheme(n, 4)
    scheme.grids.append(None)      # ULF011: mutates a cached object


def cached_run(cfg):  # repro: cacheable
    global _runs                   # ULF012: global write in cacheable entry
    _runs = _runs + 1
    return cfg


class SchemeHolder:
    def adopt(self, n):
        self.plan = combination_plan(n, 4)  # ULF013: shared ref escapes


def unordered_total(xs):
    total = 0.0
    for x in set(xs):              # ULF014: set order feeds the sum
        total += x
    return total


def run_in_pool(points):
    with Pool() as pool:
        return pool.map(lambda p: p * 2, points)  # ULF015: lambda payload


# --- protocol-model rules (annotated functions are model-checked) ---------

async def _probe_root(comm):
    await comm.barrier()


async def _probe_other(comm):
    await comm.bcast(0, root=0)


def _declare_failure(comm):
    comm.revoke()


# repro: protocol ranks=3 failures=1
async def model_divergent_probe(ctx, world):
    try:
        await world.halo()
    except MPIError:
        world.revoke()
    alive = await world.shrink()
    if alive.rank == 0:
        await _probe_root(alive)       # ULF016: barrier on rank 0 ...
    else:
        await _probe_other(alive)      # ... bcast on the others


# repro: protocol ranks=3 failures=1
async def model_stranded_wait(ctx, world):
    try:
        await world.halo()
    except MPIError:
        world.revoke()
    alive = await world.shrink()
    if failed_count(world) > 0:
        if alive.rank == 0:
            await alive.recv(source=1, tag=7)  # ULF017: rank 1 may be dead
    await alive.barrier()


# repro: protocol ranks=3 failures=1
async def model_skewed_epochs(ctx, world):
    ckpt_write(0, 1)
    if world.rank == 0:
        ckpt_write(0, 2)
    try:
        await world.halo()
    except MPIError:
        world.revoke()
    alive = await world.shrink()
    if failed_count(world) > 0:
        ckpt_restore(0)                # ULF018: epoch depends on the rank
    await alive.barrier()


# repro: protocol ranks=3 failures=1 child=_model_eager_child
async def model_impatient_parent(ctx, world):
    try:
        await world.halo()
    except MPIError:
        world.revoke()
    alive = await world.shrink()
    missing = failed_count(world)
    if missing > 0:
        inter = await alive.spawn_multiple(missing, _model_eager_child, ())
        merged = await inter.merge(high=True)  # ULF019: both sides high
        await merged.barrier()
        return
    await alive.barrier()


async def _model_eager_child(ctx):
    parent = ctx.get_parent()
    merged = await parent.merge(high=True)     # ULF019: both sides high
    await merged.barrier()


# repro: protocol ranks=2 failures=1
async def model_eager_rebroadcast(ctx, world):
    try:
        await world.halo()
    except MPIError:
        _declare_failure(world)
    await world.bcast(0, root=0)       # ULF020: collective after revoke
    await world.barrier()
