"""Deliberately broken module: every ULF rule must fire on this file.

Used by the lint acceptance tests — do not "fix" it.
"""

import random
import time


async def swallow_failures(comm):
    try:
        await comm.barrier()
    except Exception:          # ULF001: swallows ProcFailedError
        pass


async def wall_clock_and_rng(ctx):
    started = time.time()      # ULF002: wall clock in simulated code
    jitter = random.random()   # ULF002: global unseeded RNG
    rng = random.Random()      # ULF002: unseeded Random instance
    return started + jitter + rng.random()


async def leak_communicator(comm):
    await comm.dup()           # ULF003: new communicator discarded


async def retry_inside_handler(comm):
    try:
        await comm.allreduce(1)
    except MPIError:
        await comm.barrier()   # ULF004: blocking collective in handler


async def torn_checkpoint(ctx, disk, solver):
    await write_checkpoint(ctx, disk, 0, 0, solver, None)  # ULF005
