"""ULF006 fixture pair: collective divergence under rank-dependent
branches.  Lines tagged "BAD" (as an end-of-line marker) must be flagged; everything else must
stay silent.  Used by ``tests/analysis/test_dataflow_rules.py``."""


async def guarded_collective(comm):
    if comm.rank == 0:
        await comm.barrier()  # BAD: only rank 0 ever calls this


async def early_return_divergence(comm):
    if comm.rank != 0:  # BAD: non-roots return before the bcast below
        return None
    return await comm.bcast(1, root=0)


async def corrected_hoisted(comm):
    payload = b"data" if comm.rank == 0 else None
    return await comm.bcast(payload, root=0)


async def corrected_both_arms(comm):
    if comm.rank == 0:
        total = await comm.reduce(1, root=0)
    else:
        total = await comm.reduce(0, root=0)
    return total


async def p2p_in_branch_is_fine(comm):
    # point-to-point inside a rank branch is the normal idiom, not ULF006
    if comm.rank == 0:
        await comm.send(b"x", dest=1, tag=7)
    elif comm.rank == 1:
        await comm.recv(source=0, tag=7)
    await comm.barrier()
