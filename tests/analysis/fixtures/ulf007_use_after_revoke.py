"""ULF007 fixture pair: operations on a possibly-revoked communicator.
Lines tagged "BAD" (as an end-of-line marker) must be flagged; everything else must stay
silent.  Used by ``tests/analysis/test_dataflow_rules.py``."""


async def use_after_revoke(comm):
    comm.revoke()
    return await comm.allreduce(1)  # BAD: comm is revoked


async def revoke_on_one_path(comm, broken):
    if broken:
        comm.revoke()
    await comm.barrier()  # BAD: may-revoked on the broken path


async def corrected_shrink_first(comm):
    comm.revoke()
    shrunk = await comm.shrink()  # shrink on a revoked comm is the idiom
    flag = await shrunk.agree(1)
    return flag, await shrunk.allreduce(1)


async def corrected_rebound_alias(comm):
    comm.revoke()
    comm = await comm.shrink()  # rebinding clears the revoked state
    return await comm.barrier()
