"""ULF008 fixture pair: use / double free of a freed communicator.
Lines tagged "BAD" (as an end-of-line marker) must be flagged; everything else must stay
silent.  Used by ``tests/analysis/test_dataflow_rules.py``."""


async def double_free(comm):
    dup = await comm.dup()
    dup.free()
    dup.free()  # BAD: already freed


async def use_after_free(comm):
    dup = await comm.dup()
    dup.free()
    await dup.barrier()  # BAD: freed communicator


async def free_on_one_path_then_use(comm, shutting_down):
    dup = await comm.dup()
    if shutting_down:
        dup.free()
    await dup.bcast(1, root=0)  # BAD: freed on the shutdown path


async def corrected_single_free(comm):
    dup = await comm.dup()
    await dup.barrier()
    dup.free()


async def corrected_rebind_then_free(comm):
    dup = await comm.dup()
    dup.free()
    dup = await comm.dup()  # fresh communicator, old state forgotten
    dup.free()
