"""ULF009 fixture pair: point-to-point tags across rank-branch arms that
can never match.  Lines tagged "BAD" (as an end-of-line marker) must be flagged; everything
else must stay silent.  Used by ``tests/analysis/test_dataflow_rules.py``."""

HALO_TAG = 7


async def literal_mismatch(comm):
    if comm.rank == 0:
        await comm.send(b"x", dest=1, tag=11)
    else:
        await comm.recv(source=0, tag=22)  # BAD: 22 is never sent


async def constant_mismatch(comm):
    if comm.rank == 0:
        await comm.send(b"x", dest=1, tag=HALO_TAG)
    else:
        await comm.recv(source=0, tag=HALO_TAG + 1)  # BAD: 8 vs 7


async def corrected_shared_constant(comm):
    if comm.rank == 0:
        await comm.send(b"x", dest=1, tag=HALO_TAG)
    else:
        await comm.recv(source=0, tag=HALO_TAG)


async def corrected_any_tag(comm):
    # a defaulted recv tag is ANY_TAG and matches whatever arrives
    if comm.rank == 0:
        await comm.send(b"x", dest=1, tag=31)
    else:
        await comm.recv(source=0)


async def dynamic_tags_not_judged(comm, step):
    # non-constant tags are out of scope for a static check
    if comm.rank == 0:
        await comm.send(b"x", dest=1, tag=step)
    else:
        await comm.recv(source=0, tag=step + 1)
