"""ULF010 fixture pair: an unsynchronised call chain reaching a
checkpoint write.  Lines tagged "BAD" (as an end-of-line marker) must be flagged; everything
else must stay silent.  Used by ``tests/analysis/test_dataflow_rules.py``."""


async def _persist(ctx, disk, solver):
    # not flagged here: it has callers, so the sync obligation is theirs
    await write_checkpoint(ctx, disk, 0, 0, solver, None)


async def unsynced_caller(ctx, disk, solver):
    await _persist(ctx, disk, solver)  # BAD: no sync before delegating


async def partially_synced_caller(ctx, comm, disk, solver, fast_path):
    if fast_path:
        await comm.barrier()
    await _persist(ctx, disk, solver)  # BAD: unsynced when fast_path false


async def corrected_caller(ctx, comm, disk, solver):
    await comm.barrier()
    await _persist(ctx, disk, solver)


async def corrected_syncing_helper(ctx, comm, disk, solver):
    await _barrier_then_persist(ctx, comm, disk, solver)


async def _barrier_then_persist(ctx, comm, disk, solver):
    # the helper itself synchronises on every path, so callers are free
    await comm.barrier()
    await write_checkpoint(ctx, disk, 0, 0, solver, None)
