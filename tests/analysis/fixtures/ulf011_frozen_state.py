"""Seeded violations for ULF011 (mutation of shared cached objects).

Each violating function pairs with a corrected variant below it; only
lines tagged ``BAD`` may trip ULF011, and nothing else in this file
may trip any other rule.
"""

from repro.core.layout import layout_for
from repro.sparsegrid.combine import combination_plan
from repro.sparsegrid.index import cached_scheme
from repro.sparsegrid.interpolation import _axis_resample_weights


# --- subscript store through a provider result -------------------------
def clobber_weights(src, dst, n):
    ix0, ix1, w = _axis_resample_weights(src, dst)
    w[0] = 0.5  # BAD
    return ix0, ix1


def owned_weights(src, dst, n):
    ix0, ix1, w = _axis_resample_weights(src, dst)
    w = w.copy()
    w[0] = 0.5  # owned copy: fine
    return ix0, ix1


# --- in-place augmented assignment -------------------------------------
def scale_shared(src, dst):
    _, _, w = _axis_resample_weights(src, dst)
    w *= 2.0  # BAD
    return w.sum()


def scale_owned(src, dst):
    _, _, w = _axis_resample_weights(src, dst)
    scaled = w * 2.0  # new array, shared operand only read
    return scaled.sum()


# --- mutator method on a cached object ---------------------------------
def extend_scheme(n, level):
    scheme = cached_scheme(n, level)
    scheme.grids.append(None)  # BAD
    return scheme


def read_scheme(n, level):
    scheme = cached_scheme(n, level)
    return len(scheme.grids)


# --- mutation through a subscript view ---------------------------------
def poke_view(src, dst):
    _, _, w = _axis_resample_weights(src, dst)
    row = w[0]
    row.fill(0.0)  # BAD
    return row.sum()


def copy_view(src, dst):
    _, _, w = _axis_resample_weights(src, dst)
    row = w[0].copy()
    row.fill(0.0)  # the copy is owned
    return row


# --- thawing a frozen buffer -------------------------------------------
def thaw_weights(src, dst):
    _, _, w = _axis_resample_weights(src, dst)
    w.flags.writeable = True  # BAD
    return w


def thaw_setflags(src, dst):
    _, _, w = _axis_resample_weights(src, dst)
    w.setflags(write=True)  # BAD
    return w


# --- setattr / attribute store on a cached object ----------------------
def retag_layout(scheme):
    layout = layout_for(scheme)
    layout.label = "mine"  # BAD
    return layout


def relabel_plan(cfg, target):
    plan = combination_plan(cfg, target)
    setattr(plan, "label", "mine")  # BAD
    return plan


def fresh_labels(scheme):
    layout = layout_for(scheme)
    label = f"{layout!r}:mine"  # read-only use of the shared object
    return label


# --- rebinding forgets the tracked state -------------------------------
def rebind_then_mutate(src, dst, xs):
    _, _, w = _axis_resample_weights(src, dst)
    w = list(xs)
    w.append(1.0)  # w is a fresh list now, not the cached array
    return w
