"""Seeded violations for ULF012 (impure cacheable entry points).

Entry points are declared with the ``# repro: cacheable`` def-line
comment or the ``@pure`` decorator; the cache replays their recorded
results, so any effect below them silently vanishes on a cache hit.
Only lines tagged ``BAD`` may trip ULF012 (rng/clock impurities are
exercised in the ULF002 suite — here the seeds are global writes and
file I/O so this fixture trips exactly one rule).
"""

from pathlib import Path

from repro.analysis import pure

_calls = 0


# --- direct global write ------------------------------------------------
def count_and_run(cfg):  # repro: cacheable
    global _calls  # BAD
    _calls = _calls + 1
    return cfg


def run_counted(cfg, counter):
    # the counter travels through the arguments: pure, caller-owned
    return cfg, counter + 1


# --- direct file I/O ----------------------------------------------------
@pure
def run_and_log(cfg, path):
    Path(path).write_text(str(cfg))  # BAD
    return cfg


@pure
def run_pure(cfg, path):
    return cfg, str(path)


# --- inherited through a helper chain ----------------------------------
def _dump(result, path):
    with open(path, "w") as fh:  # an effect of the *helper*
        fh.write(str(result))


def _relay(result, path):
    _dump(result, path)


def run_with_dump(cfg, path):  # repro: cacheable
    result = 2 * cfg
    _relay(result, path)  # BAD
    return result


def _shape(result):
    return (result, result)


def run_with_helper(cfg):  # repro: cacheable
    return _shape(3 * cfg)  # pure helper: fine
